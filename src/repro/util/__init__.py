"""Small shared utilities (payload blobs, chunk lists, packet tracing)."""

from .blobs import Blob, ChunkList, RealBlob, SyntheticBlob, as_blob
from .trace import PacketTrace, TraceEntry

__all__ = [
    "Blob",
    "ChunkList",
    "PacketTrace",
    "RealBlob",
    "SyntheticBlob",
    "TraceEntry",
    "as_blob",
]
