"""Payload containers that separate *accounting* from *content*.

Simulated transports must move exact byte counts without the simulator
paying to copy megabytes around.  A :class:`Blob` is a sized piece of
payload: :class:`RealBlob` wraps actual ``bytes`` (used for middleware
envelopes and for tests that check end-to-end content integrity), while
:class:`SyntheticBlob` is a zero-cost stand-in of a given size (used for
benchmark message bodies, exactly like MPBench's throwaway buffers).  A
synthetic blob reads as zero bytes if ever materialised.

:class:`ChunkList` is an ordered run of blobs with O(pieces) slicing —
transports use it for segment payloads and reassembled data.
"""

from __future__ import annotations

from typing import Iterable, List, Union


class Blob:
    """Abstract sized payload piece.

    ``__slots__ = ()`` here is load-bearing: without it every RealBlob /
    SyntheticBlob instance would still carry a ``__dict__`` despite their
    own slots, and blobs are among the highest-churn objects in a run.
    """

    __slots__ = ()

    nbytes: int

    def __len__(self) -> int:
        return self.nbytes

    def slice(self, start: int, end: int) -> "Blob":
        """Sub-blob for byte range [start, end)."""
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Materialise the content (synthetic blobs read as zeros)."""
        raise NotImplementedError

    @property
    def is_real(self) -> bool:
        """Whether the blob carries actual byte content."""
        raise NotImplementedError


class RealBlob(Blob):
    """Payload backed by actual bytes."""

    __slots__ = ("data", "nbytes")

    def __init__(self, data: bytes) -> None:
        self.data = bytes(data)
        self.nbytes = len(self.data)

    def slice(self, start: int, end: int) -> "RealBlob":
        _check_range(start, end, self.nbytes)
        return RealBlob(self.data[start:end])

    def to_bytes(self) -> bytes:
        return self.data

    @property
    def is_real(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RealBlob({self.nbytes}B)"


class SyntheticBlob(Blob):
    """A sized placeholder: benchmarks move sizes, not content."""

    __slots__ = ("nbytes", "label")

    def __init__(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise ValueError(f"negative blob size: {nbytes}")
        self.nbytes = nbytes
        self.label = label

    def slice(self, start: int, end: int) -> "SyntheticBlob":
        _check_range(start, end, self.nbytes)
        return SyntheticBlob(end - start, self.label)

    def to_bytes(self) -> bytes:
        return b"\x00" * self.nbytes

    @property
    def is_real(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticBlob({self.nbytes}B, {self.label!r})"


def as_blob(value: Union[Blob, bytes, bytearray, memoryview]) -> Blob:
    """Coerce bytes-like values into a Blob (Blobs pass through)."""
    if isinstance(value, Blob):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return RealBlob(bytes(value))
    raise TypeError(f"cannot make a Blob from {type(value).__name__}")


class ChunkList:
    """An ordered run of blobs, sliceable without copying content."""

    __slots__ = ("pieces", "nbytes")

    def __init__(self, pieces: Iterable[Blob] = ()) -> None:
        kept: List[Blob] = []
        total = 0
        for piece in pieces:
            n = piece.nbytes
            if n > 0:
                kept.append(piece)
                total += n
        self.pieces = kept
        self.nbytes = total

    def __len__(self) -> int:
        return self.nbytes

    def append(self, blob: Blob) -> None:
        """Add a blob at the end."""
        if blob.nbytes == 0:
            return
        self.pieces.append(blob)
        self.nbytes += blob.nbytes

    def extend(self, other: "ChunkList") -> None:
        """Concatenate another chunk list."""
        # a ChunkList never stores zero-length pieces, so no per-piece
        # filtering (and no per-piece method call) is needed here
        self.pieces.extend(other.pieces)
        self.nbytes += other.nbytes

    def slice(self, start: int, end: int) -> "ChunkList":
        """Byte range [start, end) as a new chunk list."""
        _check_range(start, end, self.nbytes)
        if start == 0 and end == self.nbytes:
            # whole-run fast path (split() at a boundary, full re-sends):
            # share the immutable blobs, copy only the list
            out = ChunkList.__new__(ChunkList)
            out.pieces = self.pieces.copy()
            out.nbytes = self.nbytes
            return out
        kept: List[Blob] = []
        total = 0
        pos = 0
        for piece in self.pieces:
            n = piece.nbytes
            piece_end = pos + n
            if piece_end <= start:
                pos = piece_end
                continue
            if pos >= end:
                break
            if start <= pos and piece_end <= end:
                # piece fully inside the range: blobs are immutable, share it
                kept.append(piece)
                total += n
            else:
                lo = start - pos if start > pos else 0
                hi = (end if end < piece_end else piece_end) - pos
                kept.append(piece.slice(lo, hi))
                total += hi - lo
            pos = piece_end
        out = ChunkList.__new__(ChunkList)
        out.pieces = kept
        out.nbytes = total
        return out

    def piece_at(self, offset: int) -> Blob:
        """The (tail of the) piece containing byte ``offset``.

        Equivalent to ``self.slice(offset, self.nbytes).pieces[0]`` —
        what a streaming writer feeds a socket next — without building
        the whole remainder as a new chunk list.
        """
        pos = 0
        for piece in self.pieces:
            nxt = pos + piece.nbytes
            if offset < nxt:
                return piece if offset == pos else piece.slice(offset - pos, piece.nbytes)
            pos = nxt
        raise ValueError(f"offset {offset} beyond {self.nbytes}-byte payload")

    def split(self, at: int) -> tuple["ChunkList", "ChunkList"]:
        """Split into (first ``at`` bytes, remainder)."""
        nbytes = self.nbytes
        if at == nbytes:
            # take-everything fast path (app reads, exact-framing feeds):
            # the remainder is empty, so skip the general slice scan
            return self.slice(0, nbytes), ChunkList()
        return self.slice(0, at), self.slice(at, nbytes)

    def to_bytes(self) -> bytes:
        """Materialise the whole run (synthetic pieces read as zeros)."""
        pieces = self.pieces
        if len(pieces) == 1:  # e.g. a framed envelope: no join needed
            return pieces[0].to_bytes()
        return b"".join(p.to_bytes() for p in pieces)

    @property
    def is_real(self) -> bool:
        """True when every piece carries actual bytes."""
        return all(p.is_real for p in self.pieces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkList({self.nbytes}B, {len(self.pieces)} pieces)"


def _check_range(start: int, end: int, size: int) -> None:
    if not 0 <= start <= end <= size:
        raise ValueError(f"bad slice [{start}, {end}) of {size}-byte payload")
