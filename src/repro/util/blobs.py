"""Payload containers that separate *accounting* from *content*.

Simulated transports must move exact byte counts without the simulator
paying to copy megabytes around.  A :class:`Blob` is a sized piece of
payload: :class:`RealBlob` wraps actual ``bytes`` (used for middleware
envelopes and for tests that check end-to-end content integrity), while
:class:`SyntheticBlob` is a zero-cost stand-in of a given size (used for
benchmark message bodies, exactly like MPBench's throwaway buffers).  A
synthetic blob reads as zero bytes if ever materialised.

:class:`ChunkList` is an ordered run of blobs with O(pieces) slicing —
transports use it for segment payloads and reassembled data.
"""

from __future__ import annotations

from typing import Iterable, List, Union


class Blob:
    """Abstract sized payload piece."""

    nbytes: int

    def __len__(self) -> int:
        return self.nbytes

    def slice(self, start: int, end: int) -> "Blob":
        """Sub-blob for byte range [start, end)."""
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Materialise the content (synthetic blobs read as zeros)."""
        raise NotImplementedError

    @property
    def is_real(self) -> bool:
        """Whether the blob carries actual byte content."""
        raise NotImplementedError


class RealBlob(Blob):
    """Payload backed by actual bytes."""

    __slots__ = ("data", "nbytes")

    def __init__(self, data: bytes) -> None:
        self.data = bytes(data)
        self.nbytes = len(self.data)

    def slice(self, start: int, end: int) -> "RealBlob":
        _check_range(start, end, self.nbytes)
        return RealBlob(self.data[start:end])

    def to_bytes(self) -> bytes:
        return self.data

    @property
    def is_real(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RealBlob({self.nbytes}B)"


class SyntheticBlob(Blob):
    """A sized placeholder: benchmarks move sizes, not content."""

    __slots__ = ("nbytes", "label")

    def __init__(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise ValueError(f"negative blob size: {nbytes}")
        self.nbytes = nbytes
        self.label = label

    def slice(self, start: int, end: int) -> "SyntheticBlob":
        _check_range(start, end, self.nbytes)
        return SyntheticBlob(end - start, self.label)

    def to_bytes(self) -> bytes:
        return b"\x00" * self.nbytes

    @property
    def is_real(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticBlob({self.nbytes}B, {self.label!r})"


def as_blob(value: Union[Blob, bytes, bytearray, memoryview]) -> Blob:
    """Coerce bytes-like values into a Blob (Blobs pass through)."""
    if isinstance(value, Blob):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return RealBlob(bytes(value))
    raise TypeError(f"cannot make a Blob from {type(value).__name__}")


class ChunkList:
    """An ordered run of blobs, sliceable without copying content."""

    __slots__ = ("pieces", "nbytes")

    def __init__(self, pieces: Iterable[Blob] = ()) -> None:
        self.pieces: List[Blob] = [p for p in pieces if p.nbytes > 0]
        self.nbytes = sum(p.nbytes for p in self.pieces)

    def __len__(self) -> int:
        return self.nbytes

    def append(self, blob: Blob) -> None:
        """Add a blob at the end."""
        if blob.nbytes == 0:
            return
        self.pieces.append(blob)
        self.nbytes += blob.nbytes

    def extend(self, other: "ChunkList") -> None:
        """Concatenate another chunk list."""
        for piece in other.pieces:
            self.append(piece)

    def slice(self, start: int, end: int) -> "ChunkList":
        """Byte range [start, end) as a new chunk list."""
        _check_range(start, end, self.nbytes)
        out = ChunkList()
        pos = 0
        for piece in self.pieces:
            piece_end = pos + piece.nbytes
            if piece_end <= start:
                pos = piece_end
                continue
            if pos >= end:
                break
            lo = max(start, pos) - pos
            hi = min(end, piece_end) - pos
            out.append(piece.slice(lo, hi))
            pos = piece_end
        return out

    def split(self, at: int) -> tuple["ChunkList", "ChunkList"]:
        """Split into (first ``at`` bytes, remainder)."""
        return self.slice(0, at), self.slice(at, self.nbytes)

    def to_bytes(self) -> bytes:
        """Materialise the whole run (synthetic pieces read as zeros)."""
        return b"".join(p.to_bytes() for p in self.pieces)

    @property
    def is_real(self) -> bool:
        """True when every piece carries actual bytes."""
        return all(p.is_real for p in self.pieces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkList({self.nbytes}B, {len(self.pieces)} pieces)"


def _check_range(start: int, end: int, size: int) -> None:
    if not 0 <= start <= end <= size:
        raise ValueError(f"bad slice [{start}, {end}) of {size}-byte payload")
