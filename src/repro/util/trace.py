"""Packet tracing: tcpdump for the simulator.

Attach a :class:`PacketTrace` to any set of hosts and every packet they
transmit or receive is recorded with its virtual timestamp.  Useful for
debugging protocol behaviour and for tests that assert on wire-level
event sequences.

    trace = PacketTrace(kernel)
    trace.attach(cluster.hosts)
    ... run simulation ...
    print(trace.to_text(proto="sctp", limit=50))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..metrics.taps import PacketTap


@dataclass(frozen=True)
class TraceEntry:
    """One observed packet event."""

    t_ns: int
    direction: str  # "tx" | "rx"
    host: str
    proto: str
    src: str
    dst: str
    wire_size: int
    summary: str

    def format(self) -> str:
        return (
            f"{self.t_ns / 1e6:12.3f}ms {self.host:<7} {self.direction} "
            f"{self.proto:<5} {self.src}->{self.dst} {self.wire_size:>5}B "
            f"{self.summary}"
        )


class PacketTrace(PacketTap):
    """Records packet events from the hosts it is attached to.

    One consumer of the shared :class:`~repro.metrics.taps.PacketTap`
    infrastructure (the other being
    :class:`~repro.metrics.taps.MetricsPacketTap`); both can observe the
    same hosts simultaneously.
    """

    def __init__(self, kernel, max_entries: int = 100_000) -> None:
        super().__init__()
        self.kernel = kernel
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self.dropped = 0  # entries beyond max_entries

    def on_packet(self, direction: str, host, packet) -> None:
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(
            TraceEntry(
                t_ns=self.kernel.now,
                direction=direction,
                host=host.name,
                proto=packet.proto,
                src=packet.src,
                dst=packet.dst,
                wire_size=packet.wire_size,
                summary=repr(packet.payload),
            )
        )

    # -- queries ------------------------------------------------------------
    def select(
        self,
        proto: Optional[str] = None,
        host: Optional[str] = None,
        direction: Optional[str] = None,
    ) -> List[TraceEntry]:
        """Filtered view of the recorded entries, in time order."""
        out = self.entries
        if proto is not None:
            out = [e for e in out if e.proto == proto]
        if host is not None:
            out = [e for e in out if e.host == host]
        if direction is not None:
            out = [e for e in out if e.direction == direction]
        return out

    def count(self, **filters) -> int:
        """Number of matching entries."""
        return len(self.select(**filters))

    def bytes_on_wire(self, **filters) -> int:
        """Total wire bytes over matching transmit events."""
        return sum(e.wire_size for e in self.select(**filters) if e.direction == "tx")

    def to_text(self, limit: int = 200, **filters) -> str:
        """Human-readable dump of (up to ``limit``) matching entries."""
        lines = [e.format() for e in self.select(**filters)[:limit]]
        if self.dropped:
            lines.append(f"... trace truncated, {self.dropped} events dropped")
        return "\n".join(lines)
