"""Machine-readable finding baseline for :mod:`repro.analyze.flow`.

The flow analyzer is conservative by design, and a few of its findings
over this tree are *accepted behaviour* (the Packet free-list is a
module-global by construction; ``REPRO_FULL`` is deliberately part of
the sweep-cache key).  Rather than sprinkle ``allow`` comments for
whole-program findings whose anchor line is far from the decision that
justifies them, accepted findings live in a committed baseline file
(``ANALYZE_baseline.json`` at the repo root) that CI diffs against:
*new* findings fail the build, baselined ones ride along, and entries
that stop matching anything are reported so the baseline shrinks as
code improves.

Fingerprints are **line-insensitive**: sha256 over (rule, source
descriptor, sink descriptor, function qualname) — not line numbers — so
unrelated edits above a finding don't churn the baseline.  Paths are
likewise excluded because the function qualname already pins the
location at file-move granularity.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .flow import FlowFinding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "ANALYZE_baseline.json"


def fingerprint(finding: FlowFinding) -> str:
    """Stable, line-insensitive identity for one finding."""
    payload = "\x1f".join(
        (finding.rule, finding.function, finding.source, finding.sink)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def write_baseline(findings: Sequence[FlowFinding], path: str) -> None:
    """Write all *findings* as the new accepted baseline (sorted, stable)."""
    entries = []
    seen = set()
    for finding in sorted(
        findings, key=lambda f: (f.rule, f.function, f.source, f.sink)
    ):
        fp = fingerprint(finding)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule,
                "function": finding.function,
                "source": finding.source,
                "sink": finding.sink,
                # advisory only — not part of the fingerprint
                "path": finding.path,
                "note": "",
            }
        )
    document = {
        "version": BASELINE_VERSION,
        "tool": "repro.analyze.flow",
        "entries": entries,
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: str) -> Dict[str, Dict]:
    """fingerprint → entry map; missing file means an empty baseline."""
    file = Path(path)
    if not file.exists():
        return {}
    document = json.loads(file.read_text(encoding="utf-8"))
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}; "
            f"this tool expects {BASELINE_VERSION}"
        )
    return {e["fingerprint"]: e for e in document.get("entries", [])}


def apply_baseline(
    findings: Sequence[FlowFinding], baseline: Dict[str, Dict]
) -> Tuple[List[FlowFinding], List[str]]:
    """Split findings into (new, unused-baseline-entry descriptions).

    A finding whose fingerprint appears in the baseline is suppressed.
    Baseline entries that matched nothing are returned as human-readable
    strings so stale entries surface instead of rotting.
    """
    matched = set()
    new: List[FlowFinding] = []
    for finding in findings:
        fp = fingerprint(finding)
        if fp in baseline:
            matched.add(fp)
        else:
            new.append(finding)
    unused = [
        f"{entry['rule']} {entry['function']}: {entry['source']} -> {entry['sink']}"
        for fp, entry in sorted(baseline.items())
        if fp not in matched
    ]
    return new, unused


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]
