"""Schedule-perturbation race detector for the virtual-time simulator.

The kernel breaks ties between equal-virtual-time events by insertion
order (FIFO).  That choice is *arbitrary*: correct simulation code must
produce the same results under any consistent tie-break, exactly as
correct threaded code must survive any legal interleaving.  This module
is the simulator's analogue of a data-race detector: it re-runs a
scenario with the tie-break reversed (LIFO) or seed-shuffled and diffs
digests of the results and metrics.  A digest mismatch means some layer
depends on same-timestamp event *ordering* — a latent race that a lucky
FIFO schedule was hiding.

Mechanism: every heap key the kernel pushes is ``(when, seq ^ mask)``.
XOR with a fixed mask is a bijection on the sequence numbers, so keys
stay unique (heap compaction stays order-preserving) and events at
*different* times are untouched; only the order *within* one timestamp
changes.  ``mask=0`` is the production FIFO order; the all-ones mask
reverses every tie; a hash-derived mask deterministically shuffles them.

What must match across tie-breaks: every virtual-time output (durations,
bytes, retransmit counts — all transport and RPI metrics).  What may
legitimately differ: kernel *heap diagnostics* (depth histogram,
compaction count, lazily-cancelled entries) and link *queue-occupancy
histograms* (sampled at enqueue instants, so same-timestamp enqueue
order shows through) — those measure the schedule itself, so
:data:`SCHEDULE_SENSITIVE_PREFIXES` and
:data:`SCHEDULE_SENSITIVE_INFIXES` are excluded from digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Mask bits available for tie-break perturbation.  Sequence numbers are
#: monotonically increasing ints; 62 bits keeps masked keys well inside
#: the small-int fast path while covering any realistic event count.
MASK_BITS = 62

#: Production order: ties pop first-scheduled-first.
TIEBREAK_FIFO = 0

#: Reversed ties: at each timestamp, last-scheduled pops first.
TIEBREAK_LIFO = (1 << MASK_BITS) - 1


def shuffle_mask(seed: int) -> int:
    """A deterministic, seed-derived tie-break mask (never 0 = FIFO)."""
    digest = hashlib.sha256(f"repro.analyze.perturb:{seed}".encode()).digest()
    mask = int.from_bytes(digest[:8], "big") & TIEBREAK_LIFO
    return mask or TIEBREAK_LIFO


#: Metric-key prefixes excluded from digests: they observe the *schedule*
#: (heap shape, lazy-deletion churn), not the simulated system, so a
#: tie-break perturbation legitimately changes them.
SCHEDULE_SENSITIVE_PREFIXES: Tuple[str, ...] = (
    "kernel.timer_heap_depth",
    "kernel.pending_timers",
    "kernel.cancelled_in_heap",
    "kernel.heap_compactions",
    "kernel.events_processed",
    "kernel.tasks_spawned",
)

#: Metric-key infixes excluded from digests.  Link queue-occupancy
#: histograms sample the instantaneous queue depth at each packet
#: *enqueue instant*; when several enqueues share one virtual timestamp
#: the depth each observes depends on intra-timestamp order — the
#: histogram measures the tie-break, not the system.  Delivery times,
#: byte counts, and drop counters stay digest-covered.
SCHEDULE_SENSITIVE_INFIXES: Tuple[str, ...] = (
    ".queue_occupancy_bytes/",
)


class tiebreak:
    """Context manager installing a tie-break mask as the kernel default.

    Every :class:`~repro.simkernel.kernel.Kernel` constructed inside the
    block (without an explicit ``tiebreak_mask=``) uses ``mask``, which
    is how the detector reaches kernels built deep inside the bench
    harness without threading a parameter through every layer.
    """

    def __init__(self, mask: int) -> None:
        self.mask = mask
        self._saved: Optional[int] = None

    def __enter__(self) -> "tiebreak":
        from ..simkernel import kernel as _kernel_mod

        self._saved = _kernel_mod.DEFAULT_TIEBREAK_MASK
        _kernel_mod.DEFAULT_TIEBREAK_MASK = self.mask
        return self

    def __exit__(self, *exc: Any) -> None:
        from ..simkernel import kernel as _kernel_mod

        _kernel_mod.DEFAULT_TIEBREAK_MASK = self._saved


def filter_schedule_sensitive(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop metric keys that measure the schedule rather than the system."""
    return {
        key: value
        for key, value in snapshot.items()
        if not key.startswith(SCHEDULE_SENSITIVE_PREFIXES)
        and not any(infix in key for infix in SCHEDULE_SENSITIVE_INFIXES)
    }


def digest_payload(payload: Any) -> str:
    """SHA-256 over a canonical JSON encoding (sorted keys, no spaces)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()


def parse_mode(spec: str) -> Tuple[str, int]:
    """Parse a mode spec: ``fifo``, ``lifo``, or ``shuffle:<seed>``."""
    if spec == "fifo":
        return "fifo", TIEBREAK_FIFO
    if spec == "lifo":
        return "lifo", TIEBREAK_LIFO
    if spec.startswith("shuffle:"):
        seed = int(spec.split(":", 1)[1])
        return spec, shuffle_mask(seed)
    raise ValueError(f"unknown tie-break mode {spec!r} (fifo | lifo | shuffle:N)")


@dataclass
class PerturbResult:
    """Digest comparison across tie-break modes for one scenario."""

    label: str
    digests: Dict[str, str] = field(default_factory=dict)
    baseline: str = "fifo"

    @property
    def deterministic(self) -> bool:
        """True when every mode digested identically to the baseline."""
        base = self.digests.get(self.baseline)
        return all(d == base for d in self.digests.values())

    @property
    def divergent_modes(self) -> List[str]:
        base = self.digests.get(self.baseline)
        return sorted(m for m, d in self.digests.items() if d != base)

    def report(self) -> str:
        lines = [f"perturb {self.label}: "
                 + ("OK (schedule-independent)" if self.deterministic else "RACE")]
        for mode in sorted(self.digests):
            marker = " " if self.digests[mode] == self.digests[self.baseline] else "!"
            lines.append(f"  {marker} {mode:<12} {self.digests[mode]}")
        if not self.deterministic:
            lines.append(
                "  results depend on same-timestamp event ordering; some layer "
                "is racing on tie-break order"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "baseline": self.baseline,
            "digests": dict(sorted(self.digests.items())),
            "deterministic": self.deterministic,
        }


def perturb_run(
    fn: Callable[[], Any],
    modes: Sequence[str] = ("lifo",),
    label: str = "scenario",
) -> PerturbResult:
    """Run ``fn`` under FIFO plus each perturbed tie-break; diff digests.

    ``fn`` must be self-contained and repeatable: it builds its own
    worlds/kernels and returns a JSON-encodable result.  Each execution
    wraps a :class:`~repro.metrics.collect.MetricsCollector`, so the
    digest covers both the returned value and every world's metrics
    snapshot (minus :data:`SCHEDULE_SENSITIVE_PREFIXES`).
    """
    from ..metrics.collect import MetricsCollector

    result = PerturbResult(label=label)
    wanted = ["fifo", *[m for m in modes if m != "fifo"]]
    for spec in wanted:
        name, mask = parse_mode(spec)
        with tiebreak(mask):
            with MetricsCollector() as collector:
                value = fn()
        payload = {
            "result": value,
            "runs": [
                {
                    "label": run["label"],
                    "metrics": filter_schedule_sensitive(run["metrics"]),
                }
                for run in collector.runs
            ],
        }
        result.digests[name] = digest_payload(payload)
    return result


def perturb_cell(
    experiment: str,
    cell: str,
    modes: Sequence[str] = ("lifo",),
) -> PerturbResult:
    """Perturb one bench-harness experiment cell (e.g. ``fig8`` / ``1024``)."""
    from ..bench.harness import run_experiment_cell

    def run() -> Any:
        rows = run_experiment_cell(experiment, cell)
        return [row.to_jsonable() for row in rows]

    return perturb_run(run, modes=modes, label=f"{experiment}:{cell}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro.analyze perturb`` (returns exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-analyze perturb",
        description=(
            "re-run a bench cell under perturbed same-time tie-breaking and "
            "diff metrics digests (simulator race detector)"
        ),
    )
    parser.add_argument(
        "cell",
        metavar="EXPERIMENT:CELL",
        help="bench cell to perturb, e.g. fig8:1024 (see repro.bench --list)",
    )
    parser.add_argument(
        "--modes",
        default="lifo",
        help="comma-separated perturbations: lifo, shuffle:<seed> "
        "(default: lifo)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write a machine-readable report to FILE ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    if ":" not in args.cell:
        parser.error(f"cell spec {args.cell!r} must look like EXPERIMENT:KEY")
    experiment, key = args.cell.split(":", 1)
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for mode in modes:
        parse_mode(mode)  # validate before paying for any simulation

    result = perturb_cell(experiment, key, modes=modes)
    if args.json:
        import sys
        from pathlib import Path

        text = json.dumps(result.to_jsonable(), indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text, encoding="utf-8")
    if args.json != "-":
        print(result.report())
    return 0 if result.deterministic else 1


__all__ = [
    "MASK_BITS",
    "TIEBREAK_FIFO",
    "TIEBREAK_LIFO",
    "SCHEDULE_SENSITIVE_PREFIXES",
    "SCHEDULE_SENSITIVE_INFIXES",
    "shuffle_mask",
    "tiebreak",
    "filter_schedule_sensitive",
    "digest_payload",
    "parse_mode",
    "PerturbResult",
    "perturb_run",
    "perturb_cell",
    "main",
]
