"""CLI for the analysis toolbox: ``python -m repro.analyze`` / ``repro-analyze``.

Subcommands
===========

``lint [paths...] [--json FILE] [--list-rules]``
    Determinism lint over the given files/directories (default
    ``src/repro``).  Exits 1 on any unsuppressed finding.

``perturb EXPERIMENT:CELL [--modes lifo,shuffle:7] [--json FILE]``
    Schedule-perturbation race detector on one bench cell.  Exits 1 when
    any perturbed tie-break produces a different metrics digest than the
    production FIFO order.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from . import lint, perturb

_USAGE = """\
usage: repro-analyze {lint,perturb} ...

subcommands:
  lint     determinism lint over simulator sources (AN101-AN105)
  perturb  schedule-perturbation race detector on a bench cell

run `repro-analyze <subcommand> --help` for details.
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to a subcommand; returns the process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        sys.stdout.write(_USAGE)
        return 0
    command, rest = args[0], args[1:]
    if command == "lint":
        return lint.main(rest)
    if command == "perturb":
        return perturb.main(rest)
    sys.stderr.write(f"repro-analyze: unknown subcommand {command!r}\n\n{_USAGE}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
