"""CLI for the analysis toolbox: ``python -m repro.analyze`` / ``repro-analyze``.

Subcommands
===========

``lint [paths...] [--json FILE] [--list-rules] [--fix]``
    Determinism lint over the given files/directories (default
    ``src/repro``).  Exits 1 on any unsuppressed finding.  ``--fix``
    prints a removal listing for unused ``allow`` comments (AN106).

``flow [root] [--baseline FILE] [--update-baseline FILE] [--sarif FILE]``
    Interprocedural determinism-taint (AN2xx) and fork-purity (AN3xx)
    analysis over a source tree.  Exits 1 on any finding not covered by
    the baseline.

``ci [--root src/repro] [--baseline ANALYZE_baseline.json] [--sarif FILE]``
    The CI umbrella: lint + flow against the committed baseline in one
    blocking step.  Exits nonzero if either stage reports anything new.

``perturb EXPERIMENT:CELL [--modes lifo,shuffle:7] [--json FILE]``
    Schedule-perturbation race detector on one bench cell.  Exits 1 when
    any perturbed tie-break produces a different metrics digest than the
    production FIFO order.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from . import lint, perturb

_USAGE = """\
usage: repro-analyze {lint,flow,ci,perturb} ...

subcommands:
  lint     determinism lint over simulator sources (AN101-AN106)
  flow     interprocedural taint + fork-purity analysis (AN2xx/AN3xx)
  ci       lint + flow against the committed baseline (the CI gate)
  perturb  schedule-perturbation race detector on a bench cell

run `repro-analyze <subcommand> --help` for details.
"""


def _ci(argv: Sequence[str]) -> int:
    """lint + flow in one blocking step, as CI runs it."""
    import argparse

    from . import baseline as baseline_mod
    from . import flow

    parser = argparse.ArgumentParser(
        prog="repro-analyze ci",
        description=(
            "run the determinism lint and the interprocedural flow "
            "analysis as one blocking gate"
        ),
    )
    parser.add_argument("--root", default="src/repro")
    parser.add_argument("--package", default="repro")
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help="accepted-findings baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", help="write combined SARIF report to FILE"
    )
    args = parser.parse_args(argv)

    lint_findings = lint.lint_paths([args.root])
    for finding in lint_findings:
        print(finding.render())

    flow_findings = flow.analyze_tree(args.root, args.package)
    base = baseline_mod.load_baseline(args.baseline)
    new_findings, unused = baseline_mod.apply_baseline(flow_findings, base)
    for finding in new_findings:
        print(finding.render())
    for entry in unused:
        print(f"warning: baseline entry no longer matches anything: {entry}")

    if args.sarif:
        from pathlib import Path

        fingerprints = {
            f: baseline_mod.fingerprint(f) for f in new_findings
        }
        Path(args.sarif).write_text(
            flow.sarif_report(
                new_findings, lint_findings, fingerprints=fingerprints
            ),
            encoding="utf-8",
        )

    failed = bool(lint_findings) or bool(new_findings)
    print(
        "repro.analyze ci: "
        f"lint={len(lint_findings)} new-flow={len(new_findings)} "
        f"baselined={len(flow_findings) - len(new_findings)} "
        f"stale-baseline={len(unused)} -> {'FAIL' if failed else 'OK'}"
    )
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to a subcommand; returns the process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        sys.stdout.write(_USAGE)
        return 0
    command, rest = args[0], args[1:]
    if command == "lint":
        return lint.main(rest)
    if command == "flow":
        from . import flow

        return flow.main(rest)
    if command == "ci":
        return _ci(rest)
    if command == "perturb":
        return perturb.main(rest)
    sys.stderr.write(f"repro-analyze: unknown subcommand {command!r}\n\n{_USAGE}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
