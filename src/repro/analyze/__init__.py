"""Correctness tooling for the reproduction: lint, sanitizers, perturbation.

Three instruments, one goal — making the simulator's determinism and
protocol conformance *checkable* instead of assumed:

* :mod:`repro.analyze.lint` — static AST pass flagging nondeterminism
  hazards (wall clocks, global randomness, set iteration, ``id()``
  ordering, kernel-internal pokes);
* :mod:`repro.analyze.sanitize` — opt-in runtime invariant checkers for
  the kernel, both transports, and both RPIs (``REPRO_SANITIZE=1``);
* :mod:`repro.analyze.perturb` — schedule-perturbation race detector
  that re-runs scenarios under reversed/shuffled same-time tie-breaking.

CLI: ``python -m repro.analyze {lint,perturb} ...`` (also installed as
the ``repro-analyze`` console script).
"""

from .lint import Finding, lint_paths, lint_source
from .perturb import (
    TIEBREAK_FIFO,
    TIEBREAK_LIFO,
    PerturbResult,
    perturb_cell,
    perturb_run,
    shuffle_mask,
    tiebreak,
)
from .sanitize import (
    InvariantViolation,
    enable_sanitizers,
    reset_sanitizers,
    sanitized,
    sanitizers_enabled,
)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "InvariantViolation",
    "enable_sanitizers",
    "reset_sanitizers",
    "sanitized",
    "sanitizers_enabled",
    "TIEBREAK_FIFO",
    "TIEBREAK_LIFO",
    "PerturbResult",
    "perturb_cell",
    "perturb_run",
    "shuffle_mask",
    "tiebreak",
]
