"""Whole-program model and call graph for the flow analyses.

:mod:`repro.analyze.lint` sees one file at a time; the interprocedural
analyses in :mod:`repro.analyze.flow` need to see the *program*: which
function calls which, what a name resolves to through the import graph,
and where processes are forked.  This module builds that model once and
hands it to both the taint engine and the fork-purity engine.

The model is deliberately static and conservative:

* a :class:`Program` is every ``.py`` file under one package root,
  parsed once, with per-module import tables, module-level (global)
  variable names, and every function/method indexed by dotted qualname
  (``repro.network.packet.Packet.acquire``);
* call resolution handles the cases that matter in this codebase —
  module-local calls, ``from x import f`` / ``import x as y`` aliases,
  ``self.method()`` within a class (following statically-resolvable
  bases), ``Class.method()``, and ``module.func()`` — and falls back to
  *by-name* method matching for ``obj.method()`` on a receiver of
  unknown type (every known method of that name is a candidate, capped
  so wildly common names don't connect everything to everything);
* calls that cannot be resolved at all (``fn(*args)`` through a
  variable, the kernel's event dispatch) produce no edges: the engines
  treat them conservatively at the call site instead.

Fork boundaries are first-class: every ``*.Process(target=...)``
construction site is recorded as a :class:`ForkSite` so the purity
analysis knows exactly which functions run inside forked children.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``obj.method()`` on an unknown receiver matches every known method of
#: that name — but only when the name is rare enough to be meaningful.
BY_NAME_CAP = 12


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the program."""

    qualname: str  # "repro.network.packet.Packet.acquire"
    module: str  # "repro.network.packet"
    path: str  # source file (as given to Program.load)
    name: str  # bare name ("acquire")
    class_name: Optional[str]  # enclosing class, None for module-level
    params: Tuple[str, ...]  # positional-or-keyword parameter names, in order
    lineno: int
    node: ast.AST = field(repr=False, compare=False, hash=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def shortname(self) -> str:
        """Class-qualified name without the module prefix."""
        return f"{self.class_name}.{self.name}" if self.class_name else self.name


@dataclass
class ClassInfo:
    """One class definition: its methods and statically-named bases."""

    qualname: str
    name: str
    module: str
    bases: List[str]  # dotted base names as written (resolved lazily)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file and its name-resolution tables."""

    name: str  # dotted module name
    path: str
    tree: ast.Module = field(repr=False)
    source: str = field(repr=False, default="")
    # local binding -> fully dotted target ("np" -> "numpy",
    # "Packet" -> "repro.network.packet.Packet")
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # local qual
    classes: Dict[str, ClassInfo] = field(default_factory=dict)  # bare name
    global_names: Set[str] = field(default_factory=set)  # module-level variables


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: caller -> callee at a source line."""

    caller: str
    callee: str
    path: str
    lineno: int
    by_name: bool  # resolved only by method-name matching


@dataclass(frozen=True)
class ForkSite:
    """One ``Process(target=...)`` construction: a fork boundary."""

    caller: str  # qualname of the function containing the call
    target: Optional[str]  # qualname of the resolved target function
    path: str
    lineno: int
    call: ast.Call = field(repr=False, compare=False, hash=False)


class CallTarget:
    """Resolution result for one call expression."""

    __slots__ = ("functions", "display", "resolved", "by_name", "constructs")

    def __init__(
        self,
        functions: Sequence[FunctionInfo] = (),
        display: str = "",
        resolved: str = "",
        by_name: bool = False,
        constructs: Optional[ClassInfo] = None,
    ) -> None:
        self.functions = list(functions)
        self.display = display  # the call as written ("lint.main")
        self.resolved = resolved  # fully dotted resolution ("repro.analyze.lint.main")
        self.by_name = by_name
        self.constructs = constructs


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain ('' if not one)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _module_name(root: Path, package: str, file: Path) -> str:
    rel = file.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join([package, *parts]) if parts else package


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Resolve a ``from ...x import y`` module reference to a dotted name."""
    if level == 0:
        return target or ""
    # level 1 = the module's own package, each extra level goes one up
    base = module.split(".")[: -(level)] if level <= module.count(".") + 1 else []
    if target:
        base = [*base, target]
    return ".".join(base)


def _collect_global_names(tree: ast.Module) -> Set[str]:
    """Names bound at module level (outside any function/class body)."""
    names: Set[str] = set()

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _bind_target(target, names)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                _bind_target(stmt.target, names)
            elif isinstance(stmt, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
                scan(getattr(stmt, "body", []))
                scan(getattr(stmt, "orelse", []))
                scan(getattr(stmt, "finalbody", []))
                for handler in getattr(stmt, "handlers", []):
                    scan(handler.body)

    scan(tree.body)
    return names


def _bind_target(target: ast.AST, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, names)


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


class Program:
    """Every module under one package root, indexed for resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}  # dotted qualname -> info
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    @classmethod
    def load(cls, root: str, package: str = "repro") -> "Program":
        """Parse every ``.py`` under ``root`` as package ``package``."""
        program = cls()
        root_path = Path(root)
        for file in sorted(root_path.rglob("*.py")):
            source = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file))
            except SyntaxError:
                continue  # the lint reports AN100 for these
            name = _module_name(root_path, package, file)
            program._add_module(name, str(file), tree, source)
        return program

    @classmethod
    def from_sources(
        cls, sources: Dict[str, Tuple[str, str]]
    ) -> "Program":
        """Build from in-memory sources: ``{module_name: (path, source)}``.

        Test seam — lets planted-leak tests assemble a program without
        touching the filesystem.
        """
        program = cls()
        for name in sorted(sources):
            path, source = sources[name]
            tree = ast.parse(source, filename=path)
            program._add_module(name, path, tree, source)
        return program

    # -- construction ----------------------------------------------------
    def _add_module(self, name: str, path: str, tree: ast.Module, source: str) -> None:
        module = ModuleInfo(name=name, path=path, tree=tree, source=source)
        self.modules[name] = module
        module.global_names = _collect_global_names(tree)
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    binding = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[binding] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = _resolve_relative(name, stmt.level, stmt.module)
                for alias in stmt.names:
                    binding = alias.asname or alias.name
                    module.imports[binding] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{name}.{stmt.name}",
                    name=stmt.name,
                    module=name,
                    bases=[dotted_name(b) for b in stmt.bases if dotted_name(b)],
                )
                module.classes[stmt.name] = info
                self.classes[info.qualname] = info
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module, sub, class_name=stmt.name)

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        local = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            qualname=f"{module.name}.{local}",
            module=module.name,
            path=module.path,
            name=node.name,
            class_name=class_name,
            params=_param_names(node),
            lineno=node.lineno,
            node=node,
        )
        module.functions[local] = info
        self.functions[info.qualname] = info
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(info)
            cls_info = module.classes.get(class_name)
            if cls_info is not None:
                cls_info.methods[node.name] = info
        # register nested defs too, so fork-reachability can descend into
        # worker closures (they are conservatively reachable from their
        # parent; see CallGraph.build)
        for sub in getattr(node, "body", []):
            self._add_nested(module, node, sub, prefix=f"{module.name}.{local}")

    def _add_nested(
        self, module: ModuleInfo, parent: ast.AST, stmt: ast.stmt, prefix: str
    ) -> None:
        """Register function defs nested directly inside ``parent``'s body."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{prefix}.<locals>.{stmt.name}",
                module=module.name,
                path=module.path,
                name=stmt.name,
                class_name=None,
                params=_param_names(stmt),
                lineno=stmt.lineno,
                node=stmt,
            )
            self.functions[info.qualname] = info
            for sub in stmt.body:
                self._add_nested(module, stmt, sub, prefix=info.qualname)
            return
        for block in ("body", "orelse", "finalbody"):
            for sub in getattr(stmt, block, []):
                if isinstance(sub, ast.stmt):
                    self._add_nested(module, parent, sub, prefix)
        for handler in getattr(stmt, "handlers", []):
            for sub in handler.body:
                self._add_nested(module, parent, sub, prefix)

    # -- resolution ------------------------------------------------------
    def _package_roots(self) -> set:
        """Top-level package names covered by this program."""
        return {name.split(".")[0] for name in self.modules}

    def resolve_name(self, module: ModuleInfo, name: str) -> str:
        """Fully dotted resolution of a bare name in a module ('' if unknown)."""
        if name in module.functions:
            return f"{module.name}.{name}"
        if name in module.classes:
            return f"{module.name}.{name}"
        if name in module.imports:
            return module.imports[name]
        if name in module.global_names:
            return f"{module.name}.{name}"
        return ""

    def resolve_dotted(self, module: ModuleInfo, dotted: str) -> str:
        """Resolve the leading binding of a dotted chain through imports."""
        if not dotted:
            return ""
        head, sep, rest = dotted.partition(".")
        resolved_head = self.resolve_name(module, head)
        if not resolved_head:
            return dotted
        return f"{resolved_head}.{rest}" if sep else resolved_head

    def class_method(
        self, cls_info: Optional[ClassInfo], method: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Look up ``method`` on a class, walking statically-known bases."""
        if cls_info is None or _depth > 8:
            return None
        if method in cls_info.methods:
            return cls_info.methods[method]
        module = self.modules.get(cls_info.module)
        for base in cls_info.bases:
            resolved = self.resolve_dotted(module, base) if module else base
            found = self.class_method(self.classes.get(resolved), method, _depth + 1)
            if found is not None:
                return found
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        enclosing: Optional[FunctionInfo] = None,
    ) -> CallTarget:
        """Resolve one call expression to candidate callees."""
        func = call.func
        display = dotted_name(func)
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(module, func.id)
            if resolved in self.functions:
                return CallTarget([self.functions[resolved]], display, resolved)
            if resolved in self.classes:
                cls_info = self.classes[resolved]
                init = self.class_method(cls_info, "__init__")
                return CallTarget(
                    [init] if init else [], display, resolved, constructs=cls_info
                )
            return CallTarget([], display, resolved)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            # module.func / Class.method through the import table
            if display:
                resolved = self.resolve_dotted(module, display)
                if resolved in self.functions:
                    return CallTarget([self.functions[resolved]], display, resolved)
                owner = resolved.rsplit(".", 1)[0] if "." in resolved else ""
                if owner in self.classes:
                    found = self.class_method(self.classes[owner], attr)
                    if found is not None:
                        return CallTarget([found], display, resolved)
            # self.method() / cls.method()
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and enclosing is not None
                and enclosing.class_name is not None
            ):
                own_cls = self.classes.get(f"{enclosing.module}.{enclosing.class_name}")
                found = self.class_method(own_cls, attr)
                if found is not None:
                    return CallTarget([found], display, found.qualname)
            # receiver is a known *external* module (``time.sleep`` with
            # ``import time``): the callee lives outside the program, so
            # by-name matching would be pure noise — stop here
            base = dotted_name(func.value)
            head = base.split(".")[0] if base else ""
            if head and head in module.imports:
                imported = module.imports[head].split(".")[0]
                if imported not in self._package_roots():
                    return CallTarget([], display)
            # unknown receiver: every known method of that name
            candidates = self.methods_by_name.get(attr, [])
            if candidates and len(candidates) <= BY_NAME_CAP and not attr.startswith("__"):
                return CallTarget(list(candidates), display or attr, "", by_name=True)
        return CallTarget([], display)


class CallGraph:
    """Resolved call edges plus fork sites over one :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.edges: Dict[str, List[CallEdge]] = {}
        self.fork_sites: List[ForkSite] = []

    @classmethod
    def build(cls, program: Program) -> "CallGraph":
        graph = cls(program)
        for qualname, info in program.functions.items():
            module = program.modules[info.module]
            edges: List[CallEdge] = []
            # ast.walk descends into nested defs too; their calls appear on
            # both the parent and the nested function's own edge list,
            # which only over-approximates reachability (safe direction)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    graph._note_fork_site(module, info, node)
                    target = program.resolve_call(module, node, info)
                    for callee in target.functions:
                        edges.append(
                            CallEdge(
                                caller=qualname,
                                callee=callee.qualname,
                                path=info.path,
                                lineno=node.lineno,
                                by_name=target.by_name,
                            )
                        )
            # a nested def is conservatively "called" by its parent: it
            # only exists to run on the parent's behalf (callback, worker
            # loop body), so reachability must descend into it
            for nested_qual in program.functions:
                if nested_qual.startswith(f"{qualname}.<locals>.") and (
                    nested_qual.count(".<locals>.") == qualname.count(".<locals>.") + 1
                ):
                    edges.append(
                        CallEdge(
                            caller=qualname,
                            callee=nested_qual,
                            path=info.path,
                            lineno=program.functions[nested_qual].lineno,
                            by_name=False,
                        )
                    )
            graph.edges[qualname] = edges
        return graph

    def _note_fork_site(
        self, module: ModuleInfo, info: FunctionInfo, call: ast.Call
    ) -> None:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "Process":
            return
        target_qual: Optional[str] = None
        for kw in call.keywords:
            if kw.arg == "target":
                resolved = ""
                if isinstance(kw.value, ast.Name):
                    resolved = self.program.resolve_name(module, kw.value.id)
                    if not resolved:
                        # a function nested in the enclosing caller
                        nested = f"{info.qualname}.<locals>.{kw.value.id}"
                        if nested in self.program.functions:
                            resolved = nested
                elif isinstance(kw.value, ast.Attribute):
                    resolved = self.program.resolve_dotted(
                        module, dotted_name(kw.value)
                    )
                if resolved in self.program.functions:
                    target_qual = resolved
        self.fork_sites.append(
            ForkSite(
                caller=info.qualname,
                target=target_qual,
                path=info.path,
                lineno=call.lineno,
                call=call,
            )
        )

    def callers_of(self) -> Dict[str, List[str]]:
        """Reverse adjacency: callee qualname -> caller qualnames."""
        reverse: Dict[str, List[str]] = {}
        for caller, edges in self.edges.items():
            for edge in edges:
                reverse.setdefault(edge.callee, []).append(caller)
        return reverse

    def reachable_from(
        self, entries: Sequence[str], include_by_name: bool = True
    ) -> Dict[str, Tuple[Optional[str], int]]:
        """BFS closure: qualname -> (parent qualname, call line) for chains.

        Entry points map to ``(None, 0)``.  Deterministic: the worklist
        is processed in sorted insertion order.
        """
        parents: Dict[str, Tuple[Optional[str], int]] = {}
        frontier = sorted(set(e for e in entries if e in self.program.functions))
        for entry in frontier:
            parents[entry] = (None, 0)
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                for edge in self.edges.get(qualname, []):
                    if edge.by_name and not include_by_name:
                        continue
                    if edge.callee not in parents:
                        parents[edge.callee] = (qualname, edge.lineno)
                        next_frontier.append(edge.callee)
            frontier = sorted(set(next_frontier))
        return parents

    def chain(
        self, parents: Dict[str, Tuple[Optional[str], int]], qualname: str
    ) -> List[str]:
        """Entry-to-function qualname chain for a reachability result."""
        chain: List[str] = []
        cursor: Optional[str] = qualname
        seen: Set[str] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            chain.append(cursor)
            cursor = parents.get(cursor, (None, 0))[0]
        chain.reverse()
        return chain


__all__ = [
    "BY_NAME_CAP",
    "CallEdge",
    "CallGraph",
    "CallTarget",
    "ClassInfo",
    "ForkSite",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "dotted_name",
]
