"""Protocol-invariant sanitizers: opt-in runtime checkers for the stacks.

The simulator's credibility rests on invariants the paper and the RFCs
state but ordinary tests only sample: the kernel clock never runs
backwards, a TCP cumulative ACK never retreats, SCTP never retransmits a
chunk the peer already gap-acked (RFC 4960 §6.3.3 rules E3/E4), and the
SCTP RPI never interleaves two messages on one (association, stream)
(paper §3.4.2, Option B).  This module makes those invariants executable.

The design copies the zero-cost-when-disabled pattern of
:mod:`repro.metrics`: each instrumented object asks a factory here for a
sanitizer and stores the result — ``None`` when sanitizers are off, so
the hot path pays exactly one ``if self._san is not None`` check.  With
``REPRO_SANITIZE=1`` (or :func:`enable_sanitizers`), the factories return
live checker objects and any violated invariant raises
:class:`InvariantViolation` at the first moment the corruption is
observable, instead of surfacing as a wrong Figure-8 number three layers
later.

Sanitizers never schedule events, never draw randomness, and never
mutate the objects they watch, so enabling them cannot change a
simulation's virtual-time behaviour — a property pinned by test.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

_FORCED: Optional[bool] = None  # programmatic override; None defers to env


class InvariantViolation(AssertionError):
    """A protocol or kernel invariant was broken (sanitizers enabled).

    Subclasses ``AssertionError`` deliberately: a tripped sanitizer means
    the *simulator* is wrong, not the simulated workload, and should fail
    tests the same way a broken assert would.
    """

    def __init__(self, layer: str, invariant: str, detail: str) -> None:
        super().__init__(f"[{layer}] {invariant}: {detail}")
        self.layer = layer
        self.invariant = invariant
        self.detail = detail


def sanitizers_enabled() -> bool:
    """True when sanitizers are on (REPRO_SANITIZE=1 or forced in-process)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def enable_sanitizers(on: bool = True) -> None:
    """Force sanitizers on (or off) for this process, overriding the env.

    Only objects constructed *after* the call are instrumented: the
    factories are consulted once, at construction time, exactly like
    metrics enablement.
    """
    global _FORCED
    _FORCED = on


def reset_sanitizers() -> None:
    """Drop any programmatic override; the environment decides again."""
    global _FORCED
    _FORCED = None


class sanitized:
    """Context manager scoping :func:`enable_sanitizers` (mainly for tests)."""

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._prev: Optional[bool] = None

    def __enter__(self) -> "sanitized":
        global _FORCED
        self._prev = _FORCED
        _FORCED = self._on
        return self

    def __exit__(self, *exc: Any) -> None:
        global _FORCED
        _FORCED = self._prev


def _fail(layer: str, invariant: str, detail: str) -> None:
    raise InvariantViolation(layer, invariant, detail)


class _PoolPoison:
    """Sentinel stored in the fields of pooled (recycled) objects.

    When sanitizers are on, the kernel's Timer pool and the network's
    Packet pool overwrite payload fields with this object on recycle and
    assert it is still present on reacquisition.  Any code path that
    holds a stale handle and touches it after recycling either reads the
    poison (caught at the next acquire/fire) or overwrites it (caught as
    pool corruption) — the use-after-free of a pooled design.

    Calling it raises immediately: a poisoned callback reaching a
    dispatch loop is the worst version of the bug.
    """

    __slots__ = ()

    def __call__(self, *args: Any, **kwargs: Any) -> None:
        _fail(
            "kernel",
            "pool use-after-recycle",
            "a poisoned (recycled) pool slot was dispatched as a callback",
        )

    def __repr__(self) -> str:
        return "<POOL_POISON>"


POOL_POISON = _PoolPoison()


# ---------------------------------------------------------------------------
# kernel: virtual-time monotonicity + timer-heap integrity
# ---------------------------------------------------------------------------


class KernelSanitizer:
    """Checks the event loop itself.

    * virtual time is monotone: no event fires at ``when < now``;
    * the heap satisfies the heap property over ``(when, seq)`` keys;
    * the O(1) ``pending_events`` / ``cancelled_in_heap`` counters agree
      with an actual scan of the heap;
    * pool hygiene: every Timer waiting in the free list is poisoned,
      and no live (non-cancelled) heap entry points at a recycled Timer
      — the use-after-recycle a pooled core can otherwise hide.

    The full heap audit is O(n), so it runs every ``AUDIT_EVERY`` fired
    events rather than per event; the monotonicity check is per event.
    """

    AUDIT_EVERY = 4096

    __slots__ = ("kernel", "_fires")

    def __init__(self, kernel: Any) -> None:
        self.kernel = kernel
        self._fires = 0

    def on_fire(self, when: int) -> None:
        """Called by the run loops with each event's timestamp, pre-advance."""
        kernel = self.kernel
        if when < kernel._now:
            _fail(
                "kernel",
                "virtual-time monotonicity",
                f"event scheduled at t={when}ns fired while now={kernel._now}ns",
            )
        self._fires += 1
        if self._fires % self.AUDIT_EVERY == 0:
            self.audit()

    def audit(self) -> None:
        """Full O(n) heap scan: structure and counter agreement."""
        kernel = self.kernel
        heap = kernel._heap  # repro: allow[AN105] — read-only audit scan
        for i in range(1, len(heap)):
            parent = (i - 1) >> 1
            if heap[parent][:2] > heap[i][:2]:
                _fail(
                    "kernel",
                    "timer-heap integrity",
                    f"heap property violated at index {i}: parent key "
                    f"{heap[parent][:2]} > child key {heap[i][:2]}",
                )
        live = 0
        cancelled = 0
        for entry in heap:
            obj = entry[2]
            if getattr(obj, "cancelled", False):
                cancelled += 1
            else:
                live += 1
                if getattr(obj, "fn", None) is POOL_POISON:
                    _fail(
                        "kernel",
                        "pool use-after-recycle",
                        f"live heap entry at t={entry[0]}ns points at a "
                        "recycled (poisoned) Timer",
                    )
        if live != kernel._live_events:
            _fail(
                "kernel",
                "pending-events accounting",
                f"counter says {kernel._live_events} live events but the heap "
                f"holds {live}",
            )
        if cancelled != kernel._cancelled_in_heap:
            _fail(
                "kernel",
                "cancelled-in-heap accounting",
                f"counter says {kernel._cancelled_in_heap} lazily-deleted "
                f"entries but the heap holds {cancelled}",
            )
        for timer in getattr(kernel, "_timer_pool", ()):
            if timer.fn is not POOL_POISON or timer.args is not POOL_POISON:
                _fail(
                    "kernel",
                    "pool hygiene",
                    "a Timer in the free list is not poisoned: something "
                    "wrote to a recycled handle",
                )

    def pool_corruption(self, pool: str, obj: Any) -> None:
        """A pooled object failed its acquire/dispatch poison check."""
        _fail(
            "kernel",
            "pool use-after-recycle",
            f"{pool} pool slot was touched after recycling: {obj!r} no "
            "longer carries the poison sentinel",
        )


# ---------------------------------------------------------------------------
# TCP: cumulative-ACK monotone, cwnd/ssthresh bounds, send-window accounting
# ---------------------------------------------------------------------------


class TCPConnectionSanitizer:
    """Checks one :class:`repro.transport.tcp.connection.TCPConnection`.

    * ``snd_una`` (cumulative ACK point) never retreats (RFC 793 §3.9:
      segments with ``SEG.ACK < SND.UNA`` are stale and ignored);
    * ``snd_una <= snd_nxt`` and nothing past the send buffer's tail is
      ever acknowledged (acking unsent data means sequence corruption);
    * NewReno bounds: ``cwnd >= 1 MSS`` always, ``ssthresh >= 2 MSS``
      once a loss has set it (RFC 5681 equations (4) and §3.1);
    * the receiver's ``rcv_nxt`` never retreats, and at most one FIN is
      counted into it (a retransmitted FIN must not re-advance it).
    """

    __slots__ = ("_max_una", "_max_rcv_nxt", "_fin_counted")

    def __init__(self) -> None:
        self._max_una = -1
        self._max_rcv_nxt = -1
        self._fin_counted = False

    def on_ack_processed(self, conn: Any) -> None:
        """End of the sender-side ACK path: windows and cc state are settled."""
        una = conn.snd_una
        if una < self._max_una:
            _fail(
                "tcp",
                "cumulative-ACK monotone",
                f"snd_una retreated from {self._max_una} to {una} on "
                f"{conn.local_addr}:{conn.local_port}->"
                f"{conn.remote_addr}:{conn.remote_port}",
            )
        self._max_una = una
        if una > conn.snd_nxt:
            _fail(
                "tcp",
                "send-window accounting",
                f"snd_una={una} passed snd_nxt={conn.snd_nxt}: peer acked "
                "data never sent",
            )
        buf = conn.send_buffer
        if buf is not None:
            # +1: the FIN occupies one sequence number past the last byte
            limit = buf.tail_seq + (1 if conn._fin_seq is not None else 0)
            if conn.snd_nxt > limit:
                _fail(
                    "tcp",
                    "send-window accounting",
                    f"snd_nxt={conn.snd_nxt} passed buffered data end {limit}",
                )
        cc = conn.cc
        if cc.cwnd < cc.mss:
            _fail(
                "tcp",
                "cwnd lower bound",
                f"cwnd={cc.cwnd} fell below one MSS ({cc.mss})",
            )
        if (cc.fast_retransmits or cc.timeouts) and cc.ssthresh < 2 * cc.mss:
            _fail(
                "tcp",
                "ssthresh lower bound",
                f"ssthresh={cc.ssthresh} below 2*MSS after a loss event "
                "(RFC 5681 eq. 4)",
            )

    def on_delivery(self, conn: Any) -> None:
        """Receive path: in-order point only ever advances."""
        reassembly = conn.reassembly
        if reassembly is None:
            return
        rcv_nxt = reassembly.rcv_nxt
        if rcv_nxt < self._max_rcv_nxt:
            _fail(
                "tcp",
                "rcv_nxt monotone",
                f"receive in-order point retreated from {self._max_rcv_nxt} "
                f"to {rcv_nxt}",
            )
        self._max_rcv_nxt = rcv_nxt

    def on_fin_accepted(self, conn: Any) -> None:
        """A FIN was consumed into rcv_nxt; doing so twice corrupts ACKs."""
        if self._fin_counted:
            _fail(
                "tcp",
                "single-FIN accounting",
                f"FIN consumed into rcv_nxt twice on "
                f"{conn.local_addr}:{conn.local_port}<-"
                f"{conn.remote_addr}:{conn.remote_port} "
                "(a retransmitted FIN must be re-ACKed, not re-counted)",
            )
        self._fin_counted = True


# ---------------------------------------------------------------------------
# SCTP: TSN monotone, outstanding accounting, E3/E4 retransmission guard
# ---------------------------------------------------------------------------


class AssociationSanitizer:
    """Checks one :class:`repro.transport.sctp.association.Association`.

    * ``cum_tsn_acked`` and the receiver's ``rcv_cum_tsn`` are monotone
      (RFC 4960 §6.3.3: an old SACK "MUST be discarded");
    * every in-flight TSN is > the cumulative ACK point and the
      ``outstanding`` map iterates in TSN order (insertion order == TSN
      order is what the T3 and fast-retransmit scans rely on);
    * ``outstanding_bytes`` — total and per path — equals a real sum over
      the in-flight records (the fast paths maintain these incrementally);
    * rules E3/E4: a chunk the peer reported as gap-acked is never handed
      back to the wire by fast retransmit or T3 bundling.
    """

    __slots__ = ("_max_cum_acked", "_max_rcv_cum")

    def __init__(self) -> None:
        self._max_cum_acked = -1
        self._max_rcv_cum = -1

    def on_sack_processed(self, assoc: Any) -> None:
        """End of the SACK path: full outstanding-map audit."""
        cum = assoc.cum_tsn_acked
        if cum < self._max_cum_acked:
            _fail(
                "sctp",
                "cumulative-TSN monotone",
                f"cum_tsn_acked retreated from {self._max_cum_acked} to {cum}",
            )
        self._max_cum_acked = cum
        total = 0
        by_path: Dict[str, int] = {}
        prev_tsn = cum
        for tsn, record in assoc.outstanding.items():
            if tsn <= prev_tsn:
                _fail(
                    "sctp",
                    "outstanding TSN order",
                    f"TSN {tsn} out of order (follows {prev_tsn}, "
                    f"cum={cum}): retransmission scans would misfire",
                )
            prev_tsn = tsn
            if not record.gap_acked:
                size = record.chunk.payload.nbytes
                total += size
                by_path[record.path_addr] = by_path.get(record.path_addr, 0) + size
        if total != assoc.outstanding_bytes:
            _fail(
                "sctp",
                "outstanding-bytes accounting",
                f"counter says {assoc.outstanding_bytes} bytes in flight but "
                f"records sum to {total}",
            )
        for addr, path in assoc.paths.items():
            expected = by_path.get(addr, 0)
            if path.outstanding_bytes != expected:
                _fail(
                    "sctp",
                    "per-path outstanding accounting",
                    f"path {addr} counter says {path.outstanding_bytes} but "
                    f"records sum to {expected}",
                )
            if path.cwnd < path.mtu_payload:
                _fail(
                    "sctp",
                    "cwnd lower bound",
                    f"path {addr} cwnd={path.cwnd} below one PMTU "
                    f"({path.mtu_payload}) (RFC 4960 §7.2.3 floor)",
                )

    def on_data_received(self, assoc: Any) -> None:
        """Receive path: cumulative point monotone, gap set consistent."""
        cum = assoc.rcv_cum_tsn
        if cum < self._max_rcv_cum:
            _fail(
                "sctp",
                "receiver cum-TSN monotone",
                f"rcv_cum_tsn retreated from {self._max_rcv_cum} to {cum}",
            )
        self._max_rcv_cum = cum
        for tsn in assoc._received_above_cum:
            if tsn <= cum:
                _fail(
                    "sctp",
                    "gap-set consistency",
                    f"TSN {tsn} still in the above-cum set at cum={cum}",
                )

    def on_retransmit(self, records: Any, reason: str) -> None:
        """RFC 4960 §6.3.3 rules E3/E4: gap-acked chunks stay off the wire."""
        for record in records:
            if record.gap_acked:
                _fail(
                    "sctp",
                    "E3/E4 gap-ack guard",
                    f"TSN {record.chunk.tsn} was gap-acked by the peer but "
                    f"queued for {reason} retransmission",
                )


class StreamOrderSanitizer:
    """Per-stream SSN in-order delivery (RFC 4960 §6.5).

    Watches the messages :class:`InboundStreams` releases to the
    application: within one stream, ordered messages must surface with
    consecutive SSNs starting at 0.  Unordered messages are exempt.
    """

    __slots__ = ("_next_ssn",)

    def __init__(self) -> None:
        self._next_ssn: Dict[int, int] = {}

    def on_deliver(self, messages: Any) -> None:
        for message in messages:
            if message.unordered:
                continue
            if getattr(message, "mid", None) is not None:
                continue  # I-DATA: ordered by MID, audited by IDataSanitizer
            expected = self._next_ssn.get(message.sid, 0)
            if message.ssn != expected:
                _fail(
                    "sctp",
                    "per-stream SSN order",
                    f"stream {message.sid} delivered SSN {message.ssn}, "
                    f"expected {expected}",
                )
            self._next_ssn[message.sid] = expected + 1


class IDataSanitizer:
    """RFC 8260 I-DATA legality on one association's inbound path.

    Complements :class:`OptionBSanitizer` (which forbids *RPI-level*
    message interleaving under legacy DATA) with the transport-level
    rules the I-DATA extension introduces:

    * **DATA/I-DATA exclusivity** — after negotiation an association uses
      one encoding; the first data chunk received fixes the mode and any
      later chunk of the other kind trips the check (RFC 8260 §2.2.2);
    * **FSN contiguity** — a reassembled message's fragments carry FSNs
      0..E with the B bit on FSN 0 and the E bit on the last;
    * **per-stream MID order** — ordered messages of one stream surface
      with consecutive MIDs (mod 2**32).  Unordered messages are exempt.
    """

    __slots__ = ("_mode", "_expected_mid")

    def __init__(self) -> None:
        self._mode: Optional[str] = None
        self._expected_mid: Dict[int, int] = {}

    def on_chunk(self, chunk: Any) -> None:
        """Every inbound data chunk (legacy or I-DATA) passes through."""
        mode = "I-DATA" if chunk.is_idata else "DATA"
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            _fail(
                "sctp",
                "DATA/I-DATA exclusivity",
                f"received a {mode} chunk (tsn={chunk.tsn}) on an "
                f"association already using {self._mode}: the negotiated "
                "encoding must not change mid-association",
            )

    def on_assembled(self, sid: int, mid: int, frags: Any, e_fsn: int) -> None:
        """A message completed reassembly; audit its fragment numbering."""
        fsns = sorted(frags)
        if fsns != list(range(e_fsn + 1)):
            _fail(
                "sctp",
                "I-DATA FSN contiguity",
                f"stream {sid} mid {mid} assembled from FSNs {fsns}, "
                f"expected 0..{e_fsn}",
            )
        if not frags[0].begin:
            _fail(
                "sctp",
                "I-DATA FSN contiguity",
                f"stream {sid} mid {mid}: fragment with FSN 0 lacks the B bit",
            )
        if not frags[e_fsn].end:
            _fail(
                "sctp",
                "I-DATA FSN contiguity",
                f"stream {sid} mid {mid}: fragment with FSN {e_fsn} lacks "
                "the E bit",
            )

    def on_deliver(self, messages: Any) -> None:
        """Ordered I-DATA messages must surface in MID succession."""
        for message in messages:
            if message.unordered:
                continue
            expected = self._expected_mid.get(message.sid)
            if expected is not None and message.mid != expected:
                _fail(
                    "sctp",
                    "per-stream MID order",
                    f"stream {message.sid} delivered MID {message.mid}, "
                    f"expected {expected}",
                )
            self._expected_mid[message.sid] = (message.mid + 1) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# RPI: rendezvous state-machine legality + Option B non-interleaving
# ---------------------------------------------------------------------------


class RPISanitizer:
    """Checks the MPI progression engine's rendezvous state machine.

    Control units only make sense against a request in the matching
    protocol state (paper §3.1 / LAM's RPI contract): a long-protocol ACK
    must find its send in ``S_RNDV_WAIT_ACK``, a synchronous-send ACK in
    ``S_SSEND_WAIT_ACK``, and body bytes must land on a receive that
    posted (``S_RECV_BODY``).
    """

    __slots__ = ()

    def expect_state(self, req: Any, expected: str, event: str) -> None:
        if req.state != expected:
            _fail(
                "rpi",
                "rendezvous state legality",
                f"{event} arrived for request {req!r} in state {req.state}, "
                f"expected {expected}",
            )


class OptionBSanitizer:
    """Paper §3.4.2 Option B: one message at a time per (association, stream).

    The SCTP RPI multiplexes messages over streams but must not start
    message B on a stream while message A's pieces are still going out —
    interleaving would corrupt framing at the receiver.  The sender's
    transmit loop reports every piece here; starting a different unit
    while one is unfinished trips the check.
    """

    __slots__ = ("_in_progress",)

    def __init__(self) -> None:
        self._in_progress: Dict[Tuple[int, int], Any] = {}

    def on_piece_sent(self, key: Tuple[int, int], unit: Any, done: bool) -> None:
        current = self._in_progress.get(key)
        if current is not None and current is not unit:
            _fail(
                "rpi",
                "Option B non-interleaving",
                f"stream key {key} started a new message while another is "
                "mid-flight (paper §3.4.2 forbids interleaving)",
            )
        if done:
            self._in_progress.pop(key, None)
        else:
            self._in_progress[key] = unit


# ---------------------------------------------------------------------------
# factories: the only API instrumented code calls
# ---------------------------------------------------------------------------


def kernel_sanitizer(kernel: Any) -> Optional[KernelSanitizer]:
    """Sanitizer for a Kernel, or None when disabled (the hot-path contract)."""
    return KernelSanitizer(kernel) if sanitizers_enabled() else None


def tcp_sanitizer() -> Optional[TCPConnectionSanitizer]:
    """Sanitizer for one TCP connection, or None when disabled."""
    return TCPConnectionSanitizer() if sanitizers_enabled() else None


def sctp_sanitizer() -> Optional[AssociationSanitizer]:
    """Sanitizer for one SCTP association, or None when disabled."""
    return AssociationSanitizer() if sanitizers_enabled() else None


def stream_sanitizer() -> Optional[StreamOrderSanitizer]:
    """Sanitizer for one InboundStreams, or None when disabled."""
    return StreamOrderSanitizer() if sanitizers_enabled() else None


def idata_sanitizer() -> Optional[IDataSanitizer]:
    """Sanitizer for one association's I-DATA path, or None when disabled."""
    return IDataSanitizer() if sanitizers_enabled() else None


def rpi_sanitizer() -> Optional[RPISanitizer]:
    """Sanitizer for one RPI's rendezvous machine, or None when disabled."""
    return RPISanitizer() if sanitizers_enabled() else None


def option_b_sanitizer() -> Optional[OptionBSanitizer]:
    """Sanitizer for SCTP-RPI stream multiplexing, or None when disabled."""
    return OptionBSanitizer() if sanitizers_enabled() else None


__all__: List[str] = [
    "InvariantViolation",
    "POOL_POISON",
    "sanitizers_enabled",
    "enable_sanitizers",
    "reset_sanitizers",
    "sanitized",
    "KernelSanitizer",
    "TCPConnectionSanitizer",
    "AssociationSanitizer",
    "StreamOrderSanitizer",
    "IDataSanitizer",
    "RPISanitizer",
    "OptionBSanitizer",
    "kernel_sanitizer",
    "tcp_sanitizer",
    "sctp_sanitizer",
    "stream_sanitizer",
    "idata_sanitizer",
    "rpi_sanitizer",
    "option_b_sanitizer",
]
