"""Determinism lint: an AST pass that flags nondeterminism hazards.

The whole reproduction stands on bit-determinism (same seed, same
figure), so the classic ways Python code goes nondeterministic are
treated as defects and caught statically:

========  ==================================================================
rule id   hazard
========  ==================================================================
AN101     wall-clock reads (``time.time``, ``datetime.now``, ...) — virtual
          time must come from ``kernel.now``
AN102     module-level randomness (``random.random()``, bare
          ``np.random.*``) — randomness must come from kernel-owned,
          per-label streams (``kernel.rng(label)``) or an explicitly
          seeded generator (``random.Random(seed)``,
          ``np.random.default_rng(seed)``)
AN103     iteration over a ``set`` (literal, comprehension, ``set()`` /
          ``frozenset()`` call, or a local assigned from one) — set order
          follows PYTHONHASHSEED for str/object elements, so any loop
          with side effects becomes run-to-run nondeterministic
AN104     ``id()`` used for ordering (inside ``sorted``/``min``/``max`` or
          an ordering comparison) — CPython ids are allocation addresses
AN105     touching kernel heap internals (``kernel._heap``, ``._seq``,
          writes to ``._now`` ...) outside ``simkernel/kernel.py`` —
          event order is the kernel's alone to maintain
========  ==================================================================

Suppressions are explicit and auditable, modelled on ``noqa``:

* ``# repro: allow[AN101]`` on the offending line, or
* ``# repro: allow-file[AN101]`` anywhere, for the whole file;
  both accept a comma-separated rule list.

:func:`lint_paths` returns structured :class:`Finding` objects; the CLI
(``python -m repro.analyze lint``) renders them as text or JSON and
exits non-zero on any unsuppressed finding, which is what CI gates on.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

RULES: Dict[str, str] = {
    "AN101": "wall-clock read; use kernel.now / virtual time",
    "AN102": "module-level randomness; use kernel.rng(label) or a seeded generator",
    "AN103": "iteration over a set; order follows PYTHONHASHSEED",
    "AN104": "id() used for ordering; ids are allocation addresses",
    "AN105": "kernel heap internals touched outside simkernel/kernel.py",
    "AN106": "unused suppression; the allow comment matches no finding",
}

#: rules the *lint* owns; ``allow`` entries for other families (the flow
#: analyzer's AN2xx/AN3xx) are invisible here, so AN106 never judges them
_LINT_RULE_PREFIX = "AN1"

# AN101: time-module functions that read the host clock
_WALL_CLOCK_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
# AN101: datetime/date constructors that embed "now"
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}

# AN102: the only attributes of the random/np.random modules that name a
# *constructible, seedable* generator rather than the shared global stream
_SEEDABLE_RANDOM = {"Random", "SystemRandom"}
_SEEDABLE_NUMPY = {"default_rng", "Generator", "SeedSequence", "RandomState"}

# AN105: kernel attributes that are scheduling internals.  Loads of _now
# are tolerated (documented hot-path idiom for reading the clock); loads
# of _heap are not, because the only reason to read the heap is to poke it.
_KERNEL_INTERNAL_STORE = {"_heap", "_seq", "_now", "_live_events", "_cancelled_in_heap"}
_KERNEL_INTERNAL_LOAD = {"_heap", "_seq"}

_ALLOW_LINE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]")
_ALLOW_FILE = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint hit, pointing at a file:line:col."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expr(node: ast.AST) -> bool:
    """Expressions that evaluate to a set with hash-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    """Single-file AST walk implementing rules AN101-AN105."""

    def __init__(self, path: str, in_kernel_module: bool) -> None:
        self.path = path
        self.in_kernel_module = in_kernel_module
        self.findings: List[Finding] = []
        # per-function map of local names known to hold a set
        self._set_locals: List[Dict[str, int]] = [{}]
        # depth inside sorted()/min()/max() argument lists (for AN104)
        self._ordering_depth = 0

    # -- bookkeeping -----------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def _push_scope(self) -> None:
        self._set_locals.append({})

    def _pop_scope(self) -> None:
        self._set_locals.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    # -- AN103 bookkeeping: which locals hold sets -----------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            scope = self._set_locals[-1]
            if _is_set_expr(node.value):
                scope[name] = node.lineno
            else:
                scope.pop(name, None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            scope = self._set_locals[-1]
            if _is_set_expr(node.value):
                scope[node.target.id] = node.lineno
            else:
                scope.pop(node.target.id, None)
        self.generic_visit(node)

    def _iter_is_set(self, iter_node: ast.AST) -> bool:
        if _is_set_expr(iter_node):
            return True
        if isinstance(iter_node, ast.Name):
            for scope in reversed(self._set_locals):
                if iter_node.id in scope:
                    return True
        return False

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._iter_is_set(iter_node):
            what = _dotted(iter_node) or "a set expression"
            self._emit(
                iter_node,
                "AN103",
                f"iterating over {what!r}: set order follows PYTHONHASHSEED; "
                "sort it or use dict.fromkeys for insertion order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- calls: AN101, AN102, AN104 --------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)

        # AN101 wall clock
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base == "time" and func.attr in _WALL_CLOCK_TIME:
                self._emit(
                    node,
                    "AN101",
                    f"{dotted}() reads the host clock; simulations must use "
                    "kernel.now",
                )
            elif func.attr in _WALL_CLOCK_DATETIME and base.split(".")[-1] in (
                "datetime",
                "date",
            ):
                self._emit(
                    node,
                    "AN101",
                    f"{dotted}() reads the host clock; simulations must use "
                    "kernel.now",
                )

            # AN102 module-level randomness
            if base == "random" and func.attr not in _SEEDABLE_RANDOM:
                self._emit(
                    node,
                    "AN102",
                    f"{dotted}() draws from the process-global stream; use "
                    "kernel.rng(label)",
                )
            elif base in ("np.random", "numpy.random") and (
                func.attr not in _SEEDABLE_NUMPY
            ):
                self._emit(
                    node,
                    "AN102",
                    f"{dotted}() draws from numpy's global stream; use a "
                    "seeded np.random.default_rng",
                )

        # AN104: id() anywhere inside a sorted/min/max argument list
        if isinstance(func, ast.Name) and func.id == "id" and self._ordering_depth:
            self._emit(
                node,
                "AN104",
                "id() used inside an ordering call; ids are allocation "
                "addresses and vary run to run",
            )

        if isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            self._ordering_depth += 1
            self.generic_visit(node)
            self._ordering_depth -= 1
        else:
            self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # AN102: `from random import randint` smuggles the global stream in
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _SEEDABLE_RANDOM:
                    self._emit(
                        node,
                        "AN102",
                        f"'from random import {alias.name}' binds the "
                        "process-global stream; use kernel.rng(label)",
                    )
        self.generic_visit(node)

    # -- AN104: id() as an ordering comparand ----------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        if any(isinstance(op, ordering_ops) for op in node.ops):
            for operand in operands:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "id"
                ):
                    self._emit(
                        operand,
                        "AN104",
                        "id() compared with an ordering operator; ids are "
                        "allocation addresses and vary run to run",
                    )
        self.generic_visit(node)

    # -- AN105: kernel internals -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.in_kernel_module:
            base = node.value
            via_kernel = (isinstance(base, ast.Name) and base.id == "kernel") or (
                isinstance(base, ast.Attribute) and base.attr == "kernel"
            )
            if via_kernel:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    if node.attr in _KERNEL_INTERNAL_STORE:
                        self._emit(
                            node,
                            "AN105",
                            f"write to kernel.{node.attr} outside "
                            "simkernel/kernel.py corrupts event ordering",
                        )
                elif node.attr in _KERNEL_INTERNAL_LOAD:
                    self._emit(
                        node,
                        "AN105",
                        f"kernel.{node.attr} accessed outside "
                        "simkernel/kernel.py; schedule via call_at/post_at",
                    )
        self.generic_visit(node)


@dataclass(frozen=True)
class _AllowComment:
    """One parsed ``allow``/``allow-file`` comment, with its position."""

    line: int
    col: int  # 1-based, pointing at the comment token
    file_wide: bool
    rules: Tuple[str, ...]


def _allow_comments(source: str) -> List[_AllowComment]:
    """Parse ``# repro: allow[...]`` comments via the token stream.

    Using tokenize rather than a line regex keeps us honest about what
    is a comment versus a string literal containing one.
    """
    comments: List[_AllowComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_FILE.search(tok.string)
            if match:
                comments.append(
                    _AllowComment(
                        line=tok.start[0],
                        col=tok.start[1] + 1,
                        file_wide=True,
                        rules=tuple(
                            r.strip()
                            for r in match.group(1).split(",")
                            if r.strip()
                        ),
                    )
                )
            match = _ALLOW_LINE.search(tok.string)
            if match:
                comments.append(
                    _AllowComment(
                        line=tok.start[0],
                        col=tok.start[1] + 1,
                        file_wide=False,
                        rules=tuple(
                            r.strip()
                            for r in match.group(1).split(",")
                            if r.strip()
                        ),
                    )
                )
    except tokenize.TokenError:
        pass  # syntax problems surface via ast.parse instead
    return comments


def _suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """(file-wide allowed rules, per-line allowed rules) for *source*."""
    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    for comment in _allow_comments(source):
        if comment.file_wide:
            file_rules.update(comment.rules)
        else:
            line_rules.setdefault(comment.line, set()).update(comment.rules)
    return file_rules, line_rules


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's source text; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                path=path,
                line=err.lineno or 1,
                col=(err.offset or 0) + 1,
                rule="AN100",
                message=f"syntax error: {err.msg}",
            )
        ]
    normalized = path.replace("\\", "/")
    visitor = _Visitor(path, in_kernel_module=normalized.endswith("simkernel/kernel.py"))
    visitor.visit(tree)
    comments = _allow_comments(source)
    file_rules, line_rules = _suppressions(source)

    # AN106: an allow comment (or one rule inside it) that suppresses
    # nothing is itself a defect — stale suppressions hide future bugs.
    # Only rules the lint owns (AN1xx) are judged; allow comments for the
    # flow analyzer's AN2xx/AN3xx findings are out of scope here.
    raw = visitor.findings
    for comment in comments:
        for rule in comment.rules:
            if not rule.startswith(_LINT_RULE_PREFIX) or rule == "AN106":
                continue
            if comment.file_wide:
                used = any(f.rule == rule for f in raw)
            else:
                used = any(
                    f.rule == rule and f.line == comment.line for f in raw
                )
            if not used:
                scope = "allow-file" if comment.file_wide else "allow"
                visitor.findings.append(
                    Finding(
                        path=path,
                        line=comment.line,
                        col=comment.col,
                        rule="AN106",
                        message=(
                            f"unused suppression: {scope}[{rule}] matches no "
                            f"{rule} finding; delete it"
                        ),
                    )
                )

    return [
        f
        for f in visitor.findings
        if f.rule not in file_rules and f.rule not in line_rules.get(f.line, set())
    ]


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: List[Finding] = []
    for f in dict.fromkeys(files):  # dedupe overlapping path arguments
        findings.extend(lint_source(f.read_text(encoding="utf-8"), str(f)))
    # deterministic report order regardless of argument or walk order:
    # (path, line, rule) is the contract, col only breaks residual ties
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return findings


def report_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (stable key order, newline-terminated)."""
    payload = {
        "tool": "repro.analyze.lint",
        "rules": RULES,
        "findings": [asdict(f) for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro.analyze lint`` (returns exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-analyze lint",
        description="determinism lint for the repro simulator sources",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write a machine-readable report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "print a removal listing for unused allow comments (AN106) "
            "instead of failing on them"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    findings = lint_paths(args.paths or ["src/repro"])
    if args.fix:
        stale = [f for f in findings if f.rule == "AN106"]
        findings = [f for f in findings if f.rule != "AN106"]
        for finding in stale:
            print(f"fix: {finding.path}:{finding.line}: {finding.message}")
    if args.json:
        text = report_json(findings)
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text, encoding="utf-8")
    if args.json != "-":
        for finding in findings:
            print(finding.render())
        print(
            f"repro.analyze lint: {len(findings)} finding(s)"
            if findings
            else "repro.analyze lint: clean"
        )
    return 1 if findings else 0


__all__ = [
    "RULES",
    "Finding",
    "lint_source",
    "lint_paths",
    "report_json",
    "main",
]
