"""Interprocedural determinism-taint and fork-purity analyses.

The per-line lint (:mod:`repro.analyze.lint`) catches a wall-clock read
*where it is called*; it cannot see the value flowing through three
helpers into a packet field.  This module performs the whole-program
analyses that close that gap, over the :class:`~.callgraph.Program`
model:

**Determinism taint (AN201-AN205).**  Nondeterminism *sources* — wall
clocks, unseeded randomness, process identity, ``hash()`` order,
environment reads — are propagated through assignments, expressions,
returns, and call arguments (interprocedurally, via per-function
summaries iterated to a fixpoint) into *simulation-visible sinks*:
kernel scheduling arguments (``call_at``/``post_after`` & co.),
:class:`~repro.network.packet.Packet` fields, metrics values
(``inc``/``observe``), and sweep-cache digests.  Every finding carries
the full source→sink trace.  A tainted value that never reaches a sink
is *not* reported: a wall-clock read that only feeds a progress display
is fine (that is what the lint's ``allow`` comments assert), but the
same value laundered into a packet field breaks byte-determinism.

**Fork purity (AN301-AN304).**  Functions reachable from fork
boundaries (``Process(target=...)`` sites — the PDES shard workers and
``repro.supervise`` child entries) must not mutate state that would
diverge between the serial and forked executions: module-global
rebinding or container mutation (AN301), closure-captured state
(AN302), process-wide signal handlers (AN303), and unpicklable
callables passed across the boundary (AN304).  Findings carry the
entry→function reachability chain.

Both analyses honour the lint's ``# repro: allow[ANxxx]`` comments (at
the sink line for taint, the mutation line for purity) and the
machine-readable baseline (:mod:`repro.analyze.baseline`) that lets
accepted findings ride in CI without blocking it.

Known limits (deliberate, documented): control-flow taint is not
tracked (a branch *condition* on ``os.environ`` does not taint the
branches), calls through variables (``fn(*args)``, the kernel's event
dispatch) end propagation at the call site, and attribute stores are
sink-checked but not tracked as taint carriers.
"""

from __future__ import annotations

import ast
import builtins
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, Program, dotted_name
from .lint import _suppressions  # same comment grammar as the lint

FLOW_RULES: Dict[str, str] = {
    "AN201": "wall-clock value flows into a simulation-visible sink",
    "AN202": "unseeded-randomness value flows into a simulation-visible sink",
    "AN203": "process-identity value flows into a simulation-visible sink",
    "AN204": "hash-order-dependent value flows into a simulation-visible sink",
    "AN205": "environment-derived value flows into a simulation-visible sink",
    "AN301": "fork-reachable code mutates module-global state",
    "AN302": "fork-reachable code mutates closure-captured state",
    "AN303": "fork-reachable code registers a process-wide signal handler",
    "AN304": "unpicklable callable captured across a fork boundary",
}

_KIND_RULE = {
    "wall-clock": "AN201",
    "randomness": "AN202",
    "process-identity": "AN203",
    "hash-order": "AN204",
    "environment": "AN205",
}

# -- source tables (shared vocabulary with the lint) -----------------------
_WALL_CLOCK_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
_SEEDABLE_RANDOM = {"Random", "SystemRandom"}
_SEEDABLE_NUMPY = {"default_rng", "Generator", "SeedSequence", "RandomState"}

# -- sink tables -----------------------------------------------------------
#: kernel scheduling entry points: a tainted *when*, *delay*, or callback
#: argument makes the event schedule itself nondeterministic
SCHED_SINK_METHODS = {"call_at", "call_after", "post_at", "post_after", "call_window"}
#: Packet construction/field names: tainted values here go on the wire
PACKET_FIELDS = {"src", "dst", "proto", "payload", "wire_size", "corrupted", "pkt_id"}
#: metrics recording methods: tainted values land in --metrics-json output
METRIC_SINK_METHODS = {"inc", "observe"}
#: sweep-cache digest functions: tainted inputs change cache keys run-to-run
DIGEST_SINK_FUNCS = {"cell_digest", "canonical_json", "digest_payload"}
_HASHLIB_CTORS = {"sha256", "sha1", "md5", "sha512", "blake2b", "blake2s"}

#: taint-summary fixpoint bound (summaries grow monotonically, so this is
#: a safety valve, not a tuning knob; the repo converges in 3-4 rounds)
MAX_FIXPOINT_ROUNDS = 12
#: statement re-walk bound inside one function (handles loops where a
#: name is assigned after its first textual use)
INTRA_PASSES = 3

#: container methods that mutate their receiver in place
MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "popleft", "appendleft", "remove", "discard", "clear", "setdefault",
    "sort", "reverse", "write",
}


@dataclass(frozen=True)
class Tag:
    """One taint mark: a source (or parameter) an expression derives from.

    Identity (for fixpoint convergence) is the origin, not the trace:
    two flows from the same source compare equal, and the first trace
    discovered is kept.
    """

    kind: str  # source kind, or "param"
    origin: str  # "time.time()" for sources; the parameter name for params
    path: str
    line: int
    trace: Tuple[str, ...] = field(default=(), compare=False, hash=False)

    def via(self, step: str) -> "Tag":
        if len(self.trace) >= 16:  # cap runaway chains through deep call stacks
            return self
        return Tag(self.kind, self.origin, self.path, self.line,
                   (*self.trace, step))


@dataclass(frozen=True)
class SinkRecord:
    """A sink reachable from a function parameter (possibly transitively)."""

    kind: str  # "kernel scheduling argument" | "packet field" | ...
    desc: str  # "argument 1 of kernel.post_after"
    path: str
    line: int
    trace: Tuple[str, ...] = field(default=(), compare=False, hash=False)

    def via(self, step: str) -> "SinkRecord":
        if len(self.trace) >= 16:
            return self
        return SinkRecord(self.kind, self.desc, self.path, self.line,
                          (step, *self.trace))


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural finding with its source→sink (or chain) trace."""

    rule: str
    path: str  # where the defect anchors (sink for taint, mutation for purity)
    line: int
    function: str  # qualname of the function the finding anchors in
    source: str  # source description (taint) or mutated name (purity)
    sink: str  # sink description (taint) or entry chain summary (purity)
    message: str
    trace: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}: {self.rule} {self.message}"]
        lines.extend(f"    {step}" for step in self.trace)
        return "\n".join(lines)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "source": self.source,
            "sink": self.sink,
            "message": self.message,
            "trace": list(self.trace),
        }


class _Summary:
    """Per-function taint summary, grown monotonically to a fixpoint."""

    __slots__ = ("ret_tags", "ret_params", "param_sinks", "findings")

    def __init__(self) -> None:
        self.ret_tags: Set[Tag] = set()  # source tags reaching the return value
        self.ret_params: Set[str] = set()  # params flowing to the return value
        self.param_sinks: Dict[str, List[SinkRecord]] = {}
        self.findings: Set[FlowFinding] = set()

    def key(self) -> Tuple:
        """Convergence key: the parts callers depend on."""
        return (
            frozenset(self.ret_tags),
            frozenset(self.ret_params),
            frozenset(
                (p, s.kind, s.desc, s.path, s.line)
                for p, sinks in self.param_sinks.items()
                for s in sinks
            ),
        )

    def add_param_sink(self, param: str, record: SinkRecord) -> None:
        existing = self.param_sinks.setdefault(param, [])
        if all(
            (r.kind, r.desc, r.path, r.line) != (record.kind, record.desc,
                                                 record.path, record.line)
            for r in existing
        ):
            existing.append(record)


def _source_kind(module: ModuleInfo, call: ast.Call, program: Program) -> Optional[Tuple[str, str]]:
    """(kind, rendered call) if this call reads a nondeterminism source."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "hash":
            return "hash-order", "hash()"
        resolved = program.resolve_name(module, func.id)
        # `from os import urandom` / `from time import time` style imports
        base, _, leaf = resolved.rpartition(".")
        if base == "time" and leaf in _WALL_CLOCK_TIME:
            return "wall-clock", f"time.{leaf}()"
        if base == "os" and leaf in ("urandom", "getpid", "getppid", "getenv"):
            kind = {"urandom": "randomness", "getenv": "environment"}.get(
                leaf, "process-identity"
            )
            return kind, f"os.{leaf}()"
        if base == "random" and leaf not in _SEEDABLE_RANDOM and resolved:
            return "randomness", f"random.{leaf}()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    dotted = dotted_name(func)
    base = dotted_name(func.value)
    resolved_base = program.resolve_dotted(module, base) if base else ""
    attr = func.attr
    if resolved_base == "time" and attr in _WALL_CLOCK_TIME:
        return "wall-clock", f"{dotted}()"
    if attr in _WALL_CLOCK_DATETIME and resolved_base.split(".")[-1] in (
        "datetime", "date",
    ):
        return "wall-clock", f"{dotted}()"
    if resolved_base == "random" and attr not in _SEEDABLE_RANDOM:
        return "randomness", f"{dotted}()"
    if resolved_base in ("numpy.random", "np.random") and attr not in _SEEDABLE_NUMPY:
        return "randomness", f"{dotted}()"
    if resolved_base == "os":
        if attr == "urandom":
            return "randomness", f"{dotted}()"
        if attr in ("getpid", "getppid"):
            return "process-identity", f"{dotted}()"
        if attr == "getenv":
            return "environment", f"{dotted}()"
    if resolved_base == "uuid" and attr in ("uuid1", "uuid4"):
        return "randomness", f"{dotted}()"
    if base in ("os.environ",) or resolved_base.endswith("os.environ"):
        # os.environ.get(...) and friends
        return "environment", f"{dotted}()"
    return None


def _environ_read(module: ModuleInfo, node: ast.AST, program: Program) -> bool:
    """``os.environ[...]`` subscript reads."""
    if isinstance(node, ast.Subscript):
        dotted = dotted_name(node.value)
        if dotted and program.resolve_dotted(module, dotted).endswith("os.environ"):
            return True
    return False


def _sink_of_call(
    module: ModuleInfo, call: ast.Call, program: Program
) -> Optional[Tuple[str, str]]:
    """(sink kind, callee display) if this call's arguments are sinks."""
    func = call.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in SCHED_SINK_METHODS:
            return "kernel scheduling argument", dotted_name(func) or attr
        if attr in METRIC_SINK_METHODS:
            return "metrics value", dotted_name(func) or attr
        if attr == "acquire":
            dotted = dotted_name(func)
            resolved = program.resolve_dotted(module, dotted) if dotted else ""
            if resolved.endswith("Packet.acquire") or dotted.endswith("Packet.acquire"):
                return "packet field", dotted or "Packet.acquire"
        if attr in _HASHLIB_CTORS or attr == "update":
            dotted = dotted_name(func)
            base = dotted_name(func.value)
            resolved = program.resolve_dotted(module, base) if base else ""
            if resolved == "hashlib" or (attr == "update" and "hash" in base.lower()):
                return "digest input", dotted or attr
        return None
    if isinstance(func, ast.Name):
        resolved = program.resolve_name(module, func.id)
        leaf = resolved.rsplit(".", 1)[-1] if resolved else func.id
        if leaf in DIGEST_SINK_FUNCS or func.id in DIGEST_SINK_FUNCS:
            return "sweep-cache digest", func.id
        if resolved.endswith(".Packet") or func.id == "Packet":
            return "packet field", func.id
    return None


def _is_packet_field_store(target: ast.Attribute) -> bool:
    """Attribute stores whose name is a Packet wire field."""
    return target.attr in PACKET_FIELDS


class _TaintPass:
    """One abstract-interpretation pass over one function's body."""

    def __init__(
        self,
        analysis: "FlowAnalysis",
        info: FunctionInfo,
        module: ModuleInfo,
        summary: _Summary,
    ) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.info = info
        self.module = module
        self.summary = summary
        self.env: Dict[str, Set[Tag]] = {
            p: {Tag("param", p, info.path, info.lineno)} for p in info.params
        }

    # -- expression taint -------------------------------------------------
    def eval(self, node: Optional[ast.AST]) -> Set[Tag]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if _environ_read(self.module, node, self.program):
            dotted = dotted_name(node.value) if isinstance(node, ast.Subscript) else ""
            return {
                Tag("environment", f"{dotted}[...]", self.info.path, node.lineno)
            }
        if isinstance(node, ast.Attribute):
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            tags: Set[Tag] = set()
            for element in node.elts:
                tags |= self.eval(element)
            return tags
        if isinstance(node, ast.Dict):
            tags = set()
            for key in node.keys:
                tags |= self.eval(key)
            for value in node.values:
                tags |= self.eval(value)
            return tags
        if isinstance(node, ast.BoolOp):
            tags = set()
            for value in node.values:
                tags |= self.eval(value)
            return tags
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            tags = self.eval(node.left)
            for comparator in node.comparators:
                tags |= self.eval(comparator)
            return tags
        if isinstance(node, ast.IfExp):
            # a ternary is a select: the *test* decides the value, so its
            # taint flows (statement-level If conditions deliberately don't)
            return self.eval(node.test) | self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            tags = set()
            for value in node.values:
                tags |= self.eval(value)
            return tags
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            tags = self.eval(node.elt)
            for gen in node.generators:
                tags |= self.eval(gen.iter)
            return tags
        if isinstance(node, ast.DictComp):
            tags = self.eval(node.key) | self.eval(node.value)
            for gen in node.generators:
                tags |= self.eval(gen.iter)
            return tags
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return self.eval(node.value) if node.value else set()
        if isinstance(node, ast.NamedExpr):
            tags = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, tags)
            return tags
        return set()

    def _eval_call(self, call: ast.Call) -> Set[Tag]:
        source = _source_kind(self.module, call, self.program)
        if source is not None:
            kind, rendered = source
            return {
                Tag(
                    kind,
                    rendered,
                    self.info.path,
                    call.lineno,
                    trace=(
                        f"source: {rendered} at {self.info.path}:{call.lineno} "
                        f"in {self.info.shortname}",
                    ),
                )
            }
        arg_tags: List[Tuple[Optional[str], ast.AST, Set[Tag]]] = []
        # evaluate arguments exactly once, remembering the expression
        for arg in call.args:
            arg_tags.append((None, arg, self.eval(arg)))
        for kw in call.keywords:
            arg_tags.append((kw.arg, kw.value, self.eval(kw.value)))

        # the call itself may be a sink
        sink = _sink_of_call(self.module, call, self.program)
        if sink is not None:
            sink_kind, callee_display = sink
            for index, (kw_name, _argnode, tags) in enumerate(arg_tags):
                where = f"argument {kw_name or index}"
                record = SinkRecord(
                    kind=sink_kind,
                    desc=f"{where} of {callee_display}",
                    path=self.info.path,
                    line=call.lineno,
                    trace=(
                        f"sink: {where} of {callee_display}() at "
                        f"{self.info.path}:{call.lineno} [{sink_kind}]",
                    ),
                )
                self._flow_into_sink(tags, record)

        target = self.program.resolve_call(self.module, call, self.info)
        result: Set[Tag] = set()
        if not target.functions:
            # unknown callee: conservative pass-through of argument taint
            for _kw, _node, tags in arg_tags:
                for tag in tags:
                    result.add(tag)
            return result
        for callee in target.functions:
            callee_summary = self.analysis.summaries.get(callee.qualname)
            if callee_summary is None:
                continue
            params = list(callee.params)
            if callee.is_method and isinstance(call.func, ast.Attribute) and params:
                params = params[1:]  # instance call: drop self/cls
            step_site = f"{self.info.path}:{call.lineno}"
            for index, (kw_name, _node, tags) in enumerate(arg_tags):
                if not tags:
                    continue
                if kw_name is not None:
                    param = kw_name if kw_name in callee.params else None
                elif index < len(params):
                    param = params[index]
                else:
                    param = None
                if param is None:
                    continue
                enter = (
                    f"passes into {callee.shortname}({param}) at {step_site}"
                )
                if param in callee_summary.ret_params:
                    for tag in tags:
                        result.add(
                            tag.via(enter).via(
                                f"returns from {callee.shortname} to "
                                f"{self.info.shortname} at {step_site}"
                            )
                        )
                for record in callee_summary.param_sinks.get(param, []):
                    self._flow_into_sink(
                        {tag.via(enter) for tag in tags}, record
                    )
            for tag in callee_summary.ret_tags:
                result.add(
                    tag.via(
                        f"returned by {callee.shortname} called at {step_site} "
                        f"in {self.info.shortname}"
                    )
                )
        return result

    def _flow_into_sink(self, tags: Iterable[Tag], record: SinkRecord) -> None:
        for tag in tags:
            if tag.kind == "param":
                self.summary.add_param_sink(
                    tag.origin,
                    record.via(
                        f"from parameter {tag.origin!r} of {self.info.shortname}"
                    ),
                )
            else:
                self.analysis.emit_taint(self.info, tag, record)

    # -- statements -------------------------------------------------------
    def _bind(self, name: str, tags: Set[Tag]) -> None:
        # weak update (union): branch joins never lose taint; the cost is
        # that a genuinely-overwritten taint lingers, which the baseline
        # absorbs if it ever produces a spurious finding
        if tags:
            self.env.setdefault(name, set()).update(tags)

    def _bind_target(self, target: ast.AST, tags: Set[Tag]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, tags)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tags)
        elif isinstance(target, ast.Attribute):
            if tags and _is_packet_field_store(target):
                record = SinkRecord(
                    kind="packet field",
                    desc=f"store to .{target.attr}",
                    path=self.info.path,
                    line=target.lineno,
                    trace=(
                        f"sink: store to .{target.attr} at "
                        f"{self.info.path}:{target.lineno} [packet field]",
                    ),
                )
                self._flow_into_sink(tags, record)

    def exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are analysed as their own functions
        if isinstance(stmt, ast.Assign):
            tags = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, tags)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            tags = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                tags |= set(self.env.get(stmt.target.id, ()))
            self._bind_target(stmt.target, tags)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for tag in self.eval(stmt.value):
                    if tag.kind == "param":
                        self.summary.ret_params.add(tag.origin)
                    else:
                        self.summary.ret_tags.add(
                            tag.via(
                                f"returned by {self.info.shortname} "
                                f"({self.info.path}:{stmt.lineno})"
                            )
                        )
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(stmt.target, self.eval(stmt.iter))
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, tags)
            self.exec_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no taint flow


class FlowAnalysis:
    """Drives the taint fixpoint over a program and collects findings."""

    def __init__(self, program: Program, graph: Optional[CallGraph] = None) -> None:
        self.program = program
        self.graph = graph if graph is not None else CallGraph.build(program)
        self.summaries: Dict[str, _Summary] = {
            q: _Summary() for q in program.functions
        }
        self._taint_findings: Set[FlowFinding] = set()

    # -- taint ------------------------------------------------------------
    def emit_taint(self, info: FunctionInfo, tag: Tag, record: SinkRecord) -> None:
        rule = _KIND_RULE.get(tag.kind)
        if rule is None:  # "param" tags never reach here
            return
        trace = (*tag.trace, *record.trace)
        self._taint_findings.add(
            FlowFinding(
                rule=rule,
                path=record.path,
                line=record.line,
                function=info.qualname,
                source=f"{tag.origin} ({tag.path})",
                sink=f"{record.desc} ({record.path}) [{record.kind}]",
                message=(
                    f"{FLOW_RULES[rule]}: {tag.origin} reaches "
                    f"{record.desc} [{record.kind}]"
                ),
                trace=trace,
            )
        )

    def run_taint(self) -> List[FlowFinding]:
        """Iterate per-function summaries to a fixpoint; return findings."""
        order = sorted(self.program.functions)
        callers = self.graph.callers_of()
        pending: Set[str] = set(order)
        for _round in range(MAX_FIXPOINT_ROUNDS):
            if not pending:
                break
            batch, pending = sorted(pending), set()
            for qualname in batch:
                info = self.program.functions[qualname]
                module = self.program.modules[info.module]
                summary = self.summaries[qualname]
                before = summary.key()
                for _ in range(INTRA_PASSES):
                    walker = _TaintPass(self, info, module, summary)
                    body = getattr(info.node, "body", [])
                    prev_env_size = -1
                    while prev_env_size != sum(len(v) for v in walker.env.values()):
                        prev_env_size = sum(len(v) for v in walker.env.values())
                        walker.exec_body(body)
                if summary.key() != before:
                    pending.update(callers.get(qualname, ()))
        return self._suppress(sorted(
            self._taint_findings,
            key=lambda f: (f.path, f.line, f.rule, f.source, f.sink),
        ))

    # -- purity -----------------------------------------------------------
    def run_purity(self, extra_entries: Sequence[str] = ()) -> List[FlowFinding]:
        """Write-set analysis of everything reachable from fork boundaries."""
        findings: Set[FlowFinding] = set()
        entries = [
            site.target for site in self.graph.fork_sites if site.target
        ]
        entries.extend(e for e in extra_entries if e in self.program.functions)
        parents = self.graph.reachable_from(entries) if entries else {}

        # AN304: unpicklable callables at the fork sites themselves
        for site in self.graph.fork_sites:
            caller = self.program.functions.get(site.caller)
            if caller is None:
                continue
            module = self.program.modules[caller.module]
            for kw in site.call.keywords:
                values = [kw.value]
                if kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                    values = list(kw.value.elts)
                for value in values:
                    bad = None
                    if isinstance(value, ast.Lambda):
                        bad = "a lambda"
                    elif isinstance(value, ast.Name):
                        nested = f"{site.caller}.<locals>.{value.id}"
                        if nested in self.program.functions:
                            bad = f"nested function {value.id!r}"
                    if bad is not None:
                        findings.add(
                            FlowFinding(
                                rule="AN304",
                                path=site.path,
                                line=value.lineno,
                                function=site.caller,
                                source=bad,
                                sink=f"Process(...) at {site.path}:{site.lineno}",
                                message=(
                                    f"{FLOW_RULES['AN304']}: {bad} passed to "
                                    "Process(...) cannot cross a spawn "
                                    "boundary and hides shared state under fork"
                                ),
                                trace=(
                                    f"fork site: Process(...) at "
                                    f"{site.path}:{site.lineno} in {site.caller}",
                                ),
                            )
                        )

        for qualname in sorted(parents):
            info = self.program.functions.get(qualname)
            if info is None:
                continue
            chain = self.graph.chain(parents, qualname)
            chain_desc = " -> ".join(
                self.program.functions[q].shortname if q in self.program.functions
                else q
                for q in chain
            )
            trace = tuple(
                f"reachable: {step}"
                for step in [f"fork entry chain: {chain_desc}"]
            )
            findings.update(self._purity_scan(info, chain_desc, trace))
        return self._suppress(sorted(
            findings, key=lambda f: (f.path, f.line, f.rule, f.source)
        ))

    def _purity_scan(
        self, info: FunctionInfo, chain_desc: str, trace: Tuple[str, ...]
    ) -> List[FlowFinding]:
        module = self.program.modules[info.module]
        node = info.node
        body = getattr(node, "body", [])
        global_decls: Set[str] = set()
        nonlocal_decls: Set[str] = set()
        assigned: Set[str] = set()

        def collect(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue  # nested scopes are their own functions
                if isinstance(stmt, ast.Global):
                    global_decls.update(stmt.names)
                elif isinstance(stmt, ast.Nonlocal):
                    nonlocal_decls.update(stmt.names)
                else:
                    for child in ast.walk(stmt):
                        if isinstance(child, ast.Name) and isinstance(
                            child.ctx, ast.Store
                        ):
                            assigned.add(child.id)
                for block in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, block, [])
                    if sub and isinstance(sub[0], ast.stmt):
                        collect(sub)
                for handler in getattr(stmt, "handlers", []):
                    collect(handler.body)

        collect(body)
        local_names = (set(info.params) | assigned) - global_decls - nonlocal_decls

        findings: List[FlowFinding] = []

        def is_module_global(name: str) -> bool:
            if name in local_names:
                return False
            return (
                name in module.global_names
                or name in module.functions
                or name in module.classes
            )

        def is_free_var(name: str) -> bool:
            if "<locals>" not in info.qualname:
                return False  # only nested functions have closures
            return (
                name not in local_names
                and name not in module.global_names
                and name not in module.imports
                and name not in module.functions
                and name not in module.classes
                and not hasattr(builtins, name)
                and not name.startswith("__")
            )

        def emit(rule: str, line: int, source: str, detail: str) -> None:
            findings.append(
                FlowFinding(
                    rule=rule,
                    path=info.path,
                    line=line,
                    function=info.qualname,
                    source=source,
                    sink=f"fork-reachable via {chain_desc.split(' -> ')[0]}",
                    message=f"{FLOW_RULES[rule]}: {detail}",
                    trace=(*trace, f"at: {info.path}:{line} in {info.shortname}"),
                )
            )

        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is not node:
                    # nested defs are scanned as their own reachable functions
                    continue
            # rebinding a declared global / nonlocal
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if not isinstance(name_node, ast.Name):
                            continue
                        if name_node.id in global_decls:
                            emit(
                                "AN301", stmt.lineno, name_node.id,
                                f"rebinds module global {name_node.id!r}; the "
                                "write is invisible to the parent and to "
                                "sibling shards",
                            )
                        elif name_node.id in nonlocal_decls:
                            emit(
                                "AN302", stmt.lineno, name_node.id,
                                f"rebinds closure variable {name_node.id!r} "
                                "from fork-reachable code",
                            )
                    # mutation through subscript/attribute of a global
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name = target.value.id
                        if is_module_global(name):
                            emit(
                                "AN301", stmt.lineno, name,
                                f"mutates module-global container "
                                f"{name!r} by item assignment",
                            )
                    if isinstance(target, ast.Attribute):
                        base = dotted_name(target.value)
                        root = base.split(".")[0] if base else ""
                        if root and root in module.imports and "." not in base:
                            resolved = module.imports.get(root, "")
                            if resolved in self.program.modules or (
                                resolved and resolved.rsplit(".", 1)[0]
                                in self.program.modules
                            ):
                                emit(
                                    "AN301", stmt.lineno, f"{base}.{target.attr}",
                                    f"writes attribute {target.attr!r} on "
                                    f"module {base!r} from fork-reachable code",
                                )
                        elif root and is_module_global(root) and root != "self":
                            emit(
                                "AN301", stmt.lineno, f"{base}.{target.attr}",
                                f"writes attribute {target.attr!r} on "
                                f"module-global object {base!r}",
                            )
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if is_module_global(target.value.id):
                            emit(
                                "AN301", stmt.lineno, target.value.id,
                                f"deletes items of module-global container "
                                f"{target.value.id!r}",
                            )
            if isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute):
                    dotted = dotted_name(func)
                    base = dotted_name(func.value)
                    resolved_base = (
                        self.program.resolve_dotted(module, base) if base else ""
                    )
                    if resolved_base == "signal" and func.attr == "signal":
                        emit(
                            "AN303", stmt.lineno, "signal.signal",
                            "installs a process-wide signal handler from "
                            "fork-reachable code; handlers must be registered "
                            "by the supervising parent only",
                        )
                    elif func.attr in MUTATING_METHODS and isinstance(
                        func.value, ast.Name
                    ):
                        name = func.value.id
                        if is_module_global(name):
                            emit(
                                "AN301", stmt.lineno, name,
                                f"mutates module-global container {name!r} "
                                f"via .{func.attr}()",
                            )
                        elif is_free_var(name):
                            emit(
                                "AN302", stmt.lineno, name,
                                f"mutates closure-captured object {name!r} "
                                f"via .{func.attr}()",
                            )
        return findings

    # -- suppression ------------------------------------------------------
    def _suppress(self, findings: List[FlowFinding]) -> List[FlowFinding]:
        """Honour ``# repro: allow[ANxxx]`` at each finding's anchor line."""
        by_path: Dict[str, Tuple[Set[str], Dict[int, Set[str]]]] = {}
        for module in self.program.modules.values():
            if module.path not in by_path and module.source:
                by_path[module.path] = _suppressions(module.source)
        kept: List[FlowFinding] = []
        for finding in findings:
            file_rules, line_rules = by_path.get(finding.path, (set(), {}))
            if finding.rule in file_rules:
                continue
            if finding.rule in line_rules.get(finding.line, set()):
                continue
            kept.append(finding)
        return kept


def analyze_tree(
    root: str,
    package: str = "repro",
    extra_entries: Sequence[str] = (),
) -> List[FlowFinding]:
    """Run both analyses over a source tree; findings sorted for stable diffs."""
    program = Program.load(root, package)
    return analyze_program(program, extra_entries)


def analyze_program(
    program: Program, extra_entries: Sequence[str] = ()
) -> List[FlowFinding]:
    analysis = FlowAnalysis(program)
    findings = analysis.run_taint() + analysis.run_purity(extra_entries)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.source, f.sink))
    return findings


# -- SARIF -----------------------------------------------------------------
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _sarif_location(path: str, line: int, message: Optional[str] = None) -> Dict:
    location: Dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": max(1, line)},
        }
    }
    if message is not None:
        location["message"] = {"text": message}
    return location


def sarif_report(
    flow_findings: Sequence[FlowFinding] = (),
    lint_findings: Sequence = (),
    fingerprints: Optional[Dict[FlowFinding, str]] = None,
) -> str:
    """SARIF 2.1.0 document covering flow and (optionally) lint findings.

    Flow findings carry their source→sink traces as SARIF ``codeFlows``
    so GitHub code scanning renders the interprocedural path inline.
    """
    from .lint import RULES as LINT_RULES

    rules = [
        {
            "id": rule,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, desc in sorted({**LINT_RULES, **FLOW_RULES}.items())
    ]
    results: List[Dict] = []
    for finding in lint_findings:
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [_sarif_location(finding.path, finding.line)],
            }
        )
    for finding in flow_findings:
        result: Dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_sarif_location(finding.path, finding.line)],
        }
        if finding.trace:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": _sarif_location(
                                        finding.path, finding.line, step
                                    )
                                }
                                for step in finding.trace
                            ]
                        }
                    ]
                }
            ]
        if fingerprints and finding in fingerprints:
            result["partialFingerprints"] = {
                "reproAnalyze/v1": fingerprints[finding]
            }
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def report_json(findings: Sequence[FlowFinding]) -> str:
    """Machine-readable flow report (stable key order, newline-terminated)."""
    payload = {
        "tool": "repro.analyze.flow",
        "rules": FLOW_RULES,
        "findings": [f.to_jsonable() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro.analyze flow`` (returns exit code)."""
    import argparse
    import sys
    from pathlib import Path

    from . import baseline as baseline_mod

    parser = argparse.ArgumentParser(
        prog="repro-analyze flow",
        description=(
            "interprocedural determinism-taint and fork-purity analysis "
            "over the simulator sources"
        ),
    )
    parser.add_argument("root", nargs="?", default="src/repro")
    parser.add_argument("--package", default="repro")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="write every current finding to FILE and exit 0",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="machine-readable report ('-' for stdout)"
    )
    parser.add_argument(
        "--sarif", metavar="FILE", help="write a SARIF 2.1.0 report to FILE"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(FLOW_RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    findings = analyze_tree(args.root, args.package)

    if args.update_baseline:
        baseline_mod.write_baseline(findings, args.update_baseline)
        print(
            f"repro.analyze flow: wrote {len(findings)} finding(s) to "
            f"{args.update_baseline}"
        )
        return 0

    unused: List[str] = []
    if args.baseline:
        base = baseline_mod.load_baseline(args.baseline)
        findings, unused = baseline_mod.apply_baseline(findings, base)

    fingerprints = {f: baseline_mod.fingerprint(f) for f in findings}
    if args.sarif:
        Path(args.sarif).write_text(
            sarif_report(findings, fingerprints=fingerprints), encoding="utf-8"
        )
    if args.json:
        text = report_json(findings)
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text, encoding="utf-8")
    if args.json != "-":
        for finding in findings:
            print(finding.render())
        for entry in unused:
            print(f"warning: baseline entry no longer matches anything: {entry}")
        print(
            f"repro.analyze flow: {len(findings)} new finding(s)"
            if findings
            else "repro.analyze flow: clean"
        )
    return 1 if findings else 0


__all__ = [
    "FLOW_RULES",
    "FlowAnalysis",
    "FlowFinding",
    "SinkRecord",
    "Tag",
    "analyze_program",
    "analyze_tree",
    "main",
    "report_json",
    "sarif_report",
]
