"""Collectives built on point-to-point, LAM-style (§2.2.2 last line).

Binomial trees for bcast/reduce/barrier, linear fan-in/out for
gather/scatter, pairwise non-blocking exchange for alltoall.  Collective
traffic uses the communicator's *collective* context, so it can never
match user point-to-point receives, and relies on MPI's rule that
collectives are invoked in the same order on every rank.
"""

from __future__ import annotations

import operator
from typing import Any, List, Optional, Sequence

from .constants import collective_context
from .payload import encode_payload
from .request import RecvRequest, SendRequest

# per-operation tags inside the collective context
TAG_BARRIER = 1
TAG_BCAST = 2
TAG_REDUCE = 3
TAG_GATHER = 4
TAG_SCATTER = 5
TAG_ALLGATHER = 6
TAG_ALLTOALL = 7
TAG_SCAN = 8


def _coll_isend(comm, data: Any, dest: int, tag: int) -> SendRequest:
    body, extra = encode_payload(data)
    req = SendRequest(
        owner_rank=comm.process.rank,
        dest=comm._to_world(dest),
        tag=tag,
        context=collective_context(comm.cid),
        body=body,
        flags_extra=extra,
        synchronous=False,
        seqnum=comm.rpi.next_seq(),
    )
    comm.rpi.start_send(req)
    return req


def _coll_irecv(comm, source: int, tag: int) -> RecvRequest:
    req = RecvRequest(
        owner_rank=comm.process.rank,
        source=comm._to_world(source),
        tag=tag,
        context=collective_context(comm.cid),
    )
    comm.rpi.post_recv(req)
    return req


async def _coll_send(comm, data: Any, dest: int, tag: int) -> None:
    await comm.wait(_coll_isend(comm, data, dest, tag))


async def _coll_recv(comm, source: int, tag: int) -> Any:
    req = _coll_irecv(comm, source, tag)
    await comm.wait(req)
    return req.data


async def bcast(comm, data: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the value on every rank."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return data
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            src = (rank - mask) % size
            data = await _coll_recv(comm, src, TAG_BCAST)
            break
        mask <<= 1
    mask >>= 1
    pending = []
    while mask > 0:
        if relative + mask < size:
            dst = (rank + mask) % size
            pending.append(_coll_isend(comm, data, dst, TAG_BCAST))
        mask >>= 1
    await comm.waitall(pending)
    return data


async def reduce(comm, value: Any, op=None, root: int = 0) -> Any:
    """Binomial-tree reduction; result on root, None elsewhere.

    ``op`` must be commutative+associative (default: ``operator.add``).
    """
    op = op or operator.add
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    relative = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (rank - mask) % size
            await _coll_send(comm, acc, dst, TAG_REDUCE)
            return None
        partner = relative | mask
        if partner < size:
            src = (rank + mask) % size
            acc = op(acc, await _coll_recv(comm, src, TAG_REDUCE))
        mask <<= 1
    return acc


async def allreduce(comm, value: Any, op=None) -> Any:
    """Reduce to rank 0, then broadcast (LAM's default algorithm)."""
    total = await reduce(comm, value, op, root=0)
    return await bcast(comm, total, root=0)


async def barrier(comm) -> None:
    """Fan-in to rank 0, fan-out — a barrier is an allreduce of nothing."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    children: List[int] = []
    parent = None
    mask = 1
    while mask < size:
        if rank & mask:
            parent = rank - mask
            await _coll_send(comm, None, parent, TAG_BARRIER)
            break
        partner = rank | mask
        if partner < size:
            await _coll_recv(comm, partner, TAG_BARRIER)
            children.append(partner)
        mask <<= 1
    if parent is not None:
        await _coll_recv(comm, parent, TAG_BARRIER)
    for child in reversed(children):
        await _coll_send(comm, None, child, TAG_BARRIER)


async def gather(comm, value: Any, root: int = 0) -> Optional[List[Any]]:
    """Linear gather to root."""
    size, rank = comm.size, comm.rank
    if rank != root:
        await _coll_send(comm, value, root, TAG_GATHER)
        return None
    out: List[Any] = [None] * size
    out[rank] = value
    requests = {
        src: _coll_irecv(comm, src, TAG_GATHER) for src in range(size) if src != root
    }
    await comm.waitall(list(requests.values()))
    for src, req in requests.items():
        out[src] = req.data
    return out


async def scatter(comm, values: Optional[Sequence[Any]], root: int = 0) -> Any:
    """Linear scatter from root."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(f"scatter root needs exactly {size} values")
        pending = [
            _coll_isend(comm, values[dst], dst, TAG_SCATTER)
            for dst in range(size)
            if dst != root
        ]
        await comm.waitall(pending)
        return values[rank]
    return await _coll_recv(comm, root, TAG_SCATTER)


async def allgather(comm, value: Any) -> List[Any]:
    """Gather to rank 0, then broadcast the list."""
    gathered = await gather(comm, value, root=0)
    return await bcast(comm, gathered, root=0)


async def alltoall(comm, values: Sequence[Any]) -> List[Any]:
    """Pairwise non-blocking exchange (one item per destination)."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError(f"alltoall needs exactly {size} values")
    out: List[Any] = [None] * size
    out[rank] = values[rank]
    recvs = {
        src: _coll_irecv(comm, src, TAG_ALLTOALL) for src in range(size) if src != rank
    }
    sends = [
        _coll_isend(comm, values[dst], dst, TAG_ALLTOALL)
        for dst in range(size)
        if dst != rank
    ]
    await comm.waitall(list(recvs.values()) + sends)
    for src, req in recvs.items():
        out[src] = req.data
    return out


async def scan(comm, value: Any, op=None) -> Any:
    """Inclusive prefix reduction, linear pipeline."""
    op = op or operator.add
    acc = value
    if comm.rank > 0:
        prev = await _coll_recv(comm, comm.rank - 1, TAG_SCAN)
        acc = op(prev, value)
    if comm.rank < comm.size - 1:
        await _coll_send(comm, acc, comm.rank + 1, TAG_SCAN)
    return acc
