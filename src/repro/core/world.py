"""World bootstrap: cluster + endpoints + MPI processes in one call.

:func:`run_app` is the entry point every example, test, and benchmark
uses: it builds the paper's testbed (8 nodes, gigabit switch, Dummynet
loss), starts one coroutine per rank, runs MPI_Init (connection setup /
association setup + barrier), executes the application, and reports
virtual wall-clock time plus per-layer statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..metrics import MetricsPacketTap, MetricsRegistry, active_collector
from ..network import ClusterConfig, CostModel, build_cluster
from ..simkernel import Future, GBIT_PER_S, Kernel, MICROSECOND, wait_all
from ..transport.sctp import SCTPConfig, SCTPEndpoint
from ..transport.tcp import TCPConfig, TCPEndpoint
from .communicator import Communicator
from .constants import EAGER_LIMIT, WORLD_CONTEXT
from .rpi.sctp_rpi import SCTPRPI
from .rpi.tcp_rpi import TCPRPI


@dataclass
class WorldConfig:
    """Everything needed to stand up one experiment."""

    n_procs: int = 8
    rpi: str = "sctp"  # "sctp" | "tcp"
    seed: int = 0
    loss_rate: float = 0.0
    n_paths: int = 1
    # datacenter-style pod topology (1 = the paper's flat single switch);
    # pods are also the sharding unit for parallel DES (repro.simkernel.pdes)
    n_pods: int = 1
    bandwidth_bps: int = GBIT_PER_S
    prop_delay_ns: int = 5 * MICROSECOND
    extra_delay_ns: int = 0
    cost_model: CostModel = field(default_factory=CostModel)
    num_streams: int = 10  # SCTP RPI stream pool (1 = ablation module)
    eager_limit: int = EAGER_LIMIT
    # RFC 8260 message interleaving (I-DATA) + stream scheduling policy;
    # the scheduler runs either way, but only "fcfs" matches legacy DATA
    # transmission order bit-for-bit
    interleaving: bool = False
    scheduler: str = "fcfs"  # "fcfs" | "rr" | "wfq" | "prio"
    tcp_config: TCPConfig = field(default_factory=TCPConfig)
    sctp_config: SCTPConfig = field(default_factory=SCTPConfig)
    compute_rate_flops: float = 1.0e9  # virtual node speed for NPB kernels
    finalize_barrier: bool = True
    # force metric collection on; an enclosing MetricsCollector also enables
    metrics_enabled: bool = False
    # fault-injection timeline (repro.faults.FaultScenario), armed onto the
    # cluster before any process starts; None = healthy network
    scenario: Optional[Any] = None


@dataclass
class WorldResult:
    """What an experiment run returns."""

    results: List[Any]
    duration_ns: int  # MPI_Init end -> last app() return (virtual time)
    total_ns: int  # includes init
    world: "World"

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


class MPIProcess:
    """One simulated MPI process pinned to one host."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.config.n_procs
        self.kernel = world.kernel
        self.host = world.cluster.hosts[rank]
        self.tcp_endpoint = world.tcp_endpoints[rank]
        self.sctp_endpoint = world.sctp_endpoints[rank]
        if world.config.rpi == "tcp":
            self.rpi = TCPRPI(self, eager_limit=world.config.eager_limit)
        elif world.config.rpi == "sctp":
            self.rpi = SCTPRPI(
                self,
                num_streams=world.config.num_streams,
                eager_limit=world.config.eager_limit,
                interleaving=world.config.interleaving,
                scheduler=world.config.scheduler,
            )
        else:
            raise ValueError(f"unknown rpi {world.config.rpi!r}")

    def addr_of(self, rank: int, path: int = 0) -> str:
        """Primary (or path-``path``) address of a peer rank."""
        return self.world.cluster.host_address(rank, path)

    def compute(self, seconds: float) -> Future:
        """Charge application compute time to this host's CPU."""
        ns = max(0, int(round(seconds * 1e9)))
        fut = Future(name=f"compute-{self.rank}")
        self.host.cpu.execute(ns, fut.set_result, None)
        return fut

    def compute_flops(self, flops: float) -> Future:
        """Compute time derived from an operation count (NPB kernels)."""
        return self.compute(flops / self.world.config.compute_rate_flops)


class World:
    """A full experiment: cluster, transports, processes."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        cfg = self.config
        self._collector = active_collector()
        enabled = cfg.metrics_enabled or self._collector is not None
        self.kernel = Kernel(seed=cfg.seed, metrics=MetricsRegistry(enabled=enabled))
        self.cluster = build_cluster(
            self.kernel,
            ClusterConfig(
                n_hosts=cfg.n_procs,
                n_paths=cfg.n_paths,
                n_pods=cfg.n_pods,
                bandwidth_bps=cfg.bandwidth_bps,
                prop_delay_ns=cfg.prop_delay_ns,
                extra_delay_ns=cfg.extra_delay_ns,
                loss_rate=cfg.loss_rate,
                cost_model=cfg.cost_model,
            ),
        )
        self.tcp_config = cfg.tcp_config
        self.sctp_config = cfg.sctp_config
        self.tcp_endpoints = [
            TCPEndpoint(host, cfg.tcp_config) for host in self.cluster.hosts
        ]
        self.sctp_endpoints = [
            SCTPEndpoint(host, cfg.sctp_config) for host in self.cluster.hosts
        ]
        # arm faults before processes exist so t=0 events see every packet
        self.armed_scenario = (
            self.cluster.arm_scenario(cfg.scenario) if cfg.scenario is not None else None
        )
        self.processes = [MPIProcess(self, r) for r in range(cfg.n_procs)]
        self._init_done_ns = 0
        self._app_done_ns: Dict[int, int] = {}
        if enabled:
            self._packet_tap = MetricsPacketTap(self.kernel.metrics.scope("net.packets"))
            self._packet_tap.attach(self.cluster.hosts)
        else:
            self._packet_tap = None

    @property
    def metrics(self) -> MetricsRegistry:
        """The kernel-owned registry every layer registered into."""
        return self.kernel.metrics

    def communicator(self, rank: int) -> Communicator:
        """COMM_WORLD for one rank (used by the per-rank main)."""
        return Communicator(self.processes[rank], cid=WORLD_CONTEXT)

    async def _main(self, rank: int, app: Callable, args: tuple) -> Any:
        proc = self.processes[rank]
        await proc.rpi.init()
        self._init_done_ns = max(self._init_done_ns, self.kernel.now)
        comm = self.communicator(rank)
        result = await app(comm, *args)
        self._app_done_ns[rank] = self.kernel.now
        if self.config.finalize_barrier:
            await comm.barrier()
        proc.rpi.finalize()
        return result

    def spawn_ranks(self, app: Callable, args: tuple, ranks: List[int]) -> List[Any]:
        """Start the per-rank mains for a subset of ranks (PDES sharding).

        The returned tasks are in ``ranks`` order.  The world is built in
        full either way — every shard holds identical replicas of every
        host/endpoint — but only the ranks a shard *owns* actually run.
        """
        return [
            self.kernel.spawn(self._main(rank, app, args), name=f"rank{rank}")
            for rank in ranks
        ]

    def run(self, app: Callable, *args: Any, limit_ns: Optional[int] = None) -> WorldResult:
        """Run ``app(comm, *args)`` on every rank to completion."""
        tasks = self.spawn_ranks(app, args, list(range(self.config.n_procs)))
        done = wait_all(tasks)
        results = self.kernel.run_until(done, limit=limit_ns)
        last_app_done = max(self._app_done_ns.values())
        if self._collector is not None:
            cfg = self.config
            label = (
                f"rpi={cfg.rpi} n_procs={cfg.n_procs} loss={cfg.loss_rate}"
                f" seed={cfg.seed} streams={cfg.num_streams} paths={cfg.n_paths}"
            )
            if cfg.scenario is not None:
                label += f" scenario={cfg.scenario.name}"
            self._collector.add(label, self.kernel.metrics.snapshot())
        return WorldResult(
            results=results,
            duration_ns=last_app_done - self._init_done_ns,
            total_ns=last_app_done,
            world=self,
        )

    # -- diagnostics ---------------------------------------------------------
    def rpi_stats(self, rank: int):
        """Progression-engine counters of one rank."""
        return self.processes[rank].rpi.stats


def run_app(
    app: Callable,
    *args: Any,
    config: Optional[WorldConfig] = None,
    limit_ns: Optional[int] = None,
    **config_overrides: Any,
) -> WorldResult:
    """One-call experiment: build a world, run ``app`` on every rank.

    ``config_overrides`` are WorldConfig fields, e.g.
    ``run_app(pingpong, rpi="tcp", loss_rate=0.01, seed=3)``.
    """
    if config is None:
        config = WorldConfig(**config_overrides)
    elif config_overrides:
        raise ValueError("pass either config or keyword overrides, not both")
    world = World(config)
    return world.run(app, *args, limit_ns=limit_ns)
