"""The application-facing MPI API (mpi4py naming conventions).

All calls run inside a single per-process coroutine; blocking operations
(``send``/``recv``/``wait*``) drive the RPI's progression engine, exactly
like LAM's single-threaded middleware progresses requests inside blocking
MPI calls.  Non-blocking calls (``isend``/``irecv``) return
:class:`~repro.core.request.Request` objects.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..simkernel import Future
from .constants import ANY_SOURCE, ANY_TAG, pt2pt_context
from .payload import encode_payload
from .request import RecvRequest, Request, SendRequest, Status


class Communicator:
    """An MPI communicator bound to one simulated process."""

    def __init__(self, process, cid: int = 0) -> None:
        self.process = process
        self.rpi = process.rpi
        self.cid = cid
        self.rank = process.rank
        self.size = process.size
        self._next_child_cid = cid * 64 + 1  # deterministic dup() numbering

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking standard send (eager or rendezvous by size)."""
        return self._isend(data, dest, tag, synchronous=False)

    def issend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking synchronous send (completes only when matched)."""
        return self._isend(data, dest, tag, synchronous=True)

    def _isend(self, data: Any, dest: int, tag: int, synchronous: bool) -> Request:
        self._check_peer(dest)
        self._check_tag(tag)
        body, extra = encode_payload(data)
        req = SendRequest(
            owner_rank=self.process.rank,
            dest=self._to_world(dest),
            tag=tag,
            context=pt2pt_context(self.cid),
            body=body,
            flags_extra=extra,
            synchronous=synchronous,
            seqnum=self.rpi.next_seq(),
        )
        self.rpi.start_send(req)
        return req

    async def send(self, data: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard send."""
        await self.wait(self.isend(data, dest, tag))

    async def ssend(self, data: Any, dest: int, tag: int = 0) -> None:
        """Blocking synchronous send."""
        await self.wait(self.issend(data, dest, tag))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; wildcards allowed."""
        if source != ANY_SOURCE:
            self._check_peer(source)
            source = self._to_world(source)
        req = RecvRequest(
            owner_rank=self.process.rank,
            source=source,
            tag=tag,
            context=pt2pt_context(self.cid),
        )
        self.rpi.post_recv(req)
        return req

    async def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Blocking receive; returns the decoded payload."""
        req = self.irecv(source, tag)
        await self.wait(req)
        if status is not None:
            status.source = self._from_world(req.status.source)
            status.tag = req.status.tag
            status.length = req.status.length
        return req.data

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    async def wait(self, request: Request) -> Request:
        """Progress the middleware until ``request`` completes."""
        while not request.done:
            await self.rpi.advance_once()
        request.future.result()  # re-raise failures
        return request

    async def waitall(self, requests: Sequence[Request]) -> List[Request]:
        """MPI_Waitall."""
        while not all(r.done for r in requests):
            await self.rpi.advance_once()
        for request in requests:
            request.future.result()
        return list(requests)

    async def waitany(self, requests: Sequence[Request]) -> Tuple[int, Request]:
        """MPI_Waitany: index and request of the first completion."""
        if not requests:
            raise ValueError("waitany() needs at least one request")
        while True:
            for i, request in enumerate(requests):
                if request.done:
                    request.future.result()
                    return i, request
            await self.rpi.advance_once()

    def test(self, request: Request) -> bool:
        """MPI_Test: one non-blocking progression step, then check."""
        if not request.done:
            self.rpi.poke()
        return request.done

    def testany(self, requests: Sequence[Request]) -> Optional[int]:
        """MPI_Testany: index of a completed request, or None."""
        self.rpi.poke()
        for i, request in enumerate(requests):
            if request.done:
                return i
        return None

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe of the unexpected-message table."""
        self.rpi.poke()
        if source != ANY_SOURCE:
            source = self._to_world(source)
        env = self.rpi.unexpected.peek_match(source, tag, pt2pt_context(self.cid))
        if env is None:
            return None
        return Status(source=self._from_world(env.rank), tag=env.tag, length=env.length)

    async def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe."""
        while True:
            status = self.iprobe(source, tag)
            if status is not None:
                return status
            await self.rpi.advance_once()

    # ------------------------------------------------------------------
    # collectives (implementations in collectives.py)
    # ------------------------------------------------------------------
    async def barrier(self) -> None:
        """MPI_Barrier."""
        from . import collectives

        await collectives.barrier(self)

    async def bcast(self, data: Any, root: int = 0) -> Any:
        """MPI_Bcast; returns the broadcast value on every rank."""
        from . import collectives

        return await collectives.bcast(self, data, root)

    async def reduce(self, value: Any, op=None, root: int = 0) -> Any:
        """MPI_Reduce; result on root, None elsewhere."""
        from . import collectives

        return await collectives.reduce(self, value, op, root)

    async def allreduce(self, value: Any, op=None) -> Any:
        """MPI_Allreduce."""
        from . import collectives

        return await collectives.allreduce(self, value, op)

    async def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """MPI_Gather; list on root, None elsewhere."""
        from . import collectives

        return await collectives.gather(self, value, root)

    async def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        """MPI_Scatter; ``values`` significant only on root."""
        from . import collectives

        return await collectives.scatter(self, values, root)

    async def allgather(self, value: Any) -> List[Any]:
        """MPI_Allgather."""
        from . import collectives

        return await collectives.allgather(self, value)

    async def alltoall(self, values: Sequence[Any]) -> List[Any]:
        """MPI_Alltoall (one item per destination rank)."""
        from . import collectives

        return await collectives.alltoall(self, values)

    async def scan(self, value: Any, op=None) -> Any:
        """MPI_Scan (inclusive prefix reduction)."""
        from . import collectives

        return await collectives.scan(self, value, op)

    async def sendrecv(
        self,
        senddata: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """MPI_Sendrecv: simultaneous, deadlock-free exchange."""
        send_req = self.isend(senddata, dest, sendtag)
        recv_req = self.irecv(source, recvtag)
        await self.waitall([send_req, recv_req])
        if status is not None:
            status.source = self._from_world(recv_req.status.source)
            status.tag = recv_req.status.tag
            status.length = recv_req.status.length
        return recv_req.data

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    async def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """MPI_Comm_split: partition by ``color``, order by ``(key, rank)``.

        Returns None for ``color < 0`` (MPI_UNDEFINED).  Must be called
        collectively.  The sub-communicator maps onto the same processes
        with a fresh context id and remapped ranks.
        """
        triples = await self.allgather((color, key, self.rank))
        child_cid = self._next_child_cid
        self._next_child_cid += 1
        if color < 0:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        world_ranks = [r for _, r in members]
        return _SubCommunicator(self.process, child_cid, world_ranks)

    def dup(self) -> "Communicator":
        """Duplicate the communicator with a fresh context id.

        Must be called collectively (like MPI_Comm_dup); the deterministic
        numbering keeps contexts consistent across ranks.
        """
        child = Communicator(self.process, cid=self._next_child_cid)
        self._next_child_cid += 1
        return child

    def compute(self, seconds: float) -> Future:
        """Model ``seconds`` of application computation on this host's CPU."""
        return self.process.compute(seconds)

    def _to_world(self, local_rank: int) -> int:
        """Translate this communicator's rank numbering to world ranks."""
        return local_rank

    def _from_world(self, world_rank: int) -> int:
        """Inverse of :meth:`_to_world`."""
        return world_rank

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside communicator of size {self.size}")
        if rank == self.rank:
            raise ValueError("self-sends are not supported by these RPIs")

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0:
            raise ValueError(f"send tags must be non-negative, got {tag}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator cid={self.cid} rank={self.rank}/{self.size}>"


class _SubCommunicator(Communicator):
    """A communicator over a subset of world ranks (from split())."""

    def __init__(self, process, cid: int, world_ranks) -> None:
        super().__init__(process, cid=cid)
        self.world_ranks = list(world_ranks)
        self.rank = self.world_ranks.index(process.rank)
        self.size = len(self.world_ranks)
        self._next_child_cid = cid * 64 + 1

    def _to_world(self, local_rank: int) -> int:
        return self.world_ranks[local_rank]

    def _from_world(self, world_rank: int) -> int:
        return self.world_ranks.index(world_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubCommunicator cid={self.cid} rank={self.rank}/{self.size} "
            f"world={self.world_ranks}>"
        )
