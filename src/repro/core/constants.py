"""MPI middleware constants (LAM conventions)."""

# wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG)
ANY_SOURCE = -1
ANY_TAG = -1

#: LAM's short/long message boundary: messages at or below this many bytes
#: are sent eagerly; larger ones use the rendezvous protocol (§2.2.2).
EAGER_LIMIT = 64 * 1024

#: Default port MPI processes bind their transport endpoints to.
MPI_BASE_PORT = 7100

# -- envelope flag bits (the LAM envelope's "flags" field, Fig. 2) --------
FLAG_SHORT = 0x01  # eager short message: body follows the envelope
FLAG_LONG_RNDV = 0x02  # long-message rendezvous request (envelope only)
FLAG_LONG_ACK = 0x04  # receiver's ack: ready for the long body
FLAG_LONG_BODY = 0x08  # second envelope, long body follows
FLAG_SSEND = 0x10  # synchronous short: eager, but completion needs an ack
FLAG_SSEND_ACK = 0x20  # receiver's ack for a synchronous short
FLAG_PICKLED = 0x40  # body is a pickled Python object
FLAG_HELLO = 0x100  # connection setup: identifies the sender's rank
FLAG_BARRIER_READY = 0x200  # init barrier: worker -> rank 0
FLAG_BARRIER_GO = 0x400  # init barrier: rank 0 -> everyone

#: Which flag bits name a message *kind* (exactly one must be set).
KIND_MASK = (
    FLAG_SHORT
    | FLAG_LONG_RNDV
    | FLAG_LONG_ACK
    | FLAG_LONG_BODY
    | FLAG_SSEND
    | FLAG_SSEND_ACK
    | FLAG_HELLO
    | FLAG_BARRIER_READY
    | FLAG_BARRIER_GO
)

# -- contexts --------------------------------------------------------------
#: COMM_WORLD's context id.  Like LAM's cid scheme, each communicator owns
#: two contexts: ``2*cid`` for point-to-point and ``2*cid + 1`` for
#: collectives, so user messages can never match collective traffic.
WORLD_CONTEXT = 0


def pt2pt_context(cid: int) -> int:
    """Point-to-point context of communicator ``cid``."""
    return 2 * cid


def collective_context(cid: int) -> int:
    """Collective context of communicator ``cid``."""
    return 2 * cid + 1
