"""LAM-like MPI middleware — the paper's subject system.

The package implements the message-progression layer the paper re-designed
(§2.2): envelopes, eager/rendezvous/synchronous message protocols,
unexpected-message buffering, wildcard matching, request objects, and
collectives built over point-to-point — with two interchangeable RPI
(request progression interface) modules:

* :class:`repro.core.rpi.tcp_rpi.TCPRPI` — LAM-TCP: one socket per peer,
  ``select()``-driven, strict byte-stream ordering per peer (the baseline),
* :class:`repro.core.rpi.sctp_rpi.SCTPRPI` — the paper's contribution:
  a single one-to-many SCTP socket, associations mapped to ranks, message
  (tag, rank, context) mapped onto a pool of SCTP streams, two-level
  demultiplexing, per-stream state, and the "Option B" fix for the long
  message race (§3.4.2).  ``SCTPRPI(num_streams=1)`` is the single-stream
  ablation used for the head-of-line-blocking experiment (§4.2.2).

Applications are coroutines receiving a :class:`Communicator` whose API
follows mpi4py conventions (``send/recv/isend/irecv``, ``Request.wait``),
plus ``compute(seconds)`` to model computation on the virtual clock.
:func:`repro.core.world.run_app` wires a full cluster together.
"""

from .communicator import Communicator
from .constants import ANY_SOURCE, ANY_TAG, EAGER_LIMIT
from .request import Request, Status
from .world import World, WorldConfig, WorldResult, run_app

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "EAGER_LIMIT",
    "Request",
    "Status",
    "World",
    "WorldConfig",
    "WorldResult",
    "run_app",
]
