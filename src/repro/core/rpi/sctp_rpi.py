"""The paper's SCTP RPI: one-to-many socket, streams, Option B.

This is the module the paper contributes (§3).  Design points, each
mapped to the paper section it implements:

* **one socket, many associations** (§3.1/§3.3): a single one-to-many
  SCTP socket; associations are mapped to ranks via a HELLO envelope;
  no ``select()`` — the RPI simply tries ``sctp_recvmsg``/``sctp_sendmsg``
  and advances other requests on EAGAIN,
* **TRC -> stream mapping** (§3.2.1): messages hash (context, tag) onto a
  fixed pool of stream numbers (10 by default), so differently-tagged
  messages from the same peer are delivered independently —
  ``num_streams=1`` builds the single-stream ablation module of §4.2.2,
* **two-level demultiplexing** (§3.1): association id -> rank, then stream
  number -> per-stream receive state,
* **per-stream state** (§3.2.4): long bodies arrive as a series of SCTP
  messages on one stream; a (rank, stream) continuation record routes
  them to the right request — valid only because of
* **Option B** (§3.4.2): a second middleware message is never started on
  a (peer, stream) while another is still being written to it; each
  (rank, stream) has a FIFO queue and only the head transmits, while
  *other* streams/associations keep making progress,
* **long message re-fragmentation** (§3.4/§3.6): sctp_sendmsg can take at
  most a send-buffer-sized message, so the RPI splits long bodies into
  eager-limit-sized pieces on the same stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ...analyze.sanitize import option_b_sanitizer
from ...transport.sctp import OneToManySocket, SCTPConfig
from ...util.blobs import ChunkList
from ..constants import (
    FLAG_BARRIER_GO,
    FLAG_BARRIER_READY,
    FLAG_HELLO,
    FLAG_LONG_BODY,
    MPI_BASE_PORT,
)
from ..envelope import ENVELOPE_SIZE, Envelope
from .base import BaseRPI


@dataclass
class _SctpOutUnit:
    """One middleware unit, transmitted as 1..N SCTP messages."""

    env: Envelope
    body: ChunkList
    on_sent: Optional[Callable[[], None]] = None
    env_sent: bool = False
    body_offset: int = 0

    def done(self) -> bool:
        return self.env_sent and self.body_offset >= self.body.nbytes


class SCTPRPI(BaseRPI):
    """The paper's LAM-SCTP request progression module."""

    name = "sctp"

    def __init__(
        self,
        process,
        num_streams: int = 10,
        eager_limit=None,
        long_piece_size: Optional[int] = None,
        port: int = MPI_BASE_PORT,
        interleaving: Optional[bool] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        super().__init__(process, **({} if eager_limit is None else {"eager_limit": eager_limit}))
        if num_streams < 1:
            raise ValueError("need at least one stream")
        self.num_streams = num_streams
        # pieces of a long body per sctp_sendmsg; must not exceed the
        # send buffer (the sctp_sendmsg limit, §3.4)
        self.long_piece_size = long_piece_size or self.eager_limit
        self.port = port
        self.endpoint = process.sctp_endpoint
        base = process.world.sctp_config
        overrides = {
            "n_out_streams": num_streams,
            "n_in_streams": num_streams,
        }
        # RFC 8260 interleaving + stream-scheduler options ride through to
        # the association config; None keeps the world-level default
        if interleaving is not None:
            overrides["interleaving"] = interleaving
        if scheduler is not None:
            overrides["scheduler"] = scheduler
        self.sctp_config = SCTPConfig(**{**base.__dict__, **overrides})
        if self.long_piece_size + ENVELOPE_SIZE > self.sctp_config.max_message_size:
            raise ValueError("long piece size exceeds the sctp_sendmsg limit")
        self.sock: Optional[OneToManySocket] = None
        self._rank_by_assoc: Dict[int, int] = {}
        self._assoc_by_rank: Dict[int, int] = {}
        self._outq: Dict[Tuple[int, int], Deque[_SctpOutUnit]] = {}
        # (rank, stream) -> [seqnum, remaining_bytes] continuation state
        self._rx_cont: Dict[Tuple[int, int], List[int]] = {}
        self._barrier_ready = 0
        self._barrier_go = False
        # per-message hot path: prebind the middleware cost coefficients
        # (fixed for the host's lifetime) so _pump/_transmit_some do
        # integer arithmetic instead of a cost-model call per socket op
        cm = self.host.cost_model
        self._mw_base_ns = cm.sctp_syscall_ns
        self._mw_per_kib_ns = cm.sctp_middleware_per_kib_ns
        self.set_control_sink(self._handle_control)
        # Option B non-interleaving sanitizer; None unless REPRO_SANITIZE on
        self._san_b = option_b_sanitizer()

    # ------------------------------------------------------------------
    # stream mapping (§3.2.1)
    # ------------------------------------------------------------------
    def stream_for(self, context: int, tag: int) -> int:
        """Map a (context, tag) pair onto the fixed stream pool."""
        return (context * 31 + tag) % self.num_streams

    # ------------------------------------------------------------------
    # init / finalize
    # ------------------------------------------------------------------
    async def init(self) -> None:
        """Set up associations with every peer, then barrier (§3.4).

        One-to-many sockets need no accept(); the explicit barrier makes
        sure no rank starts sending before everyone's associations exist."""
        self.sock = OneToManySocket(self.endpoint, self.port, self.sctp_config)
        self.sock.on_readable = self.wake
        self.sock.on_writable = lambda _aid: self.wake()
        self.sock.on_assoc_up = lambda _aid: self.wake()

        for peer in range(self.rank + 1, self.size):
            assoc_id = await self.sock.connect(self.process.addr_of(peer), self.port)
            self._bind(assoc_id, peer)
            self.send_control(peer, FLAG_HELLO)

        # lower ranks connect to us; their HELLOs bind assoc -> rank
        while len(self._assoc_by_rank) < self.size - 1:
            await self.advance_once()

        # association-setup barrier (§3.4, final paragraph)
        if self.rank == 0:
            while self._barrier_ready < self.size - 1:
                await self.advance_once()
            for peer in range(1, self.size):
                self.send_control(peer, FLAG_BARRIER_GO)
            while self.outstanding_output() > 0:
                await self.advance_once()
        else:
            self.send_control(0, FLAG_BARRIER_READY)
            while not self._barrier_go:
                await self.advance_once()

    def finalize(self) -> None:
        """Gracefully shut every association down."""
        if self.sock is not None:
            self.sock.close()

    def _bind(self, assoc_id: int, rank: int) -> None:
        self._rank_by_assoc[assoc_id] = rank
        self._assoc_by_rank[rank] = assoc_id

    def _handle_control(self, src_rank: int, env: Envelope) -> None:
        kind = env.kind()
        if kind == FLAG_BARRIER_READY:
            self._barrier_ready += 1
        elif kind == FLAG_BARRIER_GO:
            self._barrier_go = True

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------
    def _enqueue_unit(self, dest, env, body, on_sent=None) -> None:
        stream = self.stream_for(env.context, env.tag)
        unit = _SctpOutUnit(
            env=env, body=body if body is not None else ChunkList(), on_sent=on_sent
        )
        self._outq.setdefault((dest, stream), deque()).append(unit)
        self.stats.units_sent += 1
        self.stats.bytes_sent += ENVELOPE_SIZE + unit.body.nbytes

    def _pump(self) -> bool:
        progressed = False
        # inbound: drain the one socket
        while True:
            msg = self.sock.recvmsg() if self.sock is not None else None
            if msg is None:
                break
            self.host.cpu.charge(
                self._mw_base_ns + self._mw_per_kib_ns * msg.nbytes // 1024
            )
            self._dispatch(msg)
            progressed = True
        # outbound: only the head of each (rank, stream) queue may write
        # (Option B); EAGAIN on one stream does not stop the others.
        for (rank, stream), queue in self._outq.items():
            if not queue:
                continue
            assoc_id = self._assoc_by_rank.get(rank)
            if assoc_id is None:
                continue  # association still coming up (init)
            while queue:
                unit = queue[0]
                if self._transmit_some(assoc_id, stream, unit):
                    progressed = True
                if unit.done():
                    queue.popleft()
                    if unit.on_sent is not None:
                        unit.on_sent()
                else:
                    break  # sndbuf full: advance other streams/assocs
        return progressed

    def _transmit_some(self, assoc_id: int, stream: int, unit: _SctpOutUnit) -> bool:
        sent_any = False
        while not unit.done():
            if not unit.env_sent:
                take = min(self.long_piece_size, unit.body.nbytes)
                wire = ChunkList([unit.env.pack()])
                wire.extend(unit.body.slice(0, take))
                next_offset = take
            else:
                take = min(
                    self.long_piece_size, unit.body.nbytes - unit.body_offset
                )
                wire = unit.body.slice(unit.body_offset, unit.body_offset + take)
                next_offset = unit.body_offset + take
            if not self.sock.sendmsg(assoc_id, stream, wire):
                break  # EAGAIN
            self.host.cpu.charge(
                self._mw_base_ns + self._mw_per_kib_ns * wire.nbytes // 1024
            )
            unit.env_sent = True
            unit.body_offset = next_offset
            sent_any = True
            if self._san_b is not None:
                self._san_b.on_piece_sent((assoc_id, stream), unit, unit.done())
        return sent_any

    def _dispatch(self, msg) -> None:
        rank = self._rank_by_assoc.get(msg.assoc_id)
        key = (rank, msg.stream)
        cont = self._rx_cont.get(key)
        if cont is not None:
            # continuation piece of an in-progress long body (§3.2.4);
            # Option B guarantees nothing else can appear on this stream.
            seqnum, remaining = cont
            if msg.nbytes > remaining:
                raise RuntimeError(
                    f"rank {self.rank}: stream {key} continuation overflow"
                )
            cont[1] = remaining - msg.nbytes
            if cont[1] == 0:
                del self._rx_cont[key]
            self._on_body_piece(rank, seqnum, msg.data)
            return

        head = msg.data.slice(0, ENVELOPE_SIZE).to_bytes()
        env = Envelope.unpack(head)
        body = msg.data.slice(ENVELOPE_SIZE, msg.nbytes)
        if rank is None:
            # first unit on an inbound association must identify the peer
            if env.kind() != FLAG_HELLO:
                raise RuntimeError(
                    f"rank {self.rank}: first unit on assoc {msg.assoc_id} "
                    f"must be HELLO, got {env!r}"
                )
            self._bind(msg.assoc_id, env.rank)
            rank = env.rank
        if env.kind() == FLAG_LONG_BODY and env.length > body.nbytes:
            self._rx_cont[(rank, msg.stream)] = [env.seqnum, env.length - body.nbytes]
        self._on_unit(rank, env, body)

    async def _wait_for_event(self) -> None:
        if self._wake.is_set():
            self._wake.clear()
            return
        await self._wake.wait()
        self._wake.clear()

    def outstanding_output(self) -> int:
        """Bytes still queued toward peers (diagnostics)."""
        total = 0
        for queue in self._outq.values():
            for unit in queue:
                total += unit.body.nbytes - unit.body_offset
                if not unit.env_sent:
                    total += ENVELOPE_SIZE
        return total
