"""LAM-TCP RPI: one socket per peer, select()-driven (the baseline).

Faithful to §2.2/§3 of the paper:

* a fully connected mesh of N-1 TCP sockets per process, built during
  MPI_Init by ``connect``/``accept`` (rank i actively connects to all
  higher ranks; a HELLO envelope identifies the peer on the passive side),
* readiness discovered by ``select()`` over all descriptors — whose CPU
  cost grows linearly with the socket count (§3.3, [20]),
* per-socket read state machine: because TCP delivers bytes strictly in
  order, only **one** incoming message per peer can be in flight, so one
  (envelope, body-progress) pair per socket suffices (§3.2.4) — this is
  exactly the head-of-line blocking the SCTP module removes,
* per-peer FIFO write queues: all tags/contexts to the same peer share
  one byte stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ...simkernel import wait_any
from ...transport.tcp import Selector, TCPListener, TCPSocket
from ...util.blobs import ChunkList
from ..constants import (
    FLAG_BARRIER_GO,
    FLAG_BARRIER_READY,
    FLAG_HELLO,
    MPI_BASE_PORT,
)
from ..envelope import ENVELOPE_SIZE, Envelope
from .base import BaseRPI

#: bytes asked of the socket per recv call (LAM posts the whole buffer)
RECV_CHUNK = 220 * 1024


@dataclass
class _OutUnit:
    """One queued middleware unit: envelope + body as a single byte run."""

    wire: ChunkList
    on_sent: Optional[Callable[[], None]] = None
    offset: int = 0

    @property
    def total(self) -> int:
        return self.wire.nbytes


class _InState:
    """Read state machine for one socket (one in-flight message max)."""

    __slots__ = ("buf", "env")

    def __init__(self) -> None:
        self.buf = ChunkList()
        self.env: Optional[Envelope] = None


class TCPRPI(BaseRPI):
    """LAM's TCP request progression module."""

    name = "tcp"

    def __init__(self, process, eager_limit=None, port: int = MPI_BASE_PORT) -> None:
        super().__init__(process, **({} if eager_limit is None else {"eager_limit": eager_limit}))
        self.port = port
        self.endpoint = process.tcp_endpoint
        self.selector = Selector(self.host)
        # per-chunk hot path: prebind the middleware cost coefficients
        # (fixed for the host's lifetime) so _pump/_send_some do integer
        # arithmetic instead of a cost-model method call per socket op
        cm = self.host.cost_model
        self._mw_base_ns = cm.tcp_syscall_ns
        self._mw_per_kib_ns = cm.tcp_middleware_per_kib_ns
        self._sock_by_rank: Dict[int, TCPSocket] = {}
        self._rank_by_sock: Dict[TCPSocket, int] = {}
        self._all_sockets: List[TCPSocket] = []
        self._in_state: Dict[TCPSocket, _InState] = {}
        self._outq: Dict[int, Deque[_OutUnit]] = {
            r: deque() for r in range(self.size) if r != self.rank
        }
        self._barrier_ready = 0
        self._barrier_go = False
        self._listener: Optional[TCPListener] = None
        self.set_control_sink(self._handle_control)

    # ------------------------------------------------------------------
    # init / finalize
    # ------------------------------------------------------------------
    async def init(self) -> None:
        """Build the full socket mesh (MPI_Init).

        TCP's connect/accept ordering makes an explicit barrier
        unnecessary (§3.4, last paragraph)."""
        self._listener = TCPListener(self.endpoint, self.port)

        async def acceptor() -> None:
            for _ in range(self.rank):  # every lower rank dials us
                sock = await self._listener.accept()
                self._register_socket(sock)
                self.wake()

        accept_task = self.kernel.spawn(acceptor(), name=f"mpi-accept-{self.rank}")

        for peer in range(self.rank + 1, self.size):
            sock = TCPSocket.connect(
                self.endpoint,
                self.process.addr_of(peer),
                self.port,
                config=self.process.world.tcp_config,
            )
            await sock.connected()
            self._register_socket(sock, rank=peer)
            self.send_control(peer, FLAG_HELLO)

        # wait until every lower rank has said hello
        while len(self._sock_by_rank) < self.size - 1:
            await self.advance_once()
        await accept_task

    def finalize(self) -> None:
        """Close the mesh."""
        if self._listener is not None:
            self._listener.close()
        for sock in self._all_sockets:
            sock.close()

    def _register_socket(self, sock: TCPSocket, rank: Optional[int] = None) -> None:
        self._all_sockets.append(sock)
        self._in_state[sock] = _InState()
        if rank is not None:
            self._bind(sock, rank)

    def _bind(self, sock: TCPSocket, rank: int) -> None:
        self._sock_by_rank[rank] = sock
        self._rank_by_sock[sock] = rank

    def _handle_control(self, src_rank: int, env: Envelope) -> None:
        kind = env.kind()
        if kind == FLAG_BARRIER_READY:
            self._barrier_ready += 1
        elif kind == FLAG_BARRIER_GO:
            self._barrier_go = True
        # HELLO itself is consumed by the feed path (socket -> rank binding)

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------
    def _enqueue_unit(self, dest, env, body, on_sent=None) -> None:
        wire = ChunkList([env.pack()])
        if body is not None:
            wire.extend(body)
        self._outq[dest].append(_OutUnit(wire=wire, on_sent=on_sent))
        self.stats.units_sent += 1
        self.stats.bytes_sent += wire.nbytes

    def _pump(self) -> bool:
        progressed = False
        # inbound: drain every socket
        for sock in list(self._all_sockets):
            while True:
                chunk = sock.recv(RECV_CHUNK)
                if chunk is None:
                    break
                if chunk.nbytes == 0:
                    # EOF/teardown: a finished peer closed its side; stop
                    # watching or select() would spin on it forever
                    self._retire_socket(sock)
                    break
                self.host.cpu.charge(
                    self._mw_base_ns + self._mw_per_kib_ns * chunk.nbytes // 1024
                )
                self._feed(sock, chunk)
                progressed = True
                if chunk.nbytes < RECV_CHUNK:
                    # a short read drained the receive buffer; nothing new
                    # can arrive synchronously, so skip the would-block call
                    break
        # outbound: flush per-peer FIFO queues
        for rank, queue in self._outq.items():
            if not queue:
                continue
            sock = self._sock_by_rank.get(rank)
            if sock is None:
                continue  # peer not connected yet (only during init)
            while queue:
                unit = queue[0]
                if self._send_some(sock, unit) > 0:
                    progressed = True
                if unit.offset >= unit.total:
                    queue.popleft()
                    if unit.on_sent is not None:
                        unit.on_sent()
                else:
                    break  # socket would block: move to the next peer
        return progressed

    def _retire_socket(self, sock: TCPSocket) -> None:
        if sock in self._all_sockets:
            self._all_sockets.remove(sock)
        rank = self._rank_by_sock.pop(sock, None)
        if rank is not None:
            self._sock_by_rank.pop(rank, None)
        self._in_state.pop(sock, None)

    def _send_some(self, sock: TCPSocket, unit: _OutUnit) -> int:
        sent = 0
        while unit.offset < unit.total:
            accepted = sock.send(unit.wire.piece_at(unit.offset))
            if accepted == 0:
                break
            self.host.cpu.charge(
                self._mw_base_ns + self._mw_per_kib_ns * accepted // 1024
            )
            unit.offset += accepted
            sent += accepted
        return sent

    def _feed(self, sock: TCPSocket, chunk: ChunkList) -> None:
        state = self._in_state[sock]
        state.buf.extend(chunk)
        while True:
            if state.env is None:
                if state.buf.nbytes < ENVELOPE_SIZE:
                    return
                head, state.buf = state.buf.split(ENVELOPE_SIZE)
                state.env = Envelope.unpack(head.to_bytes())
            body_len = state.env.wire_body_length()
            if state.buf.nbytes < body_len:
                return
            body, state.buf = state.buf.split(body_len)
            env, state.env = state.env, None
            if sock not in self._rank_by_sock:
                if env.kind() != FLAG_HELLO:
                    raise RuntimeError(
                        f"rank {self.rank}: first unit on a socket must be "
                        f"HELLO, got {env!r}"
                    )
                self._bind(sock, env.rank)
            self._on_unit(env.rank, env, body)

    async def _wait_for_event(self) -> None:
        if self._wake.is_set():
            self._wake.clear()
            return
        write_socks = [
            self._sock_by_rank[r]
            for r, q in self._outq.items()
            if q and r in self._sock_by_rank
        ]
        sel_fut = self.selector.wait(self._all_sockets, write_socks)
        if sel_fut.done():
            # a socket was already ready: skip the wake-future allocation
            # (wait_any would return without ever attaching to it)
            self._wake.clear()
            return
        await wait_any([sel_fut, self._wake.wait()])
        if not sel_fut.done():
            self.selector.cancel_wait()
        self._wake.clear()

    def outstanding_output(self) -> int:
        """Bytes still queued toward peers (diagnostics)."""
        return sum(
            sum(u.total - u.offset for u in q) for q in self._outq.values()
        )
