"""Transport-independent request progression engine.

Implements LAM's message delivery protocol (§2.2.2) once, for both RPIs:

* **short** (≤ 64 KiB): eager send — envelope + body travel immediately;
  the send completes when the transport has taken the last byte,
* **long**: rendezvous — envelope only; the receiver answers with an ACK
  once a matching receive is posted; the sender then ships a second
  envelope followed by the body,
* **synchronous short**: eager body, but completion requires the
  receiver's ACK (sent when the message is *matched*, not merely buffered),
* unexpected messages go to the hash table; every newly posted receive
  checks that table first.

Concrete RPIs supply transport plumbing: ``_enqueue_unit`` to queue one
middleware unit (envelope + optional body) toward a rank, ``_pump`` to
move queued/inbound data, and ``_wait_for_event`` to block on transport
readiness.  Inbound traffic re-enters through :meth:`_on_unit` /
:meth:`_on_body_piece`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional, Tuple

from ...analyze.sanitize import rpi_sanitizer
from ...simkernel import AsyncEvent
from ...util.blobs import ChunkList
from ..constants import (
    EAGER_LIMIT,
    FLAG_BARRIER_GO,
    FLAG_BARRIER_READY,
    FLAG_HELLO,
    FLAG_LONG_ACK,
    FLAG_LONG_BODY,
    FLAG_LONG_RNDV,
    FLAG_SHORT,
    FLAG_SSEND,
    FLAG_SSEND_ACK,
)
from ..envelope import Envelope
from ..matching import PostedReceiveQueue, UnexpectedMessageTable
from ..payload import decode_payload
from ..request import (
    RecvRequest,
    S_RECV_BODY,
    S_RECV_POSTED,
    S_RNDV_WAIT_ACK,
    S_SENDING,
    S_SSEND_WAIT_ACK,
    SendRequest,
)


@dataclass
class RPIStats:
    """Progression-engine counters (tests + benchmark diagnostics)."""

    eager_sends: int = 0
    rendezvous_sends: int = 0
    ssends: int = 0
    unexpected_messages: int = 0
    expected_messages: int = 0
    units_sent: int = 0
    units_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    advance_calls: int = 0


RPI_STAT_FIELDS = tuple(f.name for f in fields(RPIStats))


class BaseRPI:
    """Shared protocol engine; subclass per transport."""

    name = "base"

    def __init__(self, process, eager_limit: int = EAGER_LIMIT) -> None:
        self.process = process
        self.kernel = process.kernel
        self.host = process.host
        self.rank = process.rank
        self.size = process.size
        self.eager_limit = eager_limit
        self.stats = RPIStats()

        self.posted = PostedReceiveQueue()
        self.unexpected = UnexpectedMessageTable()
        # sends parked waiting for a peer ACK, keyed by our seqnum
        self._sends_awaiting_ack: Dict[int, SendRequest] = {}
        # receives whose long body is arriving, keyed by (src, seqnum)
        self._recvs_awaiting_body: Dict[Tuple[int, int], RecvRequest] = {}
        self._seq = 0
        self._wake = AsyncEvent(name=f"rpi-wake-{self.rank}")
        # init-time control hook (world install: hello/barrier bookkeeping)
        self._control_sink: Optional[Callable[[int, Envelope], None]] = None
        # rendezvous state-machine sanitizer; None unless REPRO_SANITIZE is on
        self._san = rpi_sanitizer()

        # metrics: pull probes over the stats dataclass plus the matching
        # structures whose depth explains buffering behaviour (§2.2.2)
        scope = self.kernel.metrics.scope(f"rpi.{self.name}.rank{self.rank}")
        for name in RPI_STAT_FIELDS:
            scope.probe(name, lambda n=name: getattr(self.stats, n))
        scope.probe("unexpected_depth", lambda: len(self.unexpected))
        scope.probe(
            "unexpected_buffered_bytes", lambda: self.unexpected.buffered_bytes
        )
        scope.probe(
            "unexpected_max_buffered_bytes",
            lambda: self.unexpected.max_buffered_bytes,
        )
        scope.probe("posted_receives", lambda: len(self.posted))
        scope.probe("sends_awaiting_ack", lambda: len(self._sends_awaiting_ack))
        scope.probe("recvs_awaiting_body", lambda: len(self._recvs_awaiting_body))

    # ------------------------------------------------------------------
    # abstract transport interface
    # ------------------------------------------------------------------
    async def init(self) -> None:
        """Establish connectivity with every peer (MPI_Init's job)."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Tear connections down (MPI_Finalize's job)."""
        raise NotImplementedError

    def _enqueue_unit(
        self,
        dest: int,
        env: Envelope,
        body: Optional[ChunkList],
        on_sent: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue one middleware unit toward ``dest``; transport-specific."""
        raise NotImplementedError

    def _pump(self) -> bool:
        """Move queued/inbound data without blocking; True if progressed."""
        raise NotImplementedError

    async def _wait_for_event(self) -> None:
        """Block until the transport reports readiness (or ``_wake``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # progression entry points used by the Communicator
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """Sender-unique sequence number for ACK/body pairing."""
        self._seq += 1
        return self._seq

    def poke(self) -> bool:
        """One non-blocking progression step (MPI_Test's pump)."""
        return self._pump()

    async def advance_once(self) -> None:
        """One progression step: pump; if idle, block for an event."""
        self.stats.advance_calls += 1
        if self._pump():
            return
        await self._wait_for_event()
        self._pump()

    def wake(self) -> None:
        """Release a blocked :meth:`advance_once` (transport callbacks)."""
        self._wake.set()

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def start_send(self, req: SendRequest) -> None:
        """Begin progressing a send request (isend)."""
        nbytes = req.body.nbytes
        if req.synchronous and nbytes <= self.eager_limit:
            self.stats.ssends += 1
            env = Envelope(
                nbytes, req.tag, req.context, self.rank,
                FLAG_SSEND | req.flags_extra, req.seqnum,
            )
            req.state = S_SSEND_WAIT_ACK
            self._sends_awaiting_ack[req.seqnum] = req
            self._enqueue_unit(req.dest, env, req.body)
        elif nbytes <= self.eager_limit:
            self.stats.eager_sends += 1
            env = Envelope(
                nbytes, req.tag, req.context, self.rank,
                FLAG_SHORT | req.flags_extra, req.seqnum,
            )
            req.state = S_SENDING
            self._enqueue_unit(req.dest, env, req.body, on_sent=req.complete)
        else:
            self.stats.rendezvous_sends += 1
            env = Envelope(
                nbytes, req.tag, req.context, self.rank,
                FLAG_LONG_RNDV | req.flags_extra, req.seqnum,
            )
            req.state = S_RNDV_WAIT_ACK
            self._sends_awaiting_ack[req.seqnum] = req
            self._enqueue_unit(req.dest, env, None)
        self._pump()

    def _start_long_body(self, req: SendRequest) -> None:
        env = Envelope(
            req.body.nbytes, req.tag, req.context, self.rank,
            FLAG_LONG_BODY | req.flags_extra, req.seqnum,
        )
        req.state = S_SENDING
        self._enqueue_unit(req.dest, env, req.body, on_sent=req.complete)

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def post_recv(self, req: RecvRequest) -> None:
        """Post a receive; checks the unexpected table first (§2.2.2)."""
        req.state = S_RECV_POSTED
        msg = self.unexpected.match_and_remove(req)
        if msg is None:
            self.posted.add(req)
            self._pump()
            return
        env = msg.envelope
        kind = env.kind()
        if kind == FLAG_SHORT:
            self._deliver_complete(req, env, msg.body)
        elif kind == FLAG_SSEND:
            self._deliver_complete(req, env, msg.body)
            self._send_ack(env, FLAG_SSEND_ACK)
        elif kind == FLAG_LONG_RNDV:
            self._accept_rendezvous(req, env)
        else:  # pragma: no cover - table only ever holds the kinds above
            raise AssertionError(f"unexpected kind {kind:#x} in table")

    def _accept_rendezvous(self, req: RecvRequest, env: Envelope) -> None:
        if self._san is not None:
            self._san.expect_state(req, S_RECV_POSTED, "LONG_RNDV envelope")
        req.state = S_RECV_BODY
        req.expected_length = env.length
        req.body_flags = env.flags
        req.matched_source = env.rank
        req.matched_seqnum = env.seqnum
        self._recvs_awaiting_body[(env.rank, env.seqnum)] = req
        self._send_ack(env, FLAG_LONG_ACK)

    def _send_ack(self, env: Envelope, ack_kind: int) -> None:
        """ACKs echo the sender's tag/context/seqnum so it can pair them;
        they travel the same TRC (hence the same SCTP stream)."""
        ack = Envelope(0, env.tag, env.context, self.rank, ack_kind, env.seqnum)
        self._enqueue_unit(env.rank, ack, None)

    def _deliver_complete(
        self, req: RecvRequest, env: Envelope, body: Optional[ChunkList]
    ) -> None:
        req.status.source = env.rank
        req.status.tag = env.tag
        req.status.length = env.length
        data = decode_payload(body if body is not None else ChunkList(), env.flags)
        req.complete(data)

    # ------------------------------------------------------------------
    # inbound units (called by transport subclasses)
    # ------------------------------------------------------------------
    def _on_unit(self, src_rank: int, env: Envelope, body: ChunkList) -> None:
        """Process one inbound middleware unit."""
        self.stats.units_received += 1
        self.stats.bytes_received += body.nbytes
        kind = env.kind()
        if kind in (FLAG_HELLO, FLAG_BARRIER_READY, FLAG_BARRIER_GO):
            if self._control_sink is not None:
                self._control_sink(src_rank, env)
            return
        if kind == FLAG_SHORT:
            self._on_eager(env, body, synchronous=False)
        elif kind == FLAG_SSEND:
            self._on_eager(env, body, synchronous=True)
        elif kind == FLAG_LONG_RNDV:
            req = self.posted.match_and_remove(env)
            if req is None:
                self.stats.unexpected_messages += 1
                self.unexpected.add(env, None)
            else:
                self.stats.expected_messages += 1
                self._accept_rendezvous(req, env)
        elif kind == FLAG_LONG_ACK:
            req = self._sends_awaiting_ack.pop(env.seqnum, None)
            if req is not None:
                if self._san is not None:
                    self._san.expect_state(req, S_RNDV_WAIT_ACK, "LONG_ACK")
                self._start_long_body(req)
        elif kind == FLAG_SSEND_ACK:
            req = self._sends_awaiting_ack.pop(env.seqnum, None)
            if req is not None:
                if self._san is not None:
                    self._san.expect_state(req, S_SSEND_WAIT_ACK, "SSEND_ACK")
                req.complete()
        elif kind == FLAG_LONG_BODY:
            key = (env.rank, env.seqnum)
            req = self._recvs_awaiting_body.get(key)
            if req is None:
                raise RuntimeError(
                    f"rank {self.rank}: LONG_BODY for unknown rendezvous {key}"
                )
            self._append_body(key, req, body)
        else:
            raise RuntimeError(f"rank {self.rank}: bad envelope kind {kind:#x}")

    def _on_eager(self, env: Envelope, body: ChunkList, synchronous: bool) -> None:
        req = self.posted.match_and_remove(env)
        if req is None:
            self.stats.unexpected_messages += 1
            self.unexpected.add(env, body)
            return  # ssend ACK waits until the message is matched
        self.stats.expected_messages += 1
        self._deliver_complete(req, env, body)
        if synchronous:
            self._send_ack(env, FLAG_SSEND_ACK)

    def _on_body_piece(self, src_rank: int, seqnum: int, piece: ChunkList) -> None:
        """Continuation of a long body (no envelope; SCTP RPI streaming)."""
        key = (src_rank, seqnum)
        req = self._recvs_awaiting_body.get(key)
        if req is None:
            raise RuntimeError(
                f"rank {self.rank}: body piece for unknown rendezvous {key}"
            )
        self.stats.bytes_received += piece.nbytes
        self._append_body(key, req, piece)

    def _append_body(
        self, key: Tuple[int, int], req: RecvRequest, piece: ChunkList
    ) -> None:
        if self._san is not None:
            self._san.expect_state(req, S_RECV_BODY, "body piece")
        req.body.extend(piece)
        if req.body.nbytes > req.expected_length:
            raise RuntimeError(
                f"rank {self.rank}: long body overflow "
                f"({req.body.nbytes} > {req.expected_length})"
            )
        if req.body.nbytes == req.expected_length:
            del self._recvs_awaiting_body[key]
            req.status.length = req.expected_length
            req.complete(decode_payload(req.body, req.body_flags))

    # -- init-time helpers ----------------------------------------------------
    def set_control_sink(self, sink: Optional[Callable[[int, Envelope], None]]) -> None:
        """Install the HELLO/BARRIER handler used during MPI_Init."""
        self._control_sink = sink

    def send_control(self, dest: int, kind: int) -> None:
        """Send a zero-length control envelope (hello/barrier)."""
        env = Envelope(0, 0, 0, self.rank, kind, self.next_seq())
        self._enqueue_unit(dest, env, None)
        self._pump()
