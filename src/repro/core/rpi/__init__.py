"""Request progression interface (RPI) modules.

LAM's RPI is the pluggable layer that moves requests from initialization
to completion over a concrete transport (§2.2.1).  ``base.py`` holds the
transport-independent protocol engine (eager / rendezvous / synchronous
short, unexpected-message buffering, ACK bookkeeping); ``tcp_rpi.py`` and
``sctp_rpi.py`` bind it to the two transports exactly the way LAM-TCP and
the paper's LAM-SCTP module do.
"""

from .base import BaseRPI, RPIStats
from .sctp_rpi import SCTPRPI
from .tcp_rpi import TCPRPI

__all__ = ["BaseRPI", "RPIStats", "SCTPRPI", "TCPRPI"]
