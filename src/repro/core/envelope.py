"""The LAM message envelope (paper Fig. 2).

Every middleware message starts with a fixed-size envelope carrying the
body length, the matching triple (tag, context, rank) plus flags and a
sequence number.  On the wire the envelope is real bytes (so the TCP RPI
can recover message boundaries from the byte stream, and so tests can
check framing); bodies may be synthetic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..util.blobs import RealBlob
from .constants import FLAG_LONG_BODY, FLAG_SHORT, FLAG_SSEND, KIND_MASK

_FORMAT = "<qiiiii"  # length, tag, context, rank, flags, seqnum
_STRUCT = struct.Struct(_FORMAT)  # prebound: skips the format-cache lookup
_pack = _STRUCT.pack
_unpack = _STRUCT.unpack
ENVELOPE_SIZE = _STRUCT.size  # 28 bytes

# envelope kinds that carry their body inline (all others travel alone)
_INLINE_BODY_KINDS = frozenset((FLAG_SHORT, FLAG_SSEND, FLAG_LONG_BODY))


@dataclass(frozen=True, slots=True)
class Envelope:
    """One middleware envelope."""

    length: int  # body bytes that follow (0 for pure control envelopes)
    tag: int
    context: int
    rank: int  # sender's rank (or the addressee's for some ACKs)
    flags: int
    seqnum: int  # sender-unique id; pairs ACKs/bodies with requests

    def pack(self) -> RealBlob:
        """Serialise to wire bytes."""
        return RealBlob(
            _pack(
                self.length,
                self.tag,
                self.context,
                self.rank,
                self.flags,
                self.seqnum,
            )
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "Envelope":
        """Parse from exactly ENVELOPE_SIZE wire bytes."""
        if len(raw) != ENVELOPE_SIZE:
            raise ValueError(f"envelope must be {ENVELOPE_SIZE} bytes, got {len(raw)}")
        length, tag, context, rank, flags, seqnum = _unpack(raw)
        return cls(length, tag, context, rank, flags, seqnum)

    def kind(self) -> int:
        """The single kind bit set in flags."""
        return self.flags & KIND_MASK

    def wire_body_length(self) -> int:
        """Bytes that follow this envelope *on the wire*.

        ``length`` always holds the full message body size, but a
        rendezvous envelope (and the various ACK/control envelopes)
        travels alone — the body comes later, under a LONG_BODY envelope.
        """
        if self.flags & KIND_MASK in _INLINE_BODY_KINDS:
            return self.length
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Env len={self.length} tag={self.tag} ctx={self.context} "
            f"rank={self.rank} flags={self.flags:#x} seq={self.seqnum}>"
        )
