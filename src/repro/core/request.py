"""MPI request objects and completion status.

A :class:`Request` is what ``isend``/``irecv`` return; the progression
engine moves it through its protocol states and completes the underlying
future.  ``Status`` mirrors MPI_Status: actual source, tag and byte count
— essential with wildcards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..simkernel import Future
from ..util.blobs import ChunkList

# request protocol states
S_INIT = "init"
S_SENDING = "sending"  # body being handed to the transport
S_RNDV_WAIT_ACK = "rndv_wait_ack"  # long send: envelope out, awaiting ack
S_SSEND_WAIT_ACK = "ssend_wait_ack"  # sync short: body out, awaiting ack
S_RECV_POSTED = "recv_posted"
S_RECV_BODY = "recv_body"  # long recv: ack sent, body arriving
S_DONE = "done"


@dataclass
class Status:
    """Completion information (MPI_Status)."""

    source: int = -1
    tag: int = -1
    length: int = 0


class Request:
    """One in-flight communication request."""

    _next_id = 1

    def __init__(self, kind: str, owner_rank: int) -> None:
        self.kind = kind  # "send" | "recv"
        self.owner_rank = owner_rank
        self.id = Request._next_id
        Request._next_id += 1
        self.state = S_INIT
        self.future = Future(name=f"{kind}-req-{self.id}")
        self.status = Status()
        self.data: Any = None  # decoded payload (recv side)

    @property
    def done(self) -> bool:
        """Whether the request has completed."""
        return self.state == S_DONE

    def complete(self, data: Any = None) -> None:
        """Mark done and wake any waiter."""
        if self.state == S_DONE:
            return
        self.state = S_DONE
        self.data = data
        if not self.future.done():
            self.future.set_result(self)

    def fail(self, exc: BaseException) -> None:
        """Complete the request with an error."""
        if self.state == S_DONE:
            return
        self.state = S_DONE
        if not self.future.done():
            self.future.set_exception(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request #{self.id} {self.kind} {self.state}>"


class SendRequest(Request):
    """Outgoing message: payload plus protocol bookkeeping."""

    def __init__(
        self,
        owner_rank: int,
        dest: int,
        tag: int,
        context: int,
        body: ChunkList,
        flags_extra: int,
        synchronous: bool,
        seqnum: int,
    ) -> None:
        super().__init__("send", owner_rank)
        self.dest = dest
        self.tag = tag
        self.context = context
        self.body = body
        self.flags_extra = flags_extra
        self.synchronous = synchronous
        self.seqnum = seqnum
        self.status.source = owner_rank
        self.status.tag = tag
        self.status.length = body.nbytes


class RecvRequest(Request):
    """Posted receive: matching criteria plus an accumulation buffer."""

    def __init__(self, owner_rank: int, source: int, tag: int, context: int) -> None:
        super().__init__("recv", owner_rank)
        self.source = source  # may be ANY_SOURCE
        self.tag = tag  # may be ANY_TAG
        self.context = context
        self.body = ChunkList()
        self.expected_length: Optional[int] = None
        self.body_flags = 0
        self.matched_source: Optional[int] = None
        self.matched_seqnum: Optional[int] = None

    def matches(self, env_tag: int, env_context: int, env_rank: int) -> bool:
        """MPI matching rule with wildcards."""
        from .constants import ANY_SOURCE, ANY_TAG

        if self.context != env_context:
            return False
        if self.source != ANY_SOURCE and self.source != env_rank:
            return False
        if self.tag != ANY_TAG and self.tag != env_tag:
            return False
        return True
