"""Message matching: posted-receive queue and unexpected-message table.

LAM buffers eager messages that arrive before a matching receive in an
internal hash table (§2.2.2); every newly posted receive is first checked
against that table.  Ordering guarantees: receives are matched in posting
order, unexpected messages in arrival order — together with per-TRC
FIFO transport delivery this yields MPI's non-overtaking rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..util.blobs import ChunkList
from .envelope import Envelope
from .request import RecvRequest


@dataclass
class UnexpectedMessage:
    """An eager body (or a pending long-message rendezvous) with no match."""

    envelope: Envelope
    body: Optional[ChunkList]  # None for a rendezvous envelope (body unsent)
    arrival_order: int = 0


class PostedReceiveQueue:
    """Receives posted by the application, in posting order."""

    def __init__(self) -> None:
        self._queue: List[RecvRequest] = []

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: RecvRequest) -> None:
        """Append a new posted receive."""
        self._queue.append(request)

    def match_and_remove(self, env: Envelope) -> Optional[RecvRequest]:
        """First posted receive matching the envelope, removed from queue."""
        for i, request in enumerate(self._queue):
            if request.matches(env.tag, env.context, env.rank):
                return self._queue.pop(i)
        return None

    def remove(self, request: RecvRequest) -> None:
        """Withdraw a posted receive (cancellation)."""
        try:
            self._queue.remove(request)
        except ValueError:
            pass


class UnexpectedMessageTable:
    """LAM's hash table of unexpected messages, keyed by (context, rank, tag).

    Lookups with wildcards scan buckets but resolve ties by arrival order,
    preserving the non-overtaking guarantee for same-TRC messages.
    """

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[int, int, int], Deque[UnexpectedMessage]] = {}
        self._arrivals = 0
        self.max_buffered_bytes = 0
        self.buffered_bytes = 0

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def add(self, env: Envelope, body: Optional[ChunkList]) -> None:
        """Buffer an unexpected message/rendezvous envelope."""
        self._arrivals += 1
        msg = UnexpectedMessage(env, body, self._arrivals)
        key = (env.context, env.rank, env.tag)
        self._buckets.setdefault(key, deque()).append(msg)
        if body is not None:
            self.buffered_bytes += body.nbytes
            self.max_buffered_bytes = max(self.max_buffered_bytes, self.buffered_bytes)

    def match_and_remove(self, request: RecvRequest) -> Optional[UnexpectedMessage]:
        """Earliest-arrived buffered message matching ``request``."""
        best_key = None
        best: Optional[UnexpectedMessage] = None
        for key, bucket in self._buckets.items():
            if not bucket:
                continue
            env = bucket[0].envelope
            if request.matches(env.tag, env.context, env.rank):
                if best is None or bucket[0].arrival_order < best.arrival_order:
                    best = bucket[0]
                    best_key = key
        if best is None:
            return None
        self._buckets[best_key].popleft()
        if not self._buckets[best_key]:
            del self._buckets[best_key]
        if best.body is not None:
            self.buffered_bytes -= best.body.nbytes
        return best

    def peek_match(self, source: int, tag: int, context: int) -> Optional[Envelope]:
        """Probe support: earliest buffered envelope matching the triple."""
        probe = RecvRequest(owner_rank=-1, source=source, tag=tag, context=context)
        best: Optional[UnexpectedMessage] = None
        for bucket in self._buckets.values():
            if not bucket:
                continue
            env = bucket[0].envelope
            if probe.matches(env.tag, env.context, env.rank):
                if best is None or bucket[0].arrival_order < best.arrival_order:
                    best = bucket[0]
        return best.envelope if best else None
