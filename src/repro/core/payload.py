"""Encoding application data to wire bodies and back.

Follows mpi4py's split: generic Python objects travel pickled; callers
moving raw sized payloads (benchmarks) pass a :class:`Blob`/:class:`ChunkList`
directly and get one back, paying only byte *accounting*.
"""

from __future__ import annotations

import pickle
from typing import Any, Tuple

from ..util.blobs import Blob, ChunkList, RealBlob
from .constants import FLAG_PICKLED


def encode_payload(data: Any) -> Tuple[ChunkList, int]:
    """Returns (body, extra_flags) for an application value."""
    if isinstance(data, ChunkList):
        return data, 0
    if isinstance(data, Blob):
        return ChunkList([data]), 0
    if isinstance(data, (bytes, bytearray, memoryview)):
        return ChunkList([RealBlob(bytes(data))]), 0
    return ChunkList([RealBlob(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))]), FLAG_PICKLED


def decode_payload(body: ChunkList, flags: int) -> Any:
    """Inverse of :func:`encode_payload`."""
    if flags & FLAG_PICKLED:
        return pickle.loads(body.to_bytes())
    return body
