"""Supervised child-process map: the crash/hang-tolerant fan-out core.

``supervised_map`` runs one child **process per task attempt** (never a
shared pool: a crashing task must not take neighbours with it) under a
:class:`SupervisePolicy`:

* **crash detection** — the child's exit code: a worker that dies
  without delivering a result (``os._exit``, a signal, an OOM kill) is
  a ``crash`` outcome, not a lost sweep;
* **hang detection** — a daemon heartbeat thread in the child beats on
  the result pipe every ``heartbeat_s``; heartbeat silence longer than
  ``hang_timeout_s`` means the *process* is stuck (SIGSTOP'd, D-state,
  spinning in a GIL-holding extension) and it is killed and retried.
  A pure-Python livelock keeps heartbeating — that failure mode is the
  kernel watchdog's job (:meth:`repro.simkernel.Kernel.arm_watchdog`);
* **deadline** — a per-attempt wall-clock cap (``deadline_s``) bounds
  everything else;
* **bounded deterministic retry** — failed attempts are retried up to
  ``max_attempts`` with seeded exponential backoff
  (:func:`backoff_delay`): the delay is a pure function of
  ``(seed, task id, attempt)`` via the same SHA-256 stream-derivation
  discipline ``repro.faults`` and ``Kernel.rng`` use, so a retry
  schedule is reproducible run to run;
* **quarantine** — a task that exhausts its attempts is quarantined:
  its slot in the result list is ``None`` and the failure manifest
  records every attempt, so a sweep salvages the surviving cells
  instead of losing the run.

Results always come back in **input order** (never completion order),
which is what keeps every merged document byte-identical to its serial
counterpart.  Deterministic worker *exceptions* (``error`` outcomes)
are not retried by default — a deterministic simulation fails the same
way every time — but ``retry_errors=True`` opts in for workloads with
genuinely transient errors.

Chaos injection (the self-test hook): ``SupervisePolicy.chaos`` maps a
task id to per-attempt actions (``"crash"``, ``"hang"``, ``"error"``)
applied in the child *before* the task function runs, so the selftest
exercises the real detection paths end to end.
"""

# This module supervises real processes, so it is legitimately
# wall-clock-driven; nothing here runs inside a simulated world.
# repro: allow-file[AN101]

from __future__ import annotations

import hashlib
import heapq
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

# attempt outcomes
OK = "ok"
CRASH = "crash"  # process exited without delivering a result
HANG = "hang"  # heartbeat silence exceeded hang_timeout_s
DEADLINE = "deadline"  # attempt exceeded deadline_s wall seconds
ERROR = "error"  # the task function raised (deterministic failure)

# exit code used by injected chaos crashes (and visible in manifests)
CHAOS_EXIT_CODE = 70

_MONITOR_TICK_S = 0.05  # coordinator poll granularity


class SuperviseError(RuntimeError):
    """A supervised fan-out failed in strict (no-quarantine) mode."""


@dataclass(frozen=True)
class SupervisePolicy:
    """How hard to defend one fan-out against failing workers.

    The defaults are deliberately conservative: three attempts, modest
    backoff, no deadline and no hang detection unless asked for —
    arming a wall-clock deadline on a machine-speed-dependent workload
    is a caller decision.
    """

    max_attempts: int = 3
    deadline_s: Optional[float] = None  # per-attempt wall cap
    heartbeat_s: float = 0.2  # child heartbeat period
    hang_timeout_s: Optional[float] = None  # heartbeat silence => hung
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    seed: int = 0  # backoff jitter stream seed
    retry_errors: bool = False  # retry deterministic exceptions too
    # self-test hook: task id -> per-attempt chaos actions ("crash",
    # "hang", "error"); attempts beyond the tuple run clean
    chaos: Optional[Mapping[str, Tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive: {self.heartbeat_s}")


@dataclass
class SupervisedOutcome:
    """One fan-out's results plus what the supervisor had to do."""

    results: List[Optional[Any]]  # input order; None where quarantined
    manifest: List[Dict[str, Any]]  # one record per task that failed at all
    quarantined: List[str] = field(default_factory=list)  # task ids lost

    @property
    def ok(self) -> bool:
        return not self.quarantined


def backoff_delay(policy: SupervisePolicy, task_id: str, attempt: int) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt + 1``.

    A pure function of ``(policy.seed, task_id, attempt)``: the cap
    grows as ``base * factor**(attempt-1)`` (clamped to
    ``backoff_max_s``) and the jitter fraction comes from a SHA-256
    derivation — the same discipline ``Kernel.rng`` uses for named
    streams — so two runs of the same failing sweep retry on the same
    schedule.  The delay lands in ``[cap/2, cap)``.
    """
    cap = min(
        policy.backoff_base_s * policy.backoff_factor ** (attempt - 1),
        policy.backoff_max_s,
    )
    digest = hashlib.sha256(
        f"{policy.seed}:{task_id}:{attempt}".encode()
    ).digest()
    frac = int.from_bytes(digest[:8], "big") / 2**64
    return cap * (0.5 + 0.5 * frac)


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------

_current_attempt = 1  # set in the child before the task function runs


def current_attempt() -> int:
    """Which attempt (1-based) the calling child process is running.

    Only meaningful inside a ``supervised_map`` worker; chaos/test task
    functions use it to fail on early attempts and succeed later.
    """
    return _current_attempt


class ChaosInjected(RuntimeError):
    """A chaos plan asked this attempt to fail with an error."""


def _apply_chaos(action: str) -> None:
    if action == "crash":
        os._exit(CHAOS_EXIT_CODE)
    if action == "hang":
        # freeze the whole process, heartbeat thread included: the
        # parent must notice via heartbeat silence and SIGKILL us
        os.kill(os.getpid(), signal.SIGSTOP)
        return
    if action == "error":
        raise ChaosInjected("injected deterministic failure")
    raise ValueError(f"unknown chaos action {action!r}")


def _child_main(
    conn: Any,
    fn: Callable,
    item: Any,
    attempt: int,
    heartbeat_s: float,
    chaos_action: Optional[str],
) -> None:
    """Worker body: heartbeat while running ``fn(item)``, send the result."""
    global _current_attempt
    _current_attempt = attempt
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                with send_lock:
                    conn.send(("hb",))
            except OSError:  # parent gone; nothing left to report to
                return

    threading.Thread(target=beat, daemon=True, name="supervise-heartbeat").start()
    try:
        if chaos_action is not None:
            _apply_chaos(chaos_action)
        value = fn(item)
    except BaseException:
        payload = ("err", traceback.format_exc())
    else:
        payload = ("ok", value)
    stop.set()
    try:
        with send_lock:
            conn.send(payload)
    except OSError:  # pragma: no cover - parent died first
        pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Active:
    """One running attempt: process, pipe, and its wall bookkeeping."""

    __slots__ = ("proc", "conn", "index", "task_id", "attempt", "started", "last_hb")

    def __init__(self, proc, conn, index: int, task_id: str, attempt: int) -> None:
        self.proc = proc
        self.conn = conn
        self.index = index
        self.task_id = task_id
        self.attempt = attempt
        self.started = time.monotonic()
        self.last_hb = self.started


def _context():
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context()


def _reap(proc) -> None:
    """Terminate-and-reap one worker, escalating to SIGKILL.

    SIGTERM stays pending on a stopped (SIGSTOP'd) process, so hung
    workers are unstuck with SIGKILL, which stopped processes cannot
    block.
    """
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=0.5)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=5)


def supervised_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    policy: Optional[SupervisePolicy] = None,
    task_ids: Optional[Sequence[str]] = None,
) -> SupervisedOutcome:
    """Run ``fn`` over ``items`` in supervised child processes.

    Up to ``jobs`` attempts run concurrently; each task is retried per
    ``policy`` and quarantined when its attempts are exhausted.
    ``task_ids`` names the tasks in manifests (defaults to the item
    index); ``fn`` must be a module-level callable and ``items`` plain
    data so spawn-based platforms can address the work.

    Unlike a bare ``Pool.map`` this never loses the whole fan-out to one
    bad worker — and unlike a bare ``Pool.map`` it survives a worker
    calling ``os._exit`` mid-task.
    """
    policy = policy if policy is not None else SupervisePolicy()
    n = len(items)
    ids = [str(t) for t in task_ids] if task_ids is not None else [
        str(i) for i in range(n)
    ]
    if len(ids) != n:
        raise ValueError(f"{len(ids)} task ids for {n} items")
    results: List[Optional[Any]] = [None] * n
    succeeded = [False] * n
    attempts_log: List[List[Dict[str, Any]]] = [[] for _ in range(n)]
    if n == 0:
        return SupervisedOutcome(results=[], manifest=[])

    ctx = _context()
    slots = max(1, jobs)
    ready: deque = deque((i, 1) for i in range(n))
    delayed: List[Tuple[float, int, int]] = []  # (not_before, index, attempt)
    active: Dict[int, _Active] = {}  # index -> running attempt

    def chaos_action(task_id: str, attempt: int) -> Optional[str]:
        if policy.chaos is None:
            return None
        plan = policy.chaos.get(task_id, ())
        return plan[attempt - 1] if attempt <= len(plan) else None

    def launch(index: int, attempt: int) -> None:
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(
                child,
                fn,
                items[index],
                attempt,
                policy.heartbeat_s,
                chaos_action(ids[index], attempt),
            ),
            daemon=True,
            name=f"supervise-{ids[index]}-a{attempt}",
        )
        proc.start()
        child.close()
        active[index] = _Active(proc, parent, index, ids[index], attempt)

    def settle(worker: _Active, outcome: str, detail: str, value: Any = None) -> None:
        """Record one finished attempt and decide success/retry/quarantine."""
        index = worker.index
        del active[index]
        _reap(worker.proc)
        worker.conn.close()
        if outcome == OK:
            results[index] = value
            succeeded[index] = True
            if attempts_log[index]:  # only tasks that failed at all log OK
                attempts_log[index].append(
                    {"attempt": worker.attempt, "outcome": OK, "detail": detail}
                )
            return
        attempts_log[index].append(
            {"attempt": worker.attempt, "outcome": outcome, "detail": detail}
        )
        retryable = outcome in (CRASH, HANG, DEADLINE) or (
            outcome == ERROR and policy.retry_errors
        )
        if retryable and worker.attempt < policy.max_attempts:
            not_before = time.monotonic() + backoff_delay(
                policy, worker.task_id, worker.attempt
            )
            heapq.heappush(delayed, (not_before, index, worker.attempt + 1))

    def service(worker: _Active) -> None:
        """Drain one worker's pipe; settle it if a result or EOF arrived."""
        while worker.index in active:
            try:
                if not worker.conn.poll(0):
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                # pipe closed without a result: the process crashed
                worker.proc.join(timeout=5)
                code = worker.proc.exitcode
                settle(worker, CRASH, f"worker exited with code {code} before a result")
                return
            if msg[0] == "hb":
                worker.last_hb = time.monotonic()
            elif msg[0] == "ok":
                settle(worker, OK, "completed", value=msg[1])
            elif msg[0] == "err":
                settle(worker, ERROR, f"task raised:\n{msg[1]}")
            else:  # pragma: no cover - protocol bug
                settle(worker, ERROR, f"unknown worker message {msg[0]!r}")

    while ready or delayed or active:
        now = time.monotonic()
        while delayed and delayed[0][0] <= now:
            _, index, attempt = heapq.heappop(delayed)
            ready.append((index, attempt))
        while ready and len(active) < slots:
            index, attempt = ready.popleft()
            launch(index, attempt)
        if not active:
            # everything runnable is waiting out a backoff delay
            time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
            continue
        waitables = [w.conn for w in active.values()]
        waitables += [w.proc.sentinel for w in active.values()]
        try:
            connection.wait(waitables, timeout=_MONITOR_TICK_S)
        except OSError:  # pragma: no cover - a sentinel raced its reap
            pass
        # service pipes first: a child that sent its result and exited
        # has both its pipe and its sentinel ready, and the pipe wins
        for worker in list(active.values()):
            service(worker)
        # then look for silent deaths (sentinel fired, pipe empty+EOF
        # is caught by service above on the next pass) and wall limits
        now = time.monotonic()
        for worker in list(active.values()):
            if not worker.proc.is_alive():
                service(worker)  # drains EOF -> crash
                continue
            if (
                policy.deadline_s is not None
                and now - worker.started > policy.deadline_s
            ):
                settle(
                    worker,
                    DEADLINE,
                    f"attempt exceeded the {policy.deadline_s:g}s wall deadline",
                )
            elif (
                policy.hang_timeout_s is not None
                and now - worker.last_hb > policy.hang_timeout_s
            ):
                settle(
                    worker,
                    HANG,
                    f"no heartbeat for more than {policy.hang_timeout_s:g}s",
                )

    # manifest and quarantine list in input order, never completion order
    manifest = [
        {
            "task": ids[i],
            "outcome": "recovered" if succeeded[i] else "quarantined",
            "attempts": attempts_log[i],
        }
        for i in range(n)
        if attempts_log[i]
    ]
    quarantined = [ids[i] for i in range(n) if not succeeded[i]]
    return SupervisedOutcome(
        results=results, manifest=manifest, quarantined=quarantined
    )
