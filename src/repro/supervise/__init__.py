"""Supervised execution: watchdogs, deterministic retry, quarantine.

The paper's case for SCTP is a robustness argument — the transport that
keeps making progress under loss and path failure wins for MPI.  This
package holds the harness to the same standard: long multi-process runs
(sweeps, parallel DES) must survive a crashed worker, a hung worker, or
a corrupted cache entry the way an SCTP association survives a dead
path — degrade, retry, salvage, and keep the surviving results
byte-identical.

Three layers:

* :func:`supervised_map` (:mod:`repro.supervise.executor`) — the
  process fan-out primitive: per-attempt wall deadlines, crash detection
  (exit code), hang detection (heartbeat pipe), bounded retry with
  seeded deterministic exponential backoff, and quarantine of
  persistently failing tasks into a structured failure manifest.
  ``repro.bench.parallel.pool_map`` and ``repro.sweep`` fan out
  through it.
* shard supervision in :mod:`repro.simkernel.pdes` — a dead or stalled
  PDES shard triggers terminate-and-reap of the whole cohort and a
  graceful degradation to the serial leg (``degraded: true``), whose
  output is byte-identical to a normal serial run by construction.
* the kernel progress watchdog (:meth:`repro.simkernel.Kernel.arm_watchdog`)
  — opt-in max-wall-seconds / max-events / virtual-time-stall limits
  that turn livelocks into actionable :class:`~repro.simkernel.kernel.WatchdogExpired`
  errors with a dump of the hot heap labels.

``python -m repro.supervise.selftest`` chaos-tests all three layers with
injected crashes, hangs, and cache corruption (CI job
``supervise-chaos``).
"""

from .executor import (
    CRASH,
    DEADLINE,
    ERROR,
    HANG,
    OK,
    SupervisedOutcome,
    SupervisePolicy,
    backoff_delay,
    current_attempt,
    supervised_map,
)

__all__ = [
    "CRASH",
    "DEADLINE",
    "ERROR",
    "HANG",
    "OK",
    "SupervisePolicy",
    "SupervisedOutcome",
    "backoff_delay",
    "current_attempt",
    "supervised_map",
]
