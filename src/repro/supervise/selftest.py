"""Chaos self-test: prove the supervision stack actually recovers.

``python -m repro.supervise.selftest`` injects every failure mode the
execution layer claims to survive — worker crashes, hangs, persistent
failures, corrupted cache entries, killed and wedged PDES shards, and a
livelocked kernel — and asserts the documented recovery behaviour:

1. **sweep chaos** — a four-cell pingpong sweep where a seeded victim
   crashes once (must recover on retry), a second hangs once (must be
   killed and recover), and a third crashes on *every* attempt (must be
   quarantined after ``max_attempts``, demonstrating bounded retry).
   The surviving cells must be byte-identical to an uninjected run's,
   and the failure manifest must list each fault with its outcome.
2. **corrupt cache** — a cache entry is overwritten with garbage, a
   second with a truncated copy; the resume run must log a miss,
   recompute both, overwrite the bad entries, and reproduce the
   document byte-for-byte.
3. **PDES degradation** — a sharded run whose worker is killed (and,
   separately, SIGSTOP'd) must reap the cohort, degrade to the serial
   leg, flag ``degraded``, and produce metrics byte-identical to a
   healthy serial run.
4. **kernel watchdog** — a planted zero-delay livelock and an event
   budget overrun must both raise :class:`WatchdogExpired`.

Victim cells are chosen by the same SHA-256 stream-derivation
discipline ``repro.faults`` and ``Kernel.rng`` use, so the chaos plan
is a pure function of the seed and the test is reproducible.

Exit status 0 means every injected fault was detected and recovered;
CI runs this as the ``supervise-chaos`` job.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import logging
import sys
import tempfile
from pathlib import Path
from typing import Callable, List

from ..core.world import WorldConfig
from ..simkernel import SECOND, Kernel, WatchdogExpired
from ..simkernel.pdes import run_sharded
from ..sweep import SweepCache, dumps_result, run_sweep, spec_from_dict
from ..workloads.mpbench import make_pingpong
from . import SupervisePolicy

SEED = 2005  # the paper's year; any fixed value works

CHAOS_SPEC = {
    "name": "chaos-selftest",
    "sweeps": [
        {
            "experiment": "pingpong",
            "matrix": {"protocol": ["tcp", "sctp"], "loss": [0.0, 0.01]},
            "params": {"size": 512, "iterations": 2},
        }
    ],
}


def _pick_victims(cell_ids: List[str], n: int) -> List[str]:
    """The ``n`` seeded victim cells, via the faults stream discipline."""
    ranked = sorted(
        cell_ids,
        key=lambda cid: hashlib.sha256(f"{SEED}:victim:{cid}".encode()).hexdigest(),
    )
    return ranked[:n]


def check_sweep_chaos() -> List[str]:
    """Crash, hang, and persistent-crash victims in one supervised sweep."""
    failures: List[str] = []
    spec = spec_from_dict(CHAOS_SPEC)
    reference = run_sweep(spec, cache=None)
    cell_ids = [cell.id for cell in spec.cells]
    crash_victim, hang_victim, lost_victim = _pick_victims(cell_ids, 3)
    policy = SupervisePolicy(
        max_attempts=2,
        heartbeat_s=0.05,
        hang_timeout_s=1.0,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        seed=SEED,
        chaos={
            crash_victim: ("crash",),  # attempt 2 runs clean -> recovered
            hang_victim: ("hang",),  # killed, attempt 2 clean -> recovered
            lost_victim: ("crash", "crash"),  # every attempt -> quarantined
        },
    )
    result = run_sweep(spec, jobs=2, cache=None, supervise=policy)

    if result.quarantined != [lost_victim]:
        failures.append(
            f"expected exactly {lost_victim!r} quarantined, got {result.quarantined}"
        )
    outcomes = {rec["cell"]: rec for rec in result.manifest}
    for victim, want_outcome, want_first in (
        (crash_victim, "recovered", "crash"),
        (hang_victim, "recovered", "hang"),
        (lost_victim, "quarantined", "crash"),
    ):
        rec = outcomes.get(victim)
        if rec is None:
            failures.append(f"manifest is missing victim {victim!r}")
            continue
        if rec["outcome"] != want_outcome:
            failures.append(
                f"{victim}: expected outcome {want_outcome!r}, got {rec['outcome']!r}"
            )
        if rec["attempts"][0]["outcome"] != want_first:
            failures.append(
                f"{victim}: expected first attempt {want_first!r}, "
                f"got {rec['attempts'][0]['outcome']!r}"
            )
    if len(outcomes) != 3:
        failures.append(f"expected 3 manifest records, got {len(outcomes)}")

    # partial-result salvage: every surviving cell byte-identical to the
    # uninjected run's version of that cell
    ref_cells = {cell["id"]: cell for cell in reference.doc["cells"]}
    got_cells = {cell["id"]: cell for cell in result.doc["cells"]}
    expected_survivors = [cid for cid in cell_ids if cid != lost_victim]
    if sorted(got_cells) != sorted(expected_survivors):
        failures.append(
            f"expected surviving cells {expected_survivors}, got {sorted(got_cells)}"
        )
    for cid in expected_survivors:
        if cid in got_cells and json.dumps(
            got_cells[cid], sort_keys=True
        ) != json.dumps(ref_cells[cid], sort_keys=True):
            failures.append(f"surviving cell {cid} differs from the uninjected run")
    if "failures" not in result.doc:
        failures.append("salvaged document is missing its 'failures' manifest")

    # the same sweep without injection must carry no failure manifest and
    # match the reference document byte for byte
    clean = run_sweep(spec, jobs=2, cache=None, supervise=policy_without_chaos(policy))
    if dumps_result(clean.doc) != dumps_result(reference.doc):
        failures.append("unfailed supervised run is not byte-identical to plain run")
    return failures


def policy_without_chaos(policy: SupervisePolicy) -> SupervisePolicy:
    return SupervisePolicy(
        max_attempts=policy.max_attempts,
        heartbeat_s=policy.heartbeat_s,
        hang_timeout_s=policy.hang_timeout_s,
        backoff_base_s=policy.backoff_base_s,
        backoff_max_s=policy.backoff_max_s,
        seed=policy.seed,
    )


def check_corrupt_cache() -> List[str]:
    """Garbage and truncated cache entries must be logged misses."""
    failures: List[str] = []
    spec = spec_from_dict(CHAOS_SPEC)
    with tempfile.TemporaryDirectory(prefix="chaos-cache-") as tmp:
        cache = SweepCache(Path(tmp) / "cache")
        cold = run_sweep(spec, cache=cache)
        entries = sorted(cache.root.glob("*.json"))
        if len(entries) != len(spec.cells):
            return [f"expected {len(spec.cells)} cache entries, got {len(entries)}"]
        entries[0].write_text("{ this is not json", encoding="utf-8")
        text = entries[1].read_text(encoding="utf-8")
        entries[1].write_text(text[: len(text) // 2], encoding="utf-8")

        records: List[logging.LogRecord] = []
        handler = logging.Handler()
        handler.emit = records.append  # type: ignore[method-assign]
        cache_log = logging.getLogger("repro.sweep.cache")
        cache_log.addHandler(handler)
        try:
            warm = run_sweep(spec, cache=cache)
        finally:
            cache_log.removeHandler(handler)

        if len(warm.executed) != 2:
            failures.append(
                f"expected 2 recomputed cells after corruption, got {warm.executed}"
            )
        if len(records) != 2:
            failures.append(f"expected 2 corruption warnings, got {len(records)}")
        if dumps_result(warm.doc) != dumps_result(cold.doc):
            failures.append("document after corruption recovery is not byte-identical")
        # the bad entries must have been overwritten with good ones
        final = run_sweep(spec, cache=cache)
        if final.executed:
            failures.append(
                f"corrupt entries were not overwritten: recomputed {final.executed}"
            )
    return failures


def check_pdes_degradation() -> List[str]:
    """Killed and wedged shards must degrade to byte-identical serial."""
    failures: List[str] = []
    config = WorldConfig(n_procs=2, rpi="sctp", seed=1, loss_rate=0.0, n_pods=1)
    horizon = 5 * SECOND
    app = make_pingpong(16384, 4)

    def invariant(result) -> str:
        return json.dumps(
            {
                "results": result.results,
                "events": result.events_processed,
                "metrics": result.metrics,
            },
            sort_keys=True,
        )

    serial = run_sharded(app, config=config, horizon_ns=horizon, n_shards=1)
    if serial.degraded:
        failures.append("serial leg must never be marked degraded")
    for chaos in ("kill:1:1", "hang:0:2"):
        result = run_sharded(
            app,
            config=config,
            horizon_ns=horizon,
            n_shards=2,
            shard_timeout_s=5.0,
            chaos=chaos,
        )
        if not result.degraded or not result.degraded_reason:
            failures.append(f"chaos {chaos}: run was not marked degraded")
            continue
        if invariant(result) != invariant(serial):
            failures.append(
                f"chaos {chaos}: degraded metrics differ from the serial leg"
            )
    return failures


def check_kernel_watchdog() -> List[str]:
    """A planted livelock and an event-budget overrun must both trip."""
    failures: List[str] = []

    kernel = Kernel(seed=1)

    def livelock() -> None:
        kernel.post_after(0, livelock)

    kernel.post_after(0, livelock)
    kernel.arm_watchdog(max_stall_events=5000)
    try:
        kernel.run()
        failures.append("livelock did not trip the stall watchdog")
    except WatchdogExpired as err:
        if "stalled" not in str(err) or "livelock" not in str(err):
            failures.append(f"stall diagnostic is not actionable: {err}")

    kernel2 = Kernel(seed=1)

    def forever() -> None:
        kernel2.post_after(10, forever)

    kernel2.post_after(0, forever)
    kernel2.arm_watchdog(max_events=1000)
    try:
        kernel2.run()
        failures.append("unbounded run did not trip the event-budget watchdog")
    except WatchdogExpired as err:
        if "event budget" not in str(err):
            failures.append(f"event-budget diagnostic is not actionable: {err}")
    return failures


CHECKS: List[Callable[[], List[str]]] = [
    check_sweep_chaos,
    check_corrupt_cache,
    check_pdes_degradation,
    check_kernel_watchdog,
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.supervise.selftest",
        description="inject crashes/hangs/corruption and assert recovery",
    )
    parser.parse_args(argv)
    logging.basicConfig(level=logging.WARNING)
    all_failures: List[str] = []
    for check in CHECKS:
        name = check.__name__
        failures = check()
        status = "ok" if not failures else f"FAILED ({len(failures)})"
        print(f"{name}: {status}")
        for failure in failures:
            print(f"  - {failure}")
        all_failures.extend(failures)
    if all_failures:
        print(f"\nchaos selftest FAILED: {len(all_failures)} assertion(s)")
        return 1
    print("\nchaos selftest OK: every injected fault was detected and recovered")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
