"""Reproduction of "SCTP versus TCP for MPI" (Kamal, Penoff, Wagner — SC|05).

A deterministic, packet-level reproduction of the paper's entire system:
TCP and SCTP implemented from scratch on a virtual-time network
simulator, a LAM-like MPI middleware with the paper's TCP and SCTP RPI
modules, the evaluation workloads (MPBench ping-pong, mini NAS Parallel
Benchmarks, the Bulk Processor Farm), and one benchmark per published
table and figure.

Entry points:

>>> from repro import run_app
>>> async def app(comm):
...     return await comm.allreduce(comm.rank)
>>> run_app(app, n_procs=8, rpi="sctp", loss_rate=0.01).results
[28, 28, 28, 28, 28, 28, 28, 28]

See README.md for the guided tour, DESIGN.md for the system inventory,
and EXPERIMENTS.md for paper-vs-measured results.
"""

from .core import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    EAGER_LIMIT,
    Request,
    Status,
    World,
    WorldConfig,
    WorldResult,
    run_app,
)
from .util.blobs import ChunkList, RealBlob, SyntheticBlob

__version__ = "1.1.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ChunkList",
    "Communicator",
    "EAGER_LIMIT",
    "RealBlob",
    "Request",
    "Status",
    "SyntheticBlob",
    "World",
    "WorldConfig",
    "WorldResult",
    "run_app",
    "__version__",
]
