"""MPBench ping-pong (paper §4.1.1, Fig. 8 and Table 1).

Two processes repeatedly bounce a message of a fixed size; all messages
carry the same tag (so SCTP multistreaming gives no benefit here — the
comparison isolates the raw protocol stacks, which is exactly what the
paper uses it for).  Throughput counts payload bytes moved in both
directions over the measured interval, MPBench-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.world import WorldConfig, run_app
from ..util.blobs import SyntheticBlob

PING_TAG = 1


@dataclass
class PingPongResult:
    """One ping-pong measurement."""

    message_size: int
    iterations: int
    elapsed_ns: int
    rpi: str
    loss_rate: float

    @property
    def throughput_bytes_per_s(self) -> float:
        """Payload bytes per second, both directions counted."""
        if self.elapsed_ns <= 0:
            return 0.0
        return 2.0 * self.message_size * self.iterations / (self.elapsed_ns / 1e9)

    @property
    def round_trip_s(self) -> float:
        """Mean round-trip time per exchange."""
        return self.elapsed_ns / 1e9 / self.iterations


def make_pingpong(message_size: int, iterations: int, warmup: int = 2):
    """Build the two-process ping-pong application coroutine."""

    async def pingpong(comm):
        if comm.rank > 1:
            return None  # extra ranks idle (the test uses two processes)
        peer = 1 - comm.rank
        payload = SyntheticBlob(message_size, label="pingpong")
        start_ns = None
        for i in range(warmup + iterations):
            if i == warmup:
                start_ns = comm.process.kernel.now
            if comm.rank == 0:
                await comm.send(payload, dest=peer, tag=PING_TAG)
                await comm.recv(source=peer, tag=PING_TAG)
            else:
                await comm.recv(source=peer, tag=PING_TAG)
                await comm.send(payload, dest=peer, tag=PING_TAG)
        return comm.process.kernel.now - start_ns

    return pingpong


def run_pingpong(
    rpi: str,
    message_size: int,
    iterations: int = 20,
    loss_rate: float = 0.0,
    seed: int = 0,
    warmup: int = 2,
    config: Optional[WorldConfig] = None,
    limit_ns: Optional[int] = None,
) -> PingPongResult:
    """Run one ping-pong configuration on a fresh two-node world."""
    if config is None:
        config = WorldConfig(n_procs=2, rpi=rpi, loss_rate=loss_rate, seed=seed)
    result = run_app(
        make_pingpong(message_size, iterations, warmup),
        config=config,
        limit_ns=limit_ns,
    )
    elapsed = result.results[0]
    return PingPongResult(
        message_size=message_size,
        iterations=iterations,
        elapsed_ns=elapsed,
        rpi=rpi,
        loss_rate=loss_rate,
    )
