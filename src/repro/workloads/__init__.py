"""The paper's evaluation workloads.

* :mod:`repro.workloads.mpbench` — the MPBench ping-pong test (§4.1.1),
* :mod:`repro.workloads.farm` — the Bulk Processor Farm manager/worker
  program (§4.2.1), the paper's latency-tolerant "real world" application,
* :mod:`repro.workloads.npb` — mini NAS Parallel Benchmarks (§4.1.2):
  EP, IS, CG, MG, LU, BT, SP with real (scaled) numerics and the original
  communication structure.  FT is omitted, as in the paper.
"""

from .farm import FarmParams, FarmResult, run_farm
from .interleave_mix import InterleaveMixResult, run_interleave_mix
from .mpbench import PingPongResult, run_pingpong

__all__ = [
    "FarmParams",
    "FarmResult",
    "InterleaveMixResult",
    "PingPongResult",
    "run_farm",
    "run_interleave_mix",
    "run_pingpong",
]
