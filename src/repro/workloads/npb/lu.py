"""LU — SSOR wavefront pipeline.

A lower/upper sweep pair over an n*n*n grid decomposed along z: each
plane's update needs the plane below (lower sweep) or above (upper
sweep), so planes flow through ranks as a software pipeline of *many
small* boundary messages — one n*5 doubles strip per plane per sweep,
the canonical small-message NPB kernel.  Verified by solution-norm
stability (the SSOR iteration on this diagonally dominant operator must
not diverge) plus conservation of the pipeline's plane count.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops

OPS_PER_CELL_SWEEP = 150.0
BOUNDARY_WIDTH = 5  # doubles per row carried between planes (flux strip)


async def kernel(comm, n: int, iterations: int):
    nz_local = max(1, n // comm.size)
    rng = np.random.default_rng(31 + comm.rank)
    u = rng.standard_normal((nz_local, n, n)) * 0.01
    rhs = rng.standard_normal((nz_local, n, n)) * 0.01
    omega = 1.2

    flops = 0.0
    planes_processed = 0
    for _ in range(iterations):
        # ---- lower sweep: planes flow rank 0 -> rank N-1 ----------------
        if comm.rank > 0:
            incoming = await comm.recv(source=comm.rank - 1, tag=70)
        else:
            incoming = np.zeros((n, BOUNDARY_WIDTH))
        for z in range(nz_local):
            u[z] = (1 - omega) * u[z] + omega * (
                rhs[z] + np.roll(u[z], 1, axis=0) * 0.25 + incoming.mean() * 0.01
            )
            incoming = u[z][:, :BOUNDARY_WIDTH]
            planes_processed += 1
            cost = OPS_PER_CELL_SWEEP * n * n
            flops += cost
            await charge_flops(comm, cost)
        if comm.rank + 1 < comm.size:
            await comm.send(incoming.copy(), dest=comm.rank + 1, tag=70)

        # ---- upper sweep: planes flow rank N-1 -> rank 0 -----------------
        if comm.rank + 1 < comm.size:
            incoming = await comm.recv(source=comm.rank + 1, tag=71)
        else:
            incoming = np.zeros((n, BOUNDARY_WIDTH))
        for z in reversed(range(nz_local)):
            u[z] = (1 - omega) * u[z] + omega * (
                rhs[z] + np.roll(u[z], -1, axis=0) * 0.25 + incoming.mean() * 0.01
            )
            incoming = u[z][:, -BOUNDARY_WIDTH:]
            planes_processed += 1
            cost = OPS_PER_CELL_SWEEP * n * n
            flops += cost
            await charge_flops(comm, cost)
        if comm.rank > 0:
            await comm.send(incoming.copy(), dest=comm.rank - 1, tag=71)

    norm = await comm.allreduce(float((u * u).sum()))
    total_planes = await comm.allreduce(planes_processed)
    verified = (
        np.isfinite(norm)
        and norm < 1e6
        and total_planes == 2 * iterations * nz_local * comm.size
    )
    detail = f"norm={norm:.4e} planes={total_planes}"
    return flops, verified, detail
