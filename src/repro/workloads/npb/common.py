"""Shared NPB infrastructure: class tables, results, the runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...core.world import WorldConfig, run_app

#: Problem-size parameter per (kernel, class).  These are scaled-down
#: "mini" sizes chosen so each class keeps the paper's message-size mix:
#: S/W are short-message dominated; A/B push CG/IS/SP into the long
#: (rendezvous) regime while MG and BT stay short-dominated, matching the
#: paper's analysis of dataset B (§4.1.2).
CLASSES: Dict[str, Dict[str, int]] = {
    "EP": {"S": 16, "W": 18, "A": 20, "B": 22},  # log2(total samples)
    "IS": {"S": 14, "W": 16, "A": 18, "B": 20},  # log2(total keys)
    "CG": {"S": 24, "W": 48, "A": 128, "B": 256},  # Laplacian grid side (n=k^2)
    "MG": {"S": 16, "W": 24, "A": 32, "B": 64},  # 3-D grid side
    "LU": {"S": 12, "W": 24, "A": 40, "B": 64},  # 3-D grid side
    "BT": {"S": 12, "W": 24, "A": 40, "B": 64},  # 3-D grid side
    "SP": {"S": 12, "W": 24, "A": 40, "B": 64},  # 3-D grid side
}

#: Iteration counts (scaled down from NPB's, same spirit).
ITERATIONS: Dict[str, int] = {
    "EP": 1,
    "IS": 3,
    "CG": 15,
    "MG": 3,
    "LU": 4,
    "BT": 4,
    "SP": 4,
}


@dataclass
class NPBResult:
    """One kernel execution on one rank set."""

    name: str
    cls: str
    elapsed_ns: int
    total_flops: float
    verified: bool
    detail: str = ""

    @property
    def mops(self) -> float:
        """Virtual-time Mop/s total (the paper's Fig. 9 metric)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_flops / 1e6 / (self.elapsed_ns / 1e9)


def npb_app(name: str, cls: str):
    """Build the per-rank coroutine for one kernel/class."""
    from . import KERNELS

    kernel = KERNELS[name]
    size_param = CLASSES[name][cls]
    iters = ITERATIONS[name]

    async def app(comm):
        start = comm.process.kernel.now
        flops, verified, detail = await kernel(comm, size_param, iters)
        elapsed = comm.process.kernel.now - start
        return NPBResult(
            name=name,
            cls=cls,
            elapsed_ns=elapsed,
            total_flops=flops,
            verified=verified,
            detail=detail,
        )

    return app


def run_npb(
    name: str,
    cls: str,
    rpi: str,
    n_procs: int = 8,
    loss_rate: float = 0.0,
    seed: int = 0,
    config: Optional[WorldConfig] = None,
    limit_ns: Optional[int] = None,
) -> NPBResult:
    """Run one kernel on a fresh world; aggregates rank results."""
    if config is None:
        config = WorldConfig(n_procs=n_procs, rpi=rpi, loss_rate=loss_rate, seed=seed)
    world_result = run_app(npb_app(name, cls), config=config, limit_ns=limit_ns)
    per_rank = world_result.results
    total_flops = sum(r.total_flops for r in per_rank)
    elapsed = max(r.elapsed_ns for r in per_rank)
    return NPBResult(
        name=name,
        cls=cls,
        elapsed_ns=elapsed,
        total_flops=total_flops,
        verified=all(r.verified for r in per_rank),
        detail=per_rank[0].detail,
    )


async def charge_flops(comm, flops: float) -> None:
    """Charge an operation count to the rank's virtual CPU."""
    await comm.process.compute_flops(flops)
