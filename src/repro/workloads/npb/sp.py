"""SP — scalar-pentadiagonal ADI, pencil decomposition.

Three directional sweeps per iteration; x and y are rank-local, the z
sweep pipelines *full faces* (n*n cells x 5 scalar coefficients) through
the ranks in both directions — the large-message NPB kernel whose class
A/B faces land in the rendezvous regime.  Verified by solution-norm
stability and face conservation.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops

OPS_PER_CELL_ITER = 900.0
NVARS = 5  # scalar penta solves carry five coefficient planes


async def kernel(comm, n: int, iterations: int):
    nz_local = max(1, n // comm.size)
    rng = np.random.default_rng(53 + comm.rank)
    u = rng.standard_normal((nz_local, n, n, NVARS)) * 0.01

    flops = 0.0
    faces_moved = 0
    for _ in range(iterations):
        # x sweep (local): tridiagonal-ish smoothing along axis 1
        u = 0.9 * u + 0.05 * np.roll(u, 1, axis=1) + 0.05 * np.roll(u, -1, axis=1)
        # y sweep (local)
        u = 0.9 * u + 0.05 * np.roll(u, 1, axis=2) + 0.05 * np.roll(u, -1, axis=2)
        cost = OPS_PER_CELL_ITER * u[..., 0].size
        flops += cost
        await charge_flops(comm, cost)

        # z sweep, forward: full face flows rank 0 -> N-1
        if comm.rank > 0:
            face = await comm.recv(source=comm.rank - 1, tag=80)  # n*n*5 doubles
            u[0] = 0.8 * u[0] + 0.2 * face
            faces_moved += 1
        for z in range(1, nz_local):
            u[z] = 0.8 * u[z] + 0.2 * u[z - 1]
        if comm.rank + 1 < comm.size:
            await comm.send(u[-1].copy(), dest=comm.rank + 1, tag=80)

        # z sweep, backward: face flows rank N-1 -> 0
        if comm.rank + 1 < comm.size:
            face = await comm.recv(source=comm.rank + 1, tag=81)
            u[-1] = 0.8 * u[-1] + 0.2 * face
            faces_moved += 1
        for z in reversed(range(nz_local - 1)):
            u[z] = 0.8 * u[z] + 0.2 * u[z + 1]
        if comm.rank > 0:
            await comm.send(u[0].copy(), dest=comm.rank - 1, tag=81)

    norm = await comm.allreduce(float((u * u).sum()))
    total_faces = await comm.allreduce(faces_moved)
    expected_faces = 2 * iterations * (comm.size - 1)
    verified = np.isfinite(norm) and norm < 1e6 and total_faces == expected_faces
    detail = f"norm={norm:.4e} faces={total_faces}"
    return flops, verified, detail
