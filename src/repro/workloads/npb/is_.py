"""IS — integer bucket sort.

Every rank generates its share of keys, histograms them into one bucket
per rank, exchanges bucket counts (small alltoall) and then the keys
themselves (the large alltoall that dominates classes A/B), and sorts its
received bucket locally.  Verified by global order across rank
boundaries and key conservation.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops

KEY_BITS = 16  # keys in [0, 2^16)
OPS_PER_KEY = 25.0  # histogram + ranking + sort work per key per iteration


async def kernel(comm, log2_keys: int, iterations: int):
    total_keys = 1 << log2_keys
    n_local = total_keys // comm.size
    key_max = 1 << KEY_BITS
    bucket_width = key_max // comm.size
    rng = np.random.default_rng(777 + comm.rank)

    flops = 0.0
    verified = True
    detail = ""
    for it in range(iterations):
        keys = rng.integers(0, key_max, n_local, dtype=np.int64)
        flops += OPS_PER_KEY * n_local
        await charge_flops(comm, OPS_PER_KEY * n_local)

        bucket_of = np.minimum(keys // bucket_width, comm.size - 1)
        order = np.argsort(bucket_of, kind="stable")
        keys_by_bucket = keys[order]
        counts = np.bincount(bucket_of, minlength=comm.size)

        # small alltoall: how many keys each peer will send me
        incoming = await comm.alltoall([int(c) for c in counts])

        # large alltoall: the keys themselves (numpy arrays, pickled)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        outgoing = [
            keys_by_bucket[offsets[d] : offsets[d + 1]] for d in range(comm.size)
        ]
        received = await comm.alltoall(outgoing)
        mine = np.concatenate(received)
        mine.sort(kind="radix" if hasattr(np, "radix") else "quicksort")
        flops += OPS_PER_KEY * len(mine)
        await charge_flops(comm, OPS_PER_KEY * len(mine))

        # verification: counts match announcements, keys in my bucket range,
        # and my largest key <= right neighbour's smallest
        if sum(incoming) != len(mine):
            verified = False
        lo = comm.rank * bucket_width
        hi = key_max if comm.rank == comm.size - 1 else (comm.rank + 1) * bucket_width
        if len(mine) and (mine[0] < lo or mine[-1] >= hi):
            verified = False
        total = await comm.allreduce(len(mine))
        if total != total_keys:
            verified = False
        boundary_ok = await _check_boundaries(comm, mine)
        verified = verified and boundary_ok
        detail = f"iter{it}: kept={len(mine)}"
    return flops, verified, detail


async def _check_boundaries(comm, mine: np.ndarray) -> bool:
    """My max must not exceed my right neighbour's min (global order)."""
    my_min = int(mine[0]) if len(mine) else None
    my_max = int(mine[-1]) if len(mine) else None
    ok = True
    if comm.rank + 1 < comm.size:
        await comm.send(my_max, dest=comm.rank + 1, tag=50)
    if comm.rank > 0:
        left_max = await comm.recv(source=comm.rank - 1, tag=50)
        if left_max is not None and my_min is not None and left_max > my_min:
            ok = False
    return await comm.allreduce(ok, op=lambda a, b: a and b)
