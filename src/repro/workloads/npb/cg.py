"""CG — conjugate gradient on a 2-D Laplacian (SPD, sparse).

Rows are block-partitioned; every iteration allgathers the search
direction (the large message that pushes classes A/B into the rendezvous
regime) and allreduces two dot products.  Verified by the residual norm
actually shrinking — CG on an SPD system must converge monotonically in
the A-norm, and the 2-D Laplacian is safely SPD.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops


def laplacian_rows(k: int, row_lo: int, row_hi: int):
    """CSR-like representation of rows [row_lo, row_hi) of the k*k
    5-point Laplacian (+4 diagonal), built without scipy for portability."""
    rows = []
    cols = []
    vals = []
    for r in range(row_lo, row_hi):
        i, j = divmod(r, k)
        rows.append(r - row_lo)
        cols.append(r)
        vals.append(4.0 + 0.1)  # shifted: strictly diagonally dominant
        for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < k and 0 <= nj < k:
                rows.append(r - row_lo)
                cols.append(ni * k + nj)
                vals.append(-1.0)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )


async def kernel(comm, k: int, iterations: int):
    n = k * k
    per = n // comm.size
    row_lo = comm.rank * per
    row_hi = n if comm.rank == comm.size - 1 else row_lo + per
    local_n = row_hi - row_lo
    rows, cols, vals = laplacian_rows(k, row_lo, row_hi)
    nnz = len(vals)

    rng = np.random.default_rng(4242)  # same b on every rank
    b = rng.standard_normal(n)
    x_local = np.zeros(local_n)
    r_local = b[row_lo:row_hi].copy()
    p_local = r_local.copy()

    def matvec(p_full: np.ndarray) -> np.ndarray:
        out = np.zeros(local_n)
        np.add.at(out, rows, vals * p_full[cols])
        return out

    flops = 0.0
    rs_old = await comm.allreduce(float(r_local @ r_local))
    initial_res = rs_old
    for _ in range(iterations):
        pieces = await comm.allgather(p_local)  # the big message
        p_full = np.concatenate(pieces)
        ap = matvec(p_full)
        step_flops = 2.0 * nnz + 10.0 * local_n
        flops += step_flops
        await charge_flops(comm, step_flops)
        pap = await comm.allreduce(float(p_local @ ap))
        alpha = rs_old / pap
        x_local += alpha * p_local
        r_local -= alpha * ap
        rs_new = await comm.allreduce(float(r_local @ r_local))
        p_local = r_local + (rs_new / rs_old) * p_local
        rs_old = rs_new

    verified = rs_old < initial_res and np.isfinite(rs_old)
    detail = f"residual {initial_res:.3e} -> {rs_old:.3e}"
    return flops, verified, detail
