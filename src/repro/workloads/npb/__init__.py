"""Mini NAS Parallel Benchmarks (paper §4.1.2, Fig. 9).

Seven of the eight NPB 3.2 benchmarks, exactly the set the paper ran
(FT omitted — it did not build with mpif77 for them either):

========  =============================  ==================================
kernel    computation                    communication structure
========  =============================  ==================================
EP        Gaussian deviates via           one allreduce at the end
          acceptance-rejection            (embarrassingly parallel)
IS        integer bucket sort             alltoall of counts + key payloads
CG        conjugate gradient on a 2-D     allgather of the iterate +
          Laplacian (SPD, sparse)         allreduce of dot products
MG        3-D multigrid V-cycles,         nearest-neighbour halo exchange
          z-decomposition                 at every level (mostly short)
LU        SSOR wavefront                  pipelined plane-boundary messages
                                          (many, small)
BT        block-tridiagonal ADI,          small sub-face messages per sweep
          multipartition-style            stage (short-dominated, like the
                                          paper observes for class B)
SP        scalar-pentadiagonal ADI,       full-face pipeline messages
          pencil decomposition            (long for classes A/B)
========  =============================  ==================================

The kernels run *real* (scaled-down) numerics on numpy arrays and charge
their operation counts to the virtual CPU, so the Mop/s we report is
virtual-time Mop/s: communication behaviour (message sizes per class,
short vs long protocol, loss recovery) is what differentiates the RPIs,
which is exactly the comparison in the paper's Fig. 9.
"""

from .common import CLASSES, NPBResult, npb_app, run_npb
from . import bt, cg, ep, is_, lu, mg, sp

KERNELS = {
    "EP": ep.kernel,
    "IS": is_.kernel,
    "CG": cg.kernel,
    "MG": mg.kernel,
    "LU": lu.kernel,
    "BT": bt.kernel,
    "SP": sp.kernel,
}

__all__ = ["CLASSES", "KERNELS", "NPBResult", "npb_app", "run_npb"]
