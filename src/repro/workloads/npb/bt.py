"""BT — block-tridiagonal ADI, multipartition-style communication.

BT's 5x5-block line solves move much more data per cell than SP, but the
multipartition decomposition splits each face into per-stage *sub-faces*:
every pipeline step ships only an (n/P) x n strip of blocks.  The result
is many moderately small messages even at class B — matching the paper's
observation that BT stays short-message dominated and keeps TCP
competitive (§4.1.2).  Verified like SP: norm stability + sub-face
conservation.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops

OPS_PER_CELL_ITER = 3000.0
BLOCK = 5  # 5x5 blocks -> 25 doubles per cell boundary... per sub-face row


async def kernel(comm, n: int, iterations: int):
    nz_local = max(1, n // comm.size)
    strip = max(1, n // comm.size)  # multipartition sub-face height
    rng = np.random.default_rng(67 + comm.rank)
    u = rng.standard_normal((nz_local, n, n, BLOCK)) * 0.01

    flops = 0.0
    subfaces_moved = 0
    for _ in range(iterations):
        # local x / y block sweeps
        u = 0.9 * u + 0.05 * np.roll(u, 1, axis=1) + 0.05 * np.roll(u, -1, axis=1)
        u = 0.9 * u + 0.05 * np.roll(u, 1, axis=2) + 0.05 * np.roll(u, -1, axis=2)
        cost = OPS_PER_CELL_ITER * u[..., 0].size
        flops += cost
        await charge_flops(comm, cost)

        # z sweep in multipartition stages: one sub-face strip at a time,
        # so a stage message is strip*n*BLOCK doubles (short even at B)
        for direction, tag in ((1, 90), (-1, 91)):
            for stage in range(0, n, strip):
                lo, hi = stage, min(stage + strip, n)
                if direction == 1:
                    if comm.rank > 0:
                        sub = await comm.recv(source=comm.rank - 1, tag=tag + stage % 7)
                        u[0, lo:hi] = 0.8 * u[0, lo:hi] + 0.2 * sub
                        subfaces_moved += 1
                    for z in range(1, nz_local):
                        u[z, lo:hi] = 0.8 * u[z, lo:hi] + 0.2 * u[z - 1, lo:hi]
                    if comm.rank + 1 < comm.size:
                        await comm.send(
                            u[-1, lo:hi].copy(), dest=comm.rank + 1, tag=tag + stage % 7
                        )
                else:
                    if comm.rank + 1 < comm.size:
                        sub = await comm.recv(source=comm.rank + 1, tag=tag + stage % 7)
                        u[-1, lo:hi] = 0.8 * u[-1, lo:hi] + 0.2 * sub
                        subfaces_moved += 1
                    for z in reversed(range(nz_local - 1)):
                        u[z, lo:hi] = 0.8 * u[z, lo:hi] + 0.2 * u[z + 1, lo:hi]
                    if comm.rank > 0:
                        await comm.send(
                            u[0, lo:hi].copy(), dest=comm.rank - 1, tag=tag + stage % 7
                        )

    norm = await comm.allreduce(float((u * u).sum()))
    total = await comm.allreduce(subfaces_moved)
    n_stages = (n + strip - 1) // strip
    expected = 2 * iterations * (comm.size - 1) * n_stages
    verified = np.isfinite(norm) and norm < 1e6 and total == expected
    detail = f"norm={norm:.4e} subfaces={total}"
    return flops, verified, detail
