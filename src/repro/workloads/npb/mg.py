"""MG — 3-D multigrid V-cycles on a 3-D process grid.

Like NPB MG proper, the domain is decomposed in all three dimensions
(2x2x2 for eight processes), so each smoothing step exchanges up to six
*quarter-size* faces with nearest neighbours — 8 KiB faces at class B,
shrinking 4x per level.  This is why MG stays short-message dominated
even at class B, the property behind the paper's observation that TCP
keeps an edge on MG (§4.1.2).  Verified by the residual norm dropping
across V-cycles (weighted-Jacobi on the 7-point Laplacian converges).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .common import charge_flops

OPS_PER_CELL_RELAX = 10.0
HALO_TAG_BASE = 60  # axis a, direction d -> tag HALO_TAG_BASE + 2a + d


def process_grid(size: int) -> Tuple[int, int, int]:
    """Factor ``size`` into a near-cubic (dz, dy, dx) grid."""
    dims = [1, 1, 1]
    remaining = size
    factor = 2
    while remaining > 1:
        while remaining % factor:
            factor += 1
        dims[int(np.argmin(dims))] *= factor
        remaining //= factor
    dims.sort()
    return tuple(dims)  # type: ignore[return-value]


def coords_of(rank: int, dims) -> Tuple[int, int, int]:
    """Rank -> (z, y, x) coordinates in the process grid."""
    dz, dy, dx = dims
    return (rank // (dy * dx), (rank // dx) % dy, rank % dx)


def rank_of(coords, dims) -> int:
    dz, dy, dx = dims
    z, y, x = coords
    return (z * dy + y) * dx + x


async def halo_exchange(comm, u: np.ndarray, dims) -> None:
    """Swap the six ghost faces with nearest neighbours (where they exist)."""
    me = coords_of(comm.rank, dims)
    sends = []
    recvs: List[Tuple[int, int, "object"]] = []
    for axis in range(3):
        if dims[axis] == 1:
            continue
        for direction, offset in ((0, -1), (1, +1)):
            nbr = list(me)
            nbr[axis] += offset
            if not 0 <= nbr[axis] < dims[axis]:
                continue
            peer = rank_of(nbr, dims)
            tag = HALO_TAG_BASE + 2 * axis + direction
            reverse_tag = HALO_TAG_BASE + 2 * axis + (1 - direction)
            # send my boundary plane, receive their boundary into my ghost
            send_sl = [slice(1, -1)] * 3
            recv_sl = [slice(1, -1)] * 3
            send_sl[axis] = 1 if offset < 0 else -2
            recv_sl[axis] = 0 if offset < 0 else -1
            sends.append(
                comm.isend(np.ascontiguousarray(u[tuple(send_sl)]), dest=peer, tag=tag)
            )
            recvs.append((peer, axis, (tuple(recv_sl), comm.irecv(source=peer, tag=reverse_tag))))
    await comm.waitall([r for _, _, (_, r) in recvs] + sends)
    for _, _, (sl, req) in recvs:
        u[sl] = req.data


def relax(u: np.ndarray, f: np.ndarray, h2: float) -> np.ndarray:
    """One weighted-Jacobi sweep on the interior."""
    new = u.copy()
    new[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        + h2 * f[1:-1, 1:-1, 1:-1]
    ) / 6.0
    return 0.5 * u + 0.5 * new


def residual(u: np.ndarray, f: np.ndarray, h2: float) -> np.ndarray:
    """r = f - A u on the interior (ghosts must be current)."""
    r = np.zeros_like(u)
    r[1:-1, 1:-1, 1:-1] = f[1:-1, 1:-1, 1:-1] - (
        6.0 * u[1:-1, 1:-1, 1:-1]
        - u[:-2, 1:-1, 1:-1]
        - u[2:, 1:-1, 1:-1]
        - u[1:-1, :-2, 1:-1]
        - u[1:-1, 2:, 1:-1]
        - u[1:-1, 1:-1, :-2]
        - u[1:-1, 1:-1, 2:]
    ) / h2
    return r


async def v_cycle(comm, u, f, h2, dims, flops_box):
    """Smooth, restrict, recurse, prolong, smooth."""
    for _ in range(2):
        await halo_exchange(comm, u, dims)
        u = relax(u, f, h2)
        cost = OPS_PER_CELL_RELAX * u.size
        flops_box[0] += cost
        await charge_flops(comm, cost)
    interior = [s - 2 for s in u.shape]
    if all(side % 2 == 0 and side // 2 >= 2 for side in interior):
        await halo_exchange(comm, u, dims)
        r = residual(u, f, h2)
        coarse = r[1:-1:2, 1:-1:2, 1:-1:2]
        cf = np.zeros(tuple(side + 2 for side in coarse.shape))
        cf[1:-1, 1:-1, 1:-1] = coarse
        cu = np.zeros_like(cf)
        cu = await v_cycle(comm, cu, cf, 4.0 * h2, dims, flops_box)
        u[1:-1:2, 1:-1:2, 1:-1:2] += cu[1:-1, 1:-1, 1:-1]
    for _ in range(2):
        await halo_exchange(comm, u, dims)
        u = relax(u, f, h2)
        cost = OPS_PER_CELL_RELAX * u.size
        flops_box[0] += cost
        await charge_flops(comm, cost)
    return u


async def kernel(comm, n: int, iterations: int):
    dims = process_grid(comm.size)
    local = tuple(n // d for d in dims)
    if min(local) < 4:
        raise ValueError(f"grid {n} too small for process grid {dims}")
    h2 = (1.0 / n) ** 2
    rng = np.random.default_rng(99 + comm.rank)
    f = np.zeros(tuple(side + 2 for side in local))
    f[1:-1, 1:-1, 1:-1] = rng.standard_normal(local)
    u = np.zeros_like(f)

    flops_box = [0.0]

    async def global_resnorm(u):
        await halo_exchange(comm, u, dims)
        r = residual(u, f, h2)
        return (await comm.allreduce(float((r * r).sum()))) ** 0.5

    r0 = await global_resnorm(u)
    for _ in range(iterations):
        u = await v_cycle(comm, u, f, h2, dims, flops_box)
    r1 = await global_resnorm(u)

    verified = bool(np.isfinite(r1)) and r1 < r0
    detail = f"resnorm {r0:.3e} -> {r1:.3e} dims={dims}"
    return flops_box[0], verified, detail
