"""EP — embarrassingly parallel Gaussian-deviate generation.

Each rank draws its share of uniform pairs, keeps the pairs accepted by
the Marsaglia polar method, turns them into Gaussian deviates, and tallies
per-annulus counts; the only communication is a final allreduce of ten
counters and two sums — the pattern that makes EP the "no network" anchor
of Fig. 9.
"""

from __future__ import annotations

import numpy as np

from .common import charge_flops

OPS_PER_SAMPLE = 30.0  # sqrt/log/compare pipeline per drawn pair


async def kernel(comm, log2_samples: int, iterations: int):
    total = 1 << log2_samples
    n_local = total // comm.size
    rng = np.random.default_rng(12345 + comm.rank)

    flops = 0.0
    sx = sy = 0.0
    counts = np.zeros(10, dtype=np.int64)
    accepted_total = 0
    for _ in range(iterations):
        x = rng.uniform(-1.0, 1.0, n_local)
        y = rng.uniform(-1.0, 1.0, n_local)
        t = x * x + y * y
        mask = (t <= 1.0) & (t > 0.0)
        tm = t[mask]
        factor = np.sqrt(-2.0 * np.log(tm) / tm)
        gx = x[mask] * factor
        gy = y[mask] * factor
        sx += float(gx.sum())
        sy += float(gy.sum())
        annulus = np.minimum(
            np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64), 9
        )
        counts += np.bincount(annulus, minlength=10)
        accepted_total += int(mask.sum())
        flops += OPS_PER_SAMPLE * n_local
        await charge_flops(comm, OPS_PER_SAMPLE * n_local)

    global_counts = np.asarray(await comm.allreduce(counts))
    global_sx = await comm.allreduce(sx)
    global_sy = await comm.allreduce(sy)
    global_accept = await comm.allreduce(accepted_total)

    # verification: every accepted sample landed in exactly one annulus,
    # and the Gaussian sums stay near zero relative to the sample count
    verified = int(global_counts.sum()) == global_accept
    scale = max(1.0, float(global_accept)) ** 0.5
    verified = verified and abs(global_sx) < 10 * scale and abs(global_sy) < 10 * scale
    detail = f"accepted={global_accept} sx={global_sx:.2f} sy={global_sy:.2f}"
    return flops, verified, detail
