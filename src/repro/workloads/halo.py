"""Halo exchange: the ring-shift kernel of stencil codes.

Every rank holds a "domain slab" and each iteration ships its boundary
halo to the next rank on a ring while receiving the previous rank's —
the communication pattern of 1-D domain-decomposed stencil solvers, and
the canonical large-world workload: unlike ping-pong it keeps *every*
host busy, so it exercises pod trunks and is the natural benchmark for
the sharded (parallel DES) runner where each pod simulates on its own
core.
"""

from __future__ import annotations

from ..util.blobs import SyntheticBlob

HALO_TAG = 7


def make_halo(halo_bytes: int, iterations: int, warmup: int = 1):
    """Build the all-ranks ring-shift application coroutine.

    Each iteration: rank r sends its halo to ``(r+1) % size`` and
    receives from ``(r-1) % size`` (isend + recv so neighbouring sends
    overlap instead of serialising round-trips).  Returns the measured
    virtual nanoseconds for the post-warmup iterations.
    """

    async def halo(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        payload = SyntheticBlob(halo_bytes, label="halo")
        start_ns = None
        for i in range(warmup + iterations):
            if i == warmup:
                start_ns = comm.process.kernel.now
            req = comm.isend(payload, dest=right, tag=HALO_TAG)
            await comm.recv(source=left, tag=HALO_TAG)
            await comm.wait(req)
        return comm.process.kernel.now - start_ns

    return halo
