"""Mixed small/large traffic microbenchmark for message interleaving.

The paper's Fig. 12 story is about head-of-line blocking *between*
messages under loss; this workload exhibits the other classic HOL case —
a latency-critical small message stuck *behind a large message of a
different stream on the same association*.  Rank 1 starts one or more
bulk transfers (tag -> stream A) and then sends a small message (tag ->
stream B).  With legacy DATA chunks the bulk monopolises the wire until
its last fragment (fragment TSNs must stay contiguous), so the small
message's latency grows with the bulk size.  With RFC 8260 I-DATA and a
non-FCFS stream scheduler, the small message's fragments interleave with
the bulk's and its latency approaches the unloaded round-trip.

TCP runs the same pattern over the byte-stream RPI for comparison: there
the two messages share one connection and the small one always queues
behind the bulk (the paper's §3.2 argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.world import WorldConfig, run_app
from ..util.blobs import SyntheticBlob

TAG_SMALL = 3  # -> stream (0*31+3) % 10 = 3
TAG_GO = 5  # round kickoff, rank 0 -> rank 1
TAG_BULK = 7  # -> stream (0*31+7) % 10 = 7


@dataclass
class InterleaveMixResult:
    """Latency of small messages measured under concurrent bulk traffic."""

    rpi: str
    interleaving: bool
    scheduler: str
    rounds: int
    bulk_size: int
    bulks_per_round: int
    small_size: int
    elapsed_ns: int
    small_latency_ns: List[int] = field(default_factory=list)

    @property
    def small_latency_mean_ns(self) -> float:
        """Mean GO->small-arrival latency across rounds."""
        if not self.small_latency_ns:
            return 0.0
        return sum(self.small_latency_ns) / len(self.small_latency_ns)

    @property
    def small_latency_max_ns(self) -> int:
        """Worst-round small-message latency."""
        return max(self.small_latency_ns, default=0)

    @property
    def bulk_throughput_mbps(self) -> float:
        """Bulk payload rate over the whole run (MB/s)."""
        if self.elapsed_ns <= 0:
            return 0.0
        total = self.bulk_size * self.bulks_per_round * self.rounds
        return total / (self.elapsed_ns / 1e9) / 1e6


def make_interleave_mix(
    bulk_size: int,
    small_size: int,
    rounds: int,
    bulks_per_round: int,
    warmup: int = 1,
):
    """Build the two-process mixed-traffic application coroutine.

    Per round: rank 0 posts its receives, releases rank 1 with a GO
    message, and timestamps GO -> small-message completion.  Rank 1
    starts the bulk isends *first* and the small isend last — the
    adversarial ordering for a FIFO send path.
    """

    async def mixed(comm):
        if comm.rank > 1:
            return None
        kernel = comm.process.kernel
        bulk = SyntheticBlob(bulk_size, label="mix-bulk")
        small = SyntheticBlob(small_size, label="mix-small")
        latencies: List[int] = []
        start_ns = None
        for i in range(warmup + rounds):
            if i == warmup:
                start_ns = kernel.now
            if comm.rank == 0:
                small_req = comm.irecv(source=1, tag=TAG_SMALL)
                bulk_reqs = [
                    comm.irecv(source=1, tag=TAG_BULK)
                    for _ in range(bulks_per_round)
                ]
                await comm.send(SyntheticBlob(1, label="go"), dest=1, tag=TAG_GO)
                t0 = kernel.now
                await comm.wait(small_req)
                if i >= warmup:
                    latencies.append(kernel.now - t0)
                await comm.waitall(bulk_reqs)
            else:
                await comm.recv(source=0, tag=TAG_GO)
                reqs = [
                    comm.isend(bulk, dest=0, tag=TAG_BULK)
                    for _ in range(bulks_per_round)
                ]
                reqs.append(comm.isend(small, dest=0, tag=TAG_SMALL))
                await comm.waitall(reqs)
        elapsed = kernel.now - start_ns
        return (latencies, elapsed) if comm.rank == 0 else elapsed

    return mixed


def run_interleave_mix(
    rpi: str,
    bulk_size: int = 128 * 1024,
    small_size: int = 1024,
    rounds: int = 6,
    bulks_per_round: int = 1,
    interleaving: bool = False,
    scheduler: str = "fcfs",
    loss_rate: float = 0.0,
    seed: int = 1,
    warmup: int = 1,
    config: Optional[WorldConfig] = None,
    limit_ns: Optional[int] = None,
) -> InterleaveMixResult:
    """Run one mixed-traffic configuration on a fresh two-node world.

    The eager limit is raised above the bulk size so the bulk goes out
    as one transport message immediately (no rendezvous round-trip) —
    that is what makes it monopolise a FIFO send path and what the
    interleaving run has to break up.
    """
    if config is None:
        config = WorldConfig(
            n_procs=2,
            rpi=rpi,
            loss_rate=loss_rate,
            seed=seed,
            eager_limit=max(192 * 1024, bulk_size + 4096),
            interleaving=interleaving,
            scheduler=scheduler,
        )
    result = run_app(
        make_interleave_mix(bulk_size, small_size, rounds, bulks_per_round, warmup),
        config=config,
        limit_ns=limit_ns,
    )
    latencies, _ = result.results[0]
    return InterleaveMixResult(
        rpi=rpi,
        interleaving=interleaving,
        scheduler=scheduler,
        rounds=rounds,
        bulk_size=bulk_size,
        bulks_per_round=bulks_per_round,
        small_size=small_size,
        elapsed_ns=result.duration_ns,
        small_latency_ns=latencies,
    )
