"""The head-of-line-blocking microscenario of the paper's Fig. 4/5.

P1 sends Msg-A then Msg-B with different tags; P0 posts two non-blocking
receives and calls Waitany.  Under loss, if part of Msg-A is dropped:

* over TCP, Msg-B sits behind Msg-A in the byte stream — Waitany can only
  ever complete on Msg-A, after the loss is repaired;
* over SCTP, the two tags ride different streams, so Msg-B is delivered
  independently and Waitany completes immediately — the concurrency the
  programmer expressed.

The experiment repeats the exchange and reports how often the
second-sent message completed first, plus the mean time until *some*
message was available (the latency the compute phase actually waits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.world import WorldConfig, run_app
from ..util.blobs import SyntheticBlob

TAG_A = 11
TAG_B = 22


@dataclass
class HolMicroResult:
    """Waitany behaviour over many repetitions."""

    iterations: int
    b_completed_first: int
    mean_first_completion_ns: float
    rpi: str
    loss_rate: float

    @property
    def b_first_fraction(self) -> float:
        return self.b_completed_first / max(1, self.iterations)


def make_hol_micro(message_size: int, iterations: int):
    """Build the two-process Fig. 4 scenario."""

    async def app(comm):
        if comm.rank > 1:
            return None
        kernel = comm.process.kernel
        if comm.rank == 1:
            for _ in range(iterations):
                await comm.send(SyntheticBlob(message_size), dest=0, tag=TAG_A)
                await comm.send(SyntheticBlob(message_size), dest=0, tag=TAG_B)
                await comm.recv(source=0, tag=TAG_A)  # sync before next round
            return None
        b_first = 0
        total_wait_ns = 0
        for _ in range(iterations):
            req_a = comm.irecv(source=1, tag=TAG_A)
            req_b = comm.irecv(source=1, tag=TAG_B)
            t0 = kernel.now
            idx, _ = await comm.waitany([req_a, req_b])
            total_wait_ns += kernel.now - t0
            if idx == 1:
                b_first += 1
            await comm.compute(0.001)  # overlap: work on whichever arrived
            await comm.waitall([req_a, req_b])
            await comm.send(b"sync", dest=1, tag=TAG_A)
        return HolMicroResult(
            iterations=iterations,
            b_completed_first=b_first,
            mean_first_completion_ns=total_wait_ns / iterations,
            rpi="",
            loss_rate=0.0,
        )

    return app


def run_hol_micro(
    rpi: str,
    message_size: int = 8 * 1024,
    iterations: int = 30,
    loss_rate: float = 0.02,
    seed: int = 0,
    num_streams: int = 10,
    limit_ns: Optional[int] = None,
) -> HolMicroResult:
    """Run the Fig. 4 microscenario; returns rank 0's observations."""
    config = WorldConfig(
        n_procs=2, rpi=rpi, loss_rate=loss_rate, seed=seed, num_streams=num_streams
    )
    world_result = run_app(
        make_hol_micro(message_size, iterations), config=config, limit_ns=limit_ns
    )
    result: HolMicroResult = world_result.results[0]
    result.rpi = rpi
    result.loss_rate = loss_rate
    return result
