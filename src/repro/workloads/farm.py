"""The Bulk Processor Farm (paper §4.2.1, Figs. 10-12).

A request-driven manager/worker program with the communication pattern
the paper describes:

* one manager (rank 0), N-1 workers,
* the manager serves task requests strictly in arrival order
  (``MPI_ANY_SOURCE``),
* each task carries one of ``MaxWorkTags`` different tags (its *type*);
  workers receive with ``MPI_ANY_TAG`` — this is what maps onto distinct
  SCTP streams and defeats head-of-line blocking,
* every worker keeps exactly ``outstanding_requests`` (10) job requests
  open at all times, using non-blocking sends/receives,
* ``fanout`` tasks are shipped per request (Fig. 11 uses fanout=10),
* workers overlap the per-task computation with the arrival of further
  tasks — the "latency tolerant" structure the paper argues SCTP serves
  better under loss.

Protocol details (invented where the paper is silent, and documented):
after the ``fanout`` task messages of one batch the manager sends a tiny
BATCH_MORE control message, which triggers the worker's replacement
request; when tasks run out the manager answers requests with DONE
instead, and a worker terminates once all its outstanding requests have
been answered with DONE.  Results flow back as small messages tagged by
task type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.constants import ANY_SOURCE, ANY_TAG
from ..core.world import WorldConfig, run_app
from ..util.blobs import SyntheticBlob

REQUEST_TAG = 900
BATCH_MORE_TAG = 901
DONE_TAG = 902
RESULT_TAG = 903  # all results share one tag (requests must never
#   match the manager's wildcard result receives, so results get their own)

RESULT_SIZE = 1024  # bytes per result message


@dataclass
class FarmParams:
    """Farm experiment parameters; defaults follow the paper."""

    num_tasks: int = 10_000
    task_size: int = 30 * 1024  # "short" tasks; 300 KiB for "long"
    max_work_tags: int = 10
    outstanding_requests: int = 10
    fanout: int = 1
    compute_seconds_per_task: float = 0.004


@dataclass
class FarmResult:
    """What one farm run produced."""

    params: FarmParams
    elapsed_ns: int
    tasks_done: int
    per_worker_tasks: Dict[int, int] = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9


def make_farm(params: FarmParams):
    """Build the farm application coroutine (manager = rank 0)."""

    async def farm(comm):
        if comm.rank == 0:
            return await _manager(comm, params)
        return await _worker(comm, params)

    return farm


async def _manager(comm, p: FarmParams):
    size = comm.size
    n_workers = size - 1
    start_ns = comm.process.kernel.now

    tasks_left = p.num_tasks
    next_type = 0
    dones_needed = n_workers * p.outstanding_requests
    dones_sent = 0
    results_expected = p.num_tasks
    results_got = 0
    per_worker: Dict[int, int] = {w: 0 for w in range(1, size)}
    sent_to: Dict[int, int] = {w: 0 for w in range(1, size)}

    # pre-posted receives: requests and results from anyone
    request_recvs = [
        comm.irecv(source=ANY_SOURCE, tag=REQUEST_TAG)
        for _ in range(n_workers * p.outstanding_requests)
    ]
    result_recvs = [
        comm.irecv(source=ANY_SOURCE, tag=RESULT_TAG)
        for _ in range(min(256, results_expected))
    ]

    pending_sends: List = []
    while dones_sent < dones_needed or results_got < results_expected:
        pending_sends = [s for s in pending_sends if not s.done]
        ready_req = next((i for i, r in enumerate(request_recvs) if r.done), None)
        ready_res = next((i for i, r in enumerate(result_recvs) if r.done), None)
        if ready_req is None and ready_res is None:
            await comm.waitany(request_recvs + result_recvs)
            continue

        if ready_res is not None:
            req = result_recvs.pop(ready_res)
            results_got += 1
            per_worker[req.status.source] = per_worker.get(req.status.source, 0) + 1
            outstanding_results = results_expected - results_got
            if len(result_recvs) < outstanding_results:
                result_recvs.append(comm.irecv(source=ANY_SOURCE, tag=RESULT_TAG))

        if ready_req is not None and dones_sent < dones_needed:
            req = request_recvs.pop(ready_req)
            worker = req.status.source
            if tasks_left > 0:
                batch = min(p.fanout, tasks_left)
                for _ in range(batch):
                    task_type = next_type
                    next_type = (next_type + 1) % p.max_work_tags
                    pending_sends.append(
                        comm.isend(
                            SyntheticBlob(p.task_size, label="task"),
                            dest=worker,
                            tag=task_type,
                        )
                    )
                tasks_left -= batch
                sent_to[worker] += batch
                pending_sends.append(comm.isend(b"", dest=worker, tag=BATCH_MORE_TAG))
                request_recvs.append(comm.irecv(source=ANY_SOURCE, tag=REQUEST_TAG))
            else:
                # DONE carries the worker's final task count: tasks travel
                # on other streams and may arrive after the DONE, so the
                # worker needs the count to know when it may stop draining
                pending_sends.append(
                    comm.isend(sent_to[worker], dest=worker, tag=DONE_TAG)
                )
                dones_sent += 1

    await comm.waitall(pending_sends)
    return FarmResult(
        params=p,
        elapsed_ns=comm.process.kernel.now - start_ns,
        tasks_done=results_got,
        per_worker_tasks=per_worker,
    )


async def _worker(comm, p: FarmParams):
    manager = 0
    outstanding = p.outstanding_requests
    # enough pre-posted receives to absorb every in-flight batch
    posted = [
        comm.irecv(source=manager, tag=ANY_TAG)
        for _ in range(outstanding * (p.fanout + 1))
    ]
    send_reqs = [
        comm.isend(b"", dest=manager, tag=REQUEST_TAG) for _ in range(outstanding)
    ]
    done_count = 0
    tasks_done = 0
    expected_tasks: Optional[int] = None
    while done_count < outstanding or (
        expected_tasks is not None and tasks_done < expected_tasks
    ):
        idx, req = await comm.waitany(posted)
        posted.pop(idx)
        tag = req.status.tag
        if tag == DONE_TAG:
            done_count += 1
            expected_tasks = req.data  # every DONE repeats the final count
            continue
        posted.append(comm.irecv(source=manager, tag=ANY_TAG))
        if tag == BATCH_MORE_TAG:
            send_reqs.append(comm.isend(b"", dest=manager, tag=REQUEST_TAG))
            continue
        # a task of type ``tag``: compute, then return a result
        await comm.compute(p.compute_seconds_per_task)
        tasks_done += 1
        send_reqs.append(
            comm.isend(
                SyntheticBlob(RESULT_SIZE, label="result"),
                dest=manager,
                tag=RESULT_TAG,
            )
        )
    await comm.waitall([s for s in send_reqs if not s.done])
    return tasks_done


def run_farm(
    rpi: str,
    params: Optional[FarmParams] = None,
    n_procs: int = 8,
    loss_rate: float = 0.0,
    seed: int = 0,
    num_streams: int = 10,
    config: Optional[WorldConfig] = None,
    limit_ns: Optional[int] = None,
) -> FarmResult:
    """Run one farm configuration and return the manager's FarmResult."""
    p = params or FarmParams()
    if config is None:
        config = WorldConfig(
            n_procs=n_procs,
            rpi=rpi,
            loss_rate=loss_rate,
            seed=seed,
            num_streams=num_streams,
        )
    result = run_app(make_farm(p), config=config, limit_ns=limit_ns)
    farm_result: FarmResult = result.results[0]
    assert farm_result.tasks_done == p.num_tasks, (
        f"farm lost work: {farm_result.tasks_done}/{p.num_tasks}"
    )
    return farm_result
