"""CLI for the sharded (conservative parallel DES) runner.

One world, ``--shards N`` worker processes::

    python -m repro.bench.pdes --workload halo --n-procs 16 --pods 4 \\
        --shards 4 --msg-bytes 8192 --iters 4 --horizon-s 2 --json out.json

The ``--json`` payload contains only shard-invariant data (config echo,
per-rank results, total events, canonical metrics), so running the same
world with ``--shards 1`` and ``--shards N`` must produce byte-identical
files — that equivalence is gated in CI.  Wall-clock and round counts go
to stdout, where nondeterminism is allowed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from ..core.world import WorldConfig
from ..simkernel import SECOND
from ..simkernel.pdes import run_sharded
from ..workloads.halo import make_halo
from ..workloads.mpbench import make_pingpong

SCHEMA = 1


def build_app(args: argparse.Namespace):
    if args.workload == "halo":
        return make_halo(args.msg_bytes, args.iters)
    if args.workload == "pingpong":
        return make_pingpong(args.msg_bytes, args.iters)
    raise SystemExit(f"unknown workload {args.workload!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.pdes",
        description="run one world across N shard processes (conservative PDES)",
    )
    parser.add_argument("--workload", default="halo", choices=("halo", "pingpong"))
    parser.add_argument("--rpi", default="sctp", choices=("sctp", "tcp"))
    parser.add_argument("--n-procs", type=int, default=8)
    parser.add_argument("--pods", type=int, default=1, help="pod switches (1 = flat)")
    parser.add_argument("--shards", type=int, default=1, help="worker processes")
    parser.add_argument("--msg-bytes", type=int, default=4096)
    parser.add_argument("--iters", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--loss", type=float, default=0.0)
    parser.add_argument(
        "--horizon-s",
        type=float,
        default=5.0,
        help="virtual-time horizon; both legs of a parity pair must match",
    )
    parser.add_argument("--json", help="write the shard-invariant result JSON here")
    parser.add_argument(
        "--shard-timeout-s",
        type=float,
        default=60.0,
        help="declare a shard hung after this long without a reply "
        "(the cohort is reaped and the run degrades to serial)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail hard on a shard crash/hang instead of degrading to serial",
    )
    parser.add_argument(
        "--chaos",
        metavar="OP:SHARD[:ROUND]",
        help="inject a worker fault for self-tests: kill:1 crashes shard 1 "
        "before its first run window; hang:0:2 SIGSTOPs shard 0 at round 2",
    )
    args = parser.parse_args(argv)

    config = WorldConfig(
        n_procs=args.n_procs,
        rpi=args.rpi,
        seed=args.seed,
        loss_rate=args.loss,
        n_pods=args.pods,
    )
    app = build_app(args)
    result = run_sharded(
        app,
        config=config,
        horizon_ns=int(args.horizon_s * SECOND),
        n_shards=args.shards,
        shard_timeout_s=args.shard_timeout_s,
        degrade_to_serial=not args.no_degrade,
        chaos=args.chaos,
    )

    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "workload": args.workload,
        "rpi": args.rpi,
        "n_procs": args.n_procs,
        "pods": args.pods,
        "msg_bytes": args.msg_bytes,
        "iters": args.iters,
        "seed": args.seed,
        "loss": args.loss,
        "horizon_ns": result.horizon_ns,
        "results": result.results,
        "events_processed": result.events_processed,
        "metrics": result.metrics,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    ev_per_s = result.events_processed / result.wall_s if result.wall_s else 0.0
    print(
        f"shards={result.n_shards} rounds={result.rounds} "
        f"events={result.events_processed:,} wall={result.wall_s:.2f}s "
        f"({ev_per_s:,.0f} ev/s)",
        file=sys.stderr,
    )
    if result.degraded:
        # degradation is reported here, never in the JSON payload — a
        # degraded run's result file stays byte-identical to a healthy one
        print(f"DEGRADED to serial: {result.degraded_reason}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
