"""Benchmark harness: one entry point per paper table/figure.

Each ``fig*``/``table*`` function runs the relevant simulations and
returns structured rows; ``format_table`` renders them next to the
paper's published values so every ``pytest benchmarks/`` run prints a
paper-vs-measured comparison (recorded in EXPERIMENTS.md).
"""

from .harness import (
    ExperimentRow,
    chaos_matrix,
    experiment_cells,
    fig8_pingpong_noloss,
    fig9_nas,
    fig10_farm,
    fig11_farm_fanout,
    fig12_hol_blocking,
    format_table,
    interleave_matrix,
    multihoming_failover,
    resolve_sweep_params,
    run_experiment_cell,
    run_sweep_cell,
    scaled,
    sweep_axis_names,
    sweep_experiments,
    sweep_free_names,
    table1_pingpong_loss,
)

__all__ = [
    "ExperimentRow",
    "chaos_matrix",
    "experiment_cells",
    "fig8_pingpong_noloss",
    "fig9_nas",
    "fig10_farm",
    "fig11_farm_fanout",
    "fig12_hol_blocking",
    "format_table",
    "interleave_matrix",
    "multihoming_failover",
    "resolve_sweep_params",
    "run_experiment_cell",
    "run_sweep_cell",
    "scaled",
    "sweep_axis_names",
    "sweep_experiments",
    "sweep_free_names",
    "table1_pingpong_loss",
]
