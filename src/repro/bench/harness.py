"""Experiment drivers for every table and figure in the paper's §4.

Scaling: simulating 10,000 farm tasks or 50-iteration ping-pongs is
possible but slow in pure Python, so by default each experiment runs a
documented scale-down (fewer tasks/iterations — *never* different
protocol parameters).  Set ``REPRO_FULL=1`` for paper-scale runs.
Run-time ratios, crossovers and winners are scale-invariant here because
they are per-message effects; EXPERIMENTS.md records both.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.world import WorldConfig
from ..metrics.registry import _coerce
from ..workloads.farm import FarmParams, run_farm
from ..workloads.interleave_mix import run_interleave_mix
from ..workloads.mpbench import make_pingpong, run_pingpong
from ..workloads.npb import run_npb

LIMIT_NS = 20_000_000_000_000  # hard per-run virtual-time ceiling (watchdog)


def full_scale() -> bool:
    """Whether to run paper-scale parameters (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "") == "1"


def scaled(default: int, full: int) -> int:
    """Pick the scaled-down or paper-scale value of a parameter."""
    return full if full_scale() else default


@dataclass
class ExperimentRow:
    """One row of a paper-vs-measured comparison table."""

    label: str
    measured: Dict[str, Any]
    paper: Dict[str, Any] = field(default_factory=dict)
    note: str = ""

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form (numpy scalars coerced) for ``--metrics-json``."""
        return {
            "label": self.label,
            "measured": {k: _coerce(v) for k, v in self.measured.items()},
            "paper": {k: _coerce(v) for k, v in self.paper.items()},
            "note": self.note,
        }

    @classmethod
    def from_jsonable(cls, doc: Dict[str, Any]) -> "ExperimentRow":
        """Rebuild a row a worker process shipped back as plain JSON."""
        return cls(
            label=doc["label"],
            measured=dict(doc["measured"]),
            paper=dict(doc.get("paper", {})),
            note=doc.get("note", ""),
        )


def format_table(title: str, rows: List[ExperimentRow]) -> str:
    """Render rows for the bench log / EXPERIMENTS.md."""
    lines = [f"== {title} =="]
    for row in rows:
        measured = "  ".join(f"{k}={_fmt(v)}" for k, v in row.measured.items())
        paper = "  ".join(f"{k}={_fmt(v)}" for k, v in row.paper.items())
        line = f"  {row.label:<38} {measured}"
        if paper:
            line += f"   | paper: {paper}"
        if row.note:
            line += f"   ({row.note})"
        lines.append(line)
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:,.3g}" if abs(v) < 100 else f"{v:,.0f}"
    return str(v)


# ---------------------------------------------------------------------------
# Fig. 8 — ping-pong throughput, no loss, normalized SCTP/TCP
# ---------------------------------------------------------------------------
FIG8_SIZES = [1, 1024, 4096, 8192, 16384, 22528, 32768, 65536, 98302, 131069]


def _fig8_cell(
    size: int, seed: int = 1, iterations: Optional[int] = None
) -> List[ExperimentRow]:
    """One fig8 matrix cell: both protocols at one message size."""
    iters = iterations or scaled(16, 50)
    tcp = run_pingpong("tcp", size, iterations=iters, seed=seed, limit_ns=LIMIT_NS)
    sctp = run_pingpong("sctp", size, iterations=iters, seed=seed, limit_ns=LIMIT_NS)
    ratio = sctp.throughput_bytes_per_s / tcp.throughput_bytes_per_s
    return [
        ExperimentRow(
            label=f"pingpong {size}B",
            measured={
                "tcp_MBps": tcp.throughput_bytes_per_s / 1e6,
                "sctp_MBps": sctp.throughput_bytes_per_s / 1e6,
                "sctp/tcp": ratio,
            },
            paper={"shape": "<1 below ~22K, >1 above"},
        )
    ]


def fig8_pingpong_noloss(seed: int = 1, iterations: Optional[int] = None) -> List[ExperimentRow]:
    """TCP wins small, SCTP wins large; paper crossover ~22 KiB."""
    return [
        row
        for size in FIG8_SIZES
        for row in _fig8_cell(size, seed=seed, iterations=iterations)
    ]


# ---------------------------------------------------------------------------
# Table 1 — ping-pong under loss
# ---------------------------------------------------------------------------
TABLE1_PAPER = {
    (30 * 1024, 0.01): (54_779, 1_924),
    (30 * 1024, 0.02): (44_614, 1_030),
    (300 * 1024, 0.01): (5_870, 1_818),
    (300 * 1024, 0.02): (2_825, 885),
}


def _table1_cell(size: int, loss: float, seeds=(1, 2, 3, 4, 5)) -> List[ExperimentRow]:
    """One Table-1 cell: both protocols at one (size, loss), seed-averaged."""
    iters = scaled(50, 100) if size <= 64 * 1024 else scaled(16, 40)
    tcp_bps = sctp_bps = 0.0
    for seed in seeds:
        tcp_bps += run_pingpong(
            "tcp", size, iterations=iters, loss_rate=loss, seed=seed,
            limit_ns=LIMIT_NS,
        ).throughput_bytes_per_s
        sctp_bps += run_pingpong(
            "sctp", size, iterations=iters, loss_rate=loss, seed=seed,
            limit_ns=LIMIT_NS,
        ).throughput_bytes_per_s
    tcp_bps /= len(seeds)
    sctp_bps /= len(seeds)
    p_sctp, p_tcp = TABLE1_PAPER[(size, loss)]
    return [
        ExperimentRow(
            label=f"pingpong {size // 1024}K loss={loss:.0%}",
            measured={
                "sctp_Bps": sctp_bps,
                "tcp_Bps": tcp_bps,
                "sctp/tcp": sctp_bps / max(1e-9, tcp_bps),
            },
            paper={
                "sctp_Bps": p_sctp,
                "tcp_Bps": p_tcp,
                "sctp/tcp": p_sctp / p_tcp,
            },
            note=f"mean of {len(seeds)} seeds",
        )
    ]


def table1_pingpong_loss(seeds=(1, 2, 3, 4, 5)) -> List[ExperimentRow]:
    """SCTP ahead of TCP under loss, both message sizes.

    Individual runs are dominated by whether a tail-drop timeout (with
    backoff) lands in the measured window, so each cell averages several
    seeds.  Our measured factors (~1-2x) are far below the paper's
    (3-43x); EXPERIMENTS.md discusses why faithful SACK recovery on both
    stacks narrows the gap the paper observed."""
    return [
        row
        for size in (30 * 1024, 300 * 1024)
        for loss in (0.01, 0.02)
        for row in _table1_cell(size, loss, seeds=seeds)
    ]


# ---------------------------------------------------------------------------
# Fig. 9 — NAS parallel benchmarks, class B, Mop/s
# ---------------------------------------------------------------------------
FIG9_ORDER = ["LU", "SP", "EP", "CG", "BT", "MG", "IS"]


def _fig9_cell(name: str, cls: str = "B", seed: int = 1) -> List[ExperimentRow]:
    """One fig9 cell: both protocols on one NPB kernel."""
    tcp = run_npb(name, cls, rpi="tcp", seed=seed, limit_ns=LIMIT_NS)
    sctp = run_npb(name, cls, rpi="sctp", seed=seed, limit_ns=LIMIT_NS)
    return [
        ExperimentRow(
            label=f"NPB {name}.{cls}",
            measured={
                "sctp_Mops": sctp.mops,
                "tcp_Mops": tcp.mops,
                "sctp/tcp": sctp.mops / max(1e-9, tcp.mops),
                "verified": sctp.verified and tcp.verified,
            },
            paper={
                "shape": "TCP ahead on MG,BT; comparable elsewhere"
                if name in ("MG", "BT")
                else "comparable"
            },
        )
    ]


def fig9_nas(cls: str = "B", seed: int = 1) -> List[ExperimentRow]:
    """SCTP comparable to TCP overall; TCP ahead on MG and BT."""
    return [
        row for name in FIG9_ORDER for row in _fig9_cell(name, cls=cls, seed=seed)
    ]


# ---------------------------------------------------------------------------
# Figs. 10/11 — Bulk Processor Farm
# ---------------------------------------------------------------------------
FIG10_PAPER = {  # (size_label, loss) -> (sctp_s, tcp_s), fanout=1
    ("short", 0.00): (6.8, 5.9),
    ("short", 0.01): (7.7, 79.9),
    ("short", 0.02): (11.2, 131.5),
    ("long", 0.00): (83.0, 114.0),
    ("long", 0.01): (804.0, 2080.0),
    ("long", 0.02): (1595.0, 4311.0),
}

FIG11_PAPER = {  # fanout=10
    ("short", 0.00): (8.7, 6.2),
    ("short", 0.01): (11.7, 88.1),
    ("short", 0.02): (16.0, 154.7),
    ("long", 0.00): (79.0, 129.0),
    ("long", 0.01): (786.0, 3103.0),
    ("long", 0.02): (1585.0, 6414.0),
}


def _farm_params(size_label: str, fanout: int) -> FarmParams:
    task_size = 30 * 1024 if size_label == "short" else 300 * 1024
    num_tasks = (
        scaled(420, 10_000) if size_label == "short" else scaled(120, 10_000)
    )
    return FarmParams(
        num_tasks=num_tasks,
        task_size=task_size,
        fanout=fanout,
        compute_seconds_per_task=0.004,
    )


def _farm_cell(
    fanout: int, size_label: str, loss: float, seed: int = 1
) -> List[ExperimentRow]:
    """One farm cell: both protocols at one (size, loss) for a fanout."""
    paper = FIG10_PAPER if fanout == 1 else FIG11_PAPER
    params = _farm_params(size_label, fanout)
    sctp = run_farm("sctp", params, loss_rate=loss, seed=seed, limit_ns=LIMIT_NS)
    tcp = run_farm("tcp", params, loss_rate=loss, seed=seed, limit_ns=LIMIT_NS)
    p_sctp, p_tcp = paper[(size_label, loss)]
    return [
        ExperimentRow(
            label=f"farm {size_label} fanout={fanout} loss={loss:.0%}",
            measured={
                "sctp_s": sctp.elapsed_s,
                "tcp_s": tcp.elapsed_s,
                "tcp/sctp": tcp.elapsed_s / max(1e-9, sctp.elapsed_s),
            },
            paper={
                "sctp_s": p_sctp,
                "tcp_s": p_tcp,
                "tcp/sctp": p_tcp / p_sctp,
            },
            note=f"{params.num_tasks} tasks (paper: 10000)",
        )
    ]


def _farm_rows(fanout: int, paper: Dict, seed: int) -> List[ExperimentRow]:
    return [
        row
        for size_label in ("short", "long")
        for loss in (0.00, 0.01, 0.02)
        for row in _farm_cell(fanout, size_label, loss, seed=seed)
    ]


def fig10_farm(seed: int = 1) -> List[ExperimentRow]:
    """Fanout=1: SCTP ~10x faster (short, loss), ~2.6x (long, loss)."""
    return _farm_rows(1, FIG10_PAPER, seed)


def fig11_farm_fanout(seed: int = 1) -> List[ExperimentRow]:
    """Fanout=10: TCP degrades further, especially for long messages."""
    return _farm_rows(10, FIG11_PAPER, seed)


# ---------------------------------------------------------------------------
# Fig. 12 — head-of-line blocking: 10-stream vs 1-stream SCTP
# ---------------------------------------------------------------------------
FIG12_PAPER = {  # (size_label, loss) -> (streams10_s, stream1_s)
    ("short", 0.00): (8.7, 9.3),
    ("short", 0.01): (11.7, 11.0),
    ("short", 0.02): (16.0, 21.6),
    ("long", 0.00): (79.0, 79.0),
    ("long", 0.01): (786.0, 1000.0),
    ("long", 0.02): (1585.0, 1942.0),
}


def _fig12_cell(size_label: str, loss: float, seeds=(1, 2, 3)) -> List[ExperimentRow]:
    """One fig12 cell: 10-stream vs 1-stream SCTP at one (size, loss)."""
    params = _farm_params(size_label, fanout=10)
    multi_s = single_s = 0.0
    use_seeds = seeds if loss > 0 else seeds[:1]
    for seed in use_seeds:
        multi_s += run_farm(
            "sctp", params, loss_rate=loss, seed=seed, num_streams=10,
            limit_ns=LIMIT_NS,
        ).elapsed_s
        single_s += run_farm(
            "sctp", params, loss_rate=loss, seed=seed, num_streams=1,
            limit_ns=LIMIT_NS,
        ).elapsed_s
    multi_s /= len(use_seeds)
    single_s /= len(use_seeds)
    p10, p1 = FIG12_PAPER[(size_label, loss)]
    return [
        ExperimentRow(
            label=f"farm {size_label} fanout=10 loss={loss:.0%}",
            measured={
                "streams10_s": multi_s,
                "stream1_s": single_s,
                "1s/10s": single_s / max(1e-9, multi_s),
            },
            paper={
                "streams10_s": p10,
                "stream1_s": p1,
                "1s/10s": p1 / p10,
            },
            note=f"mean of {len(use_seeds)} seeds",
        )
    ]


def fig12_hol_blocking(seeds=(1, 2, 3)) -> List[ExperimentRow]:
    """The multistreaming ablation: 1 stream re-introduces HOL blocking.

    Run times at demo scale are dominated by a handful of retransmission
    timeouts, so each cell averages several seeds (the paper averaged six
    runs of 10,000 tasks for the same reason — §4.2.1)."""
    return [
        row
        for size_label in ("short", "long")
        for loss in (0.00, 0.01, 0.02)
        for row in _fig12_cell(size_label, loss, seeds=seeds)
    ]


# ---------------------------------------------------------------------------
# §3.5.1 extension — multihoming failover keeps an MPI run alive
# ---------------------------------------------------------------------------
def _chaos_world(rpi: str, seed: int, scenario, fault_start_ns: int):
    """A 2-proc, 2-path world with a DeliveryWatch on the host tap bus."""
    from ..core.world import World
    from ..faults import DeliveryWatch
    from ..simkernel import SECOND
    from ..transport.sctp import SCTPConfig

    # tuned failure detection, as §3.5.1 recommends for MPI deployments
    sctp_config = SCTPConfig(path_max_retrans=1, heartbeat_interval_ns=2 * SECOND)
    config = WorldConfig(
        n_procs=2,
        rpi=rpi,
        seed=seed,
        n_paths=2,
        sctp_config=sctp_config,
        scenario=scenario,
    )
    world = World(config)
    watch = DeliveryWatch(rpi, fault_start_ns=fault_start_ns)
    watch.attach(world.cluster.hosts)
    return world, watch


def _transport_counters(world, rpi: str) -> Dict[str, int]:
    """Recovery-relevant counters summed over every host endpoint."""
    if rpi == "tcp":
        totals = [ep.total_stats() for ep in world.tcp_endpoints]
        return {
            "rto_events": sum(t.rto_events for t in totals),
            "fast_rtx": sum(t.fast_retransmits for t in totals),
            "failovers": 0,
            "integrity_drops": sum(ep.checksum_drops for ep in world.tcp_endpoints),
        }
    totals = [ep.total_stats() for ep in world.sctp_endpoints]
    return {
        "rto_events": sum(t.rto_events for t in totals),
        "fast_rtx": sum(t.fast_retransmits for t in totals),
        "failovers": sum(t.failovers for t in totals),
        "integrity_drops": sum(ep.crc32c_drops for ep in world.sctp_endpoints),
    }


def multihoming_failover(seed: int = 1) -> List[ExperimentRow]:
    """Blackhole the primary path mid-run; SCTP fails over and finishes.

    The outage is a permanent :func:`repro.faults.primary_blackhole`
    scenario (every host's path-0 egress dies 3 ms in); recovery time is
    what a :class:`repro.faults.DeliveryWatch` on the host tap bus saw.
    """
    from ..faults import primary_blackhole
    from ..simkernel import MILLISECOND

    size = 30 * 1024
    iters = scaled(30, 200)
    fault_start = 3 * MILLISECOND
    scenario = primary_blackhole(start_ns=fault_start, duration_ns=0)
    world, watch = _chaos_world("sctp", seed, scenario, fault_start)
    result = world.run(make_pingpong(size, iters), limit_ns=LIMIT_NS)

    counters = _transport_counters(world, "sctp")
    recovery_s = (
        watch.recovery_ns / 1e9 if watch.recovery_ns is not None else float("inf")
    )
    return [
        ExperimentRow(
            label="pingpong w/ primary-path failure",
            measured={
                "completed": result.results[0] is not None,
                "elapsed_s": result.duration_ns / 1e9,
                "recovery_s": recovery_s,
                "failover_retransmits": counters["failovers"],
                "path_failures": sum(
                    ep.total_stats().path_failures for ep in world.sctp_endpoints
                ),
            },
            paper={"shape": "transparent failover (§3.5.1)"},
        )
    ]


# ---------------------------------------------------------------------------
# Chaos matrix — repro.faults scenario library x both stacks
# ---------------------------------------------------------------------------
def _chaos_cell(rpi: str, seed: int = 1) -> List[ExperimentRow]:
    """One chaos-matrix shard: the fault-free baseline plus every
    scenario for one stack.

    The baseline run lives *inside* the shard (its elapsed time
    normalises every scenario row), so shards are fully independent —
    the property the parallel fan-out relies on.
    """
    from ..faults import (
        bernoulli_loss,
        burst_loss,
        corruption,
        dup_and_reorder,
        primary_blackhole,
    )
    from ..simkernel import MILLISECOND, SECOND

    size = 30 * 1024
    iters = scaled(20, 100)
    hole_start = 5 * MILLISECOND
    cells = [
        ("bernoulli 2%", bernoulli_loss(0.02), 0),
        ("burst", burst_loss(p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.9), 0),
        ("blackhole 2s", primary_blackhole(hole_start, 2 * SECOND), hole_start),
        ("corrupt 2%", corruption(0.02), 0),
        ("dup+reorder", dup_and_reorder(), 0),
    ]

    rows = []
    baseline, _ = _chaos_world(rpi, seed, None, 0)
    base = baseline.run(make_pingpong(size, iters), limit_ns=LIMIT_NS)
    base_s = max(1e-9, base.duration_ns / 1e9)
    for label, scenario, fault_start in cells:
        world, watch = _chaos_world(rpi, seed, scenario, fault_start)
        result = world.run(make_pingpong(size, iters), limit_ns=LIMIT_NS)
        counters = _transport_counters(world, rpi)
        elapsed_s = result.duration_ns / 1e9
        recovery_s = (
            watch.recovery_ns / 1e9
            if watch.recovery_ns is not None
            else float("inf")
        )
        rows.append(
            ExperimentRow(
                label=f"{rpi} {label}",
                measured={
                    "elapsed_s": elapsed_s,
                    "slowdown": elapsed_s / base_s,
                    "stall_s": watch.max_gap_ns / 1e9,
                    "recovery_s": recovery_s,
                    **counters,
                },
                note=f"baseline {base_s:.3g}s",
            )
        )
    return rows


def chaos_matrix(seed: int = 1, jobs: int = 1) -> List[ExperimentRow]:
    """Run every canonical fault scenario against both stacks.

    Per cell: run time vs a fault-free baseline of the same seed
    (goodput degradation), the longest data-delivery stall the
    application felt, time-to-recovery after the fault hit, and the
    transport counters that explain *how* the stack coped (RTO backoff
    and SACK fast retransmit, SCTP path failover, integrity drops).

    ``jobs > 1`` shards the per-stack cells across worker processes via
    :mod:`repro.bench.parallel`; the rows are identical to a serial run.
    """
    if jobs > 1:
        if seed != 1:
            raise ValueError("parallel chaos_matrix supports the default seed only")
        from .parallel import run_experiments

        merged = run_experiments(["chaos"], jobs=jobs)
        return [ExperimentRow.from_jsonable(d) for d in merged["chaos"]["rows"]]
    return _chaos_cell("tcp", seed) + _chaos_cell("sctp", seed)


def interleave_matrix() -> List[ExperimentRow]:
    """Small-message latency under concurrent bulk, RFC 8260 on/off.

    Runs the default ``interleave`` cell matrix (SCTP only; the TCP
    baseline and the wfq/prio schedulers are addressable via
    ``repro.sweep`` — see ``benchmarks/sweep_interleave.json``).  The
    serial order matches the cell enumeration, so a ``--jobs`` sharded
    run merges to byte-identical output.
    """
    rows: List[ExperimentRow] = []
    for key in experiment_cells("interleave"):
        rows.extend(run_experiment_cell("interleave", key))
    return rows


# ---------------------------------------------------------------------------
# Sweep-parameterised single-protocol cells (repro.sweep building blocks)
# ---------------------------------------------------------------------------
SCENARIO_NAMES = ("none", "bernoulli1", "bernoulli2", "burst", "corrupt2", "dup_reorder")


def _named_scenario(name: str):
    """Resolve a fault-scenario axis value to a :mod:`repro.faults` scenario."""
    if name == "none":
        return None
    from ..faults import bernoulli_loss, burst_loss, corruption, dup_and_reorder

    factories = {
        "bernoulli1": lambda: bernoulli_loss(0.01),
        "bernoulli2": lambda: bernoulli_loss(0.02),
        "burst": lambda: burst_loss(p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.9),
        "corrupt2": lambda: corruption(0.02),
        "dup_reorder": dup_and_reorder,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r} (choices: {', '.join(SCENARIO_NAMES)})"
        ) from None


def _interleave_flag(value: Any) -> str:
    """Coerce an interleaving axis value to its canonical "on"/"off"."""
    if isinstance(value, bool):
        return "on" if value else "off"
    text = str(value).lower()
    if text not in ("on", "off"):
        raise ValueError(f"interleaving must be on/off, got {value!r}")
    return text


def _pingpong_cell(
    protocol: str,
    size: int,
    loss: float = 0.0,
    seed: int = 1,
    iterations: Optional[int] = None,
    scenario: str = "none",
    interleaving: str = "off",
    scheduler: str = "fcfs",
) -> List[ExperimentRow]:
    """One single-protocol ping-pong point (the sweepable fig8/table1 atom)."""
    iters = iterations or scaled(16, 50)
    config = WorldConfig(
        n_procs=2,
        rpi=protocol,
        loss_rate=loss,
        seed=seed,
        scenario=_named_scenario(scenario),
        interleaving=_interleave_flag(interleaving) == "on",
        scheduler=scheduler,
    )
    result = run_pingpong(
        protocol, size, iterations=iters, config=config, limit_ns=LIMIT_NS
    )
    label = f"pingpong {protocol} {size}B loss={loss:g}"
    if scenario != "none":
        label += f" {scenario}"
    if _interleave_flag(interleaving) == "on":
        label += " idata"
    if scheduler != "fcfs":
        label += f" sched={scheduler}"
    return [
        ExperimentRow(
            label=label,
            measured={
                "MBps": result.throughput_bytes_per_s / 1e6,
                "rtt_ms": result.round_trip_s * 1e3,
            },
            note=f"{iters} iters seed={seed}",
        )
    ]


def _farm_sweep_cell(
    protocol: str,
    size_label: str,
    loss: float = 0.0,
    fanout: int = 1,
    seed: int = 1,
    num_streams: int = 10,
    num_tasks: Optional[int] = None,
    scenario: str = "none",
    interleaving: str = "off",
    scheduler: str = "fcfs",
) -> List[ExperimentRow]:
    """One single-protocol farm point (the sweepable fig10/11 atom)."""
    params = _farm_params(size_label, fanout)
    if num_tasks is not None:
        params = replace(params, num_tasks=num_tasks)
    config = WorldConfig(
        n_procs=8,
        rpi=protocol,
        loss_rate=loss,
        seed=seed,
        num_streams=num_streams,
        scenario=_named_scenario(scenario),
        interleaving=_interleave_flag(interleaving) == "on",
        scheduler=scheduler,
    )
    result = run_farm(protocol, params, config=config, limit_ns=LIMIT_NS)
    label = f"farm {protocol} {size_label} fanout={fanout} loss={loss:g}"
    if scenario != "none":
        label += f" {scenario}"
    if _interleave_flag(interleaving) == "on":
        label += " idata"
    if scheduler != "fcfs":
        label += f" sched={scheduler}"
    return [
        ExperimentRow(
            label=label,
            measured={
                "elapsed_s": result.elapsed_s,
                "tasks_done": result.tasks_done,
            },
            note=f"{params.num_tasks} tasks seed={seed}",
        )
    ]


def _interleave_cell(
    protocol: str,
    interleaving: str,
    scheduler: str,
    loss: float = 0.0,
    seed: int = 1,
    rounds: Optional[int] = None,
    bulk_kib: int = 128,
    small_bytes: int = 1024,
    bulks_per_round: int = 1,
) -> List[ExperimentRow]:
    """One mixed small/large traffic point (the RFC 8260 experiment atom).

    A latency-critical small message is sent behind concurrent bulk
    transfers on the same association but a different stream; the
    measured quantity is its GO-to-arrival latency.  ``interleaving=on``
    with a non-FCFS scheduler is the configuration under test; the same
    cell with ``off``/``fcfs`` (and the TCP run) are the baselines.
    """
    flag = _interleave_flag(interleaving)
    n_rounds = rounds or scaled(6, 24)
    result = run_interleave_mix(
        protocol,
        bulk_size=bulk_kib * 1024,
        small_size=small_bytes,
        rounds=n_rounds,
        bulks_per_round=bulks_per_round,
        interleaving=flag == "on",
        scheduler=scheduler,
        loss_rate=loss,
        seed=seed,
        limit_ns=LIMIT_NS,
    )
    label = f"mix {protocol} idata={flag} sched={scheduler} loss={loss:g}"
    return [
        ExperimentRow(
            label=label,
            measured={
                "small_us": result.small_latency_mean_ns / 1e3,
                "small_max_us": result.small_latency_max_ns / 1e3,
                "bulk_MBps": result.bulk_throughput_mbps,
            },
            note=(
                f"{n_rounds} rounds x{bulks_per_round} {bulk_kib}KiB bulk "
                f"seed={seed}"
            ),
        )
    ]


# ---------------------------------------------------------------------------
# Cell decomposition — the unit of parallel fan-out and of repro.sweep
# ---------------------------------------------------------------------------
# Every experiment is a matrix of independent deterministic cells (the
# property the paper's Dummynet testbed had: each (seed, scenario) run is
# isolated).  The registry below makes that matrix *structured*: each
# experiment declares named axes (with a default enumeration and optional
# closed choice sets) plus overridable free parameters, and a runner
# taking one keyword argument per axis/free name.
#
# Two addressing schemes derive from it:
#
# * legacy key strings (``experiment_cells`` / ``run_experiment_cell``):
#   the colon-joined default axis product, unchanged from before this
#   registry existed — ``repro.bench.parallel`` shards on these, and a
#   sharded run merged in enumeration order reproduces the serial output
#   byte for byte;
# * parameter mappings (``resolve_sweep_params`` / ``run_sweep_cell``):
#   ``repro.sweep`` addresses any cell — including off-enumeration points
#   like ``loss=0.05`` or a fault-scenario axis — as a validated dict,
#   which is also what its content digests are computed over.


@dataclass(frozen=True)
class Axis:
    """One named dimension of an experiment's cell matrix."""

    name: str
    values: Tuple[Any, ...]  # default enumeration (legacy key product)
    coerce: Callable[[Any], Any]
    choices: Optional[Tuple[Any, ...]] = None  # legal set; None = open axis


@dataclass(frozen=True)
class ExperimentMatrix:
    """A sweep-addressable experiment: axes, free params, and a runner."""

    name: str
    axes: Tuple[Axis, ...]
    run: Callable[..., List[ExperimentRow]]
    free: Tuple[Tuple[str, Any], ...] = ()


MATRICES: Dict[str, ExperimentMatrix] = {
    "fig8": ExperimentMatrix(
        "fig8",
        (Axis("size", tuple(FIG8_SIZES), int),),
        lambda size, seed=1, iterations=None: _fig8_cell(
            size, seed=seed, iterations=iterations
        ),
        (("seed", 1), ("iterations", None)),
    ),
    "table1": ExperimentMatrix(
        "table1",
        (
            Axis("size", (30 * 1024, 300 * 1024), int),
            Axis("loss", (0.01, 0.02), float),
        ),
        lambda size, loss, seeds=(1, 2, 3, 4, 5): _table1_cell(size, loss, seeds=seeds),
        (("seeds", (1, 2, 3, 4, 5)),),
    ),
    "fig9": ExperimentMatrix(
        "fig9",
        (Axis("kernel", tuple(FIG9_ORDER), str, choices=tuple(FIG9_ORDER)),),
        lambda kernel, cls="B", seed=1: _fig9_cell(kernel, cls=cls, seed=seed),
        (("cls", "B"), ("seed", 1)),
    ),
    "fig10": ExperimentMatrix(
        "fig10",
        (
            Axis("size_label", ("short", "long"), str, choices=("short", "long")),
            Axis("loss", (0.0, 0.01, 0.02), float),
        ),
        lambda size_label, loss, seed=1: _farm_cell(1, size_label, loss, seed=seed),
        (("seed", 1),),
    ),
    "fig11": ExperimentMatrix(
        "fig11",
        (
            Axis("size_label", ("short", "long"), str, choices=("short", "long")),
            Axis("loss", (0.0, 0.01, 0.02), float),
        ),
        lambda size_label, loss, seed=1: _farm_cell(10, size_label, loss, seed=seed),
        (("seed", 1),),
    ),
    "fig12": ExperimentMatrix(
        "fig12",
        (
            Axis("size_label", ("short", "long"), str, choices=("short", "long")),
            Axis("loss", (0.0, 0.01, 0.02), float),
        ),
        lambda size_label, loss, seeds=(1, 2, 3): _fig12_cell(
            size_label, loss, seeds=seeds
        ),
        (("seeds", (1, 2, 3)),),
    ),
    "failover": ExperimentMatrix(
        "failover",
        (Axis("variant", ("default",), str, choices=("default",)),),
        lambda variant, seed=1: multihoming_failover(seed=seed),
        (("seed", 1),),
    ),
    "chaos": ExperimentMatrix(
        "chaos",
        (Axis("rpi", ("tcp", "sctp"), str, choices=("tcp", "sctp")),),
        lambda rpi, seed=1: _chaos_cell(rpi, seed=seed),
        (("seed", 1),),
    ),
    "pingpong": ExperimentMatrix(
        "pingpong",
        (
            Axis("protocol", ("tcp", "sctp"), str, choices=("tcp", "sctp")),
            Axis("size", (1024, 30 * 1024), int),
            Axis("loss", (0.0,), float),
        ),
        _pingpong_cell,
        (
            ("seed", 1),
            ("iterations", None),
            ("scenario", "none"),
            ("interleaving", "off"),
            ("scheduler", "fcfs"),
        ),
    ),
    "interleave": ExperimentMatrix(
        "interleave",
        (
            Axis("protocol", ("sctp",), str, choices=("tcp", "sctp")),
            Axis("interleaving", ("off", "on"), _interleave_flag,
                 choices=("off", "on")),
            Axis("scheduler", ("fcfs", "rr"), str,
                 choices=("fcfs", "rr", "wfq", "prio")),
        ),
        _interleave_cell,
        (
            ("loss", 0.0),
            ("seed", 1),
            ("rounds", None),
            ("bulk_kib", 128),
            ("small_bytes", 1024),
            ("bulks_per_round", 1),
        ),
    ),
    "farm": ExperimentMatrix(
        "farm",
        (
            Axis("protocol", ("tcp", "sctp"), str, choices=("tcp", "sctp")),
            Axis("size_label", ("short",), str, choices=("short", "long")),
            Axis("loss", (0.0, 0.01), float),
        ),
        _farm_sweep_cell,
        (
            ("fanout", 1),
            ("seed", 1),
            ("num_streams", 10),
            ("num_tasks", None),
            ("scenario", "none"),
            ("interleaving", "off"),
            ("scheduler", "fcfs"),
        ),
    ),
}


def _matrix(name: str) -> ExperimentMatrix:
    try:
        return MATRICES[name]
    except KeyError:
        raise KeyError(f"unknown experiment: {name!r}") from None


def sweep_experiments() -> List[str]:
    """Every sweep-addressable experiment name, in registry order."""
    return list(MATRICES)


def sweep_axis_names(name: str) -> List[str]:
    """Ordered axis names of one experiment (id/key canonical order)."""
    return [axis.name for axis in _matrix(name).axes]


def sweep_free_names(name: str) -> List[str]:
    """Overridable free-parameter names of one experiment."""
    return [key for key, _default in _matrix(name).free]


def resolve_sweep_params(name: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and coerce one sweep cell's parameters.

    Returns the *resolved* mapping — every axis coerced and checked
    against its choice set, every free parameter filled with its default
    when absent (JSON lists become tuples) — in axis order then free
    order, so two equivalent specs resolve to the same digest input.
    Raises ``KeyError`` for an unknown experiment and ``ValueError`` for
    unknown/illegal parameters.
    """
    matrix = _matrix(name)
    axes = {axis.name: axis for axis in matrix.axes}
    free = dict(matrix.free)
    unknown = sorted(k for k in params if k not in axes and k not in free)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for experiment {name!r}: {', '.join(unknown)} "
            f"(axes: {', '.join(axes)}; free: {', '.join(free)})"
        )
    resolved: Dict[str, Any] = {}
    for axis in matrix.axes:
        if axis.name not in params:
            raise ValueError(f"experiment {name!r} cell is missing axis {axis.name!r}")
        try:
            value = axis.coerce(params[axis.name])
        except (TypeError, ValueError) as err:
            raise ValueError(
                f"bad value for {name!r} axis {axis.name!r}: {params[axis.name]!r} ({err})"
            ) from None
        if axis.choices is not None and value not in axis.choices:
            raise ValueError(
                f"illegal value for {name!r} axis {axis.name!r}: {value!r} "
                f"(choices: {', '.join(str(c) for c in axis.choices)})"
            )
        resolved[axis.name] = value
    for key, default in matrix.free:
        value = params.get(key, default)
        if isinstance(value, list):
            value = tuple(value)
        resolved[key] = value
    return resolved


def run_sweep_cell(name: str, params: Mapping[str, Any]) -> List[ExperimentRow]:
    """Run one sweep-addressed cell from a (validated) parameter mapping."""
    resolved = resolve_sweep_params(name, params)
    return _matrix(name).run(**resolved)


def experiment_cells(name: str) -> List[str]:
    """Stable, ordered cell keys of one experiment's default matrix."""
    matrix = _matrix(name)
    return [
        ":".join(str(value) for value in combo)
        for combo in itertools.product(*(axis.values for axis in matrix.axes))
    ]


def run_experiment_cell(name: str, key: str) -> List[ExperimentRow]:
    """Run one default-matrix cell (at the scale/seeds the CLI uses)."""
    matrix = _matrix(name)
    if key not in experiment_cells(name):
        raise KeyError(f"unknown cell {key!r} for experiment {name!r}")
    parts = key.split(":")
    params = {
        axis.name: axis.coerce(part) for axis, part in zip(matrix.axes, parts)
    }
    return matrix.run(**params)
