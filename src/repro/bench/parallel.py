"""Parallel bench fan-out: shard the experiment matrix across processes.

Every experiment in :mod:`repro.bench.harness` decomposes into
independent deterministic cells (``experiment_cells`` /
``run_experiment_cell``) — the simulated property the paper's Dummynet
testbed had physically: each (seed, scenario) run is isolated, so runs
can execute anywhere in any order.  This module exploits that with
supervised child processes (:mod:`repro.supervise`):

* each worker process runs one cell to completion, under its own
  :class:`~repro.metrics.MetricsCollector` when metrics are requested;
* the parent merges per-cell rows and metrics snapshots **in cell
  enumeration order** (``supervised_map`` preserves input order), never
  in completion order;
* virtual-time results and metrics snapshots contain no wall-clock
  values, so the merged document is byte-identical to the serial
  runner's — CI diffs the two to gate ``--jobs`` determinism;
* a worker that crashes outright (``os._exit``, a signal) no longer
  hangs or poisons the whole fan-out: the supervisor reports *which*
  cell died and with what exit code, and callers that opt into a retry
  policy (``repro.sweep run --supervise``) get bounded deterministic
  retries plus quarantine instead of a lost run.

Workers inherit the parent's environment (``REPRO_FULL`` scale
switching works unchanged).  The ``fork`` start method is preferred
(cheap, no re-import); ``spawn`` platforms work too since cells are
addressed by plain ``(experiment, key)`` strings — no callables ever
cross the process boundary.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics import MetricsCollector
from ..supervise import SupervisePolicy, supervised_map
from ..supervise.executor import SuperviseError
from . import harness

CellResult = Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]

# pool_map's default stance: no retries, no deadline — identical
# semantics to the old bare Pool.map, plus crash attribution
_STRICT = SupervisePolicy(max_attempts=1)


class CellError(RuntimeError):
    """A bench/sweep cell failed; carries the cell identity and params."""


def _run_cell(item: Tuple[str, str, bool]) -> CellResult:
    """Worker body: run one (experiment, key) cell, return plain data."""
    name, key, with_metrics = item
    try:
        if with_metrics:
            with MetricsCollector() as collector:
                rows = harness.run_experiment_cell(name, key)
            runs = collector.runs
        else:
            rows = harness.run_experiment_cell(name, key)
            runs = []
    except Exception as exc:
        # keep the failing cell's identity in the parent traceback
        # instead of a bare multiprocessing stack
        raise CellError(
            f"bench cell {name}:{key} failed: {exc!r}"
        ) from exc
    return [row.to_jsonable() for row in rows], runs


def pool_map(
    fn: Callable,
    items: Sequence,
    jobs: int,
    task_ids: Optional[Sequence[str]] = None,
) -> List:
    """Order-preserving supervised process map under a concurrency cap.

    The shared fan-out primitive: ``run_experiments`` shards legacy
    experiment cells with it and :mod:`repro.sweep` shards dirty sweep
    cells with it.  ``jobs <= 1`` runs in-process; results always come
    back in *input* order (never completion order), which is what makes
    every merged document byte-identical to its serial counterpart.
    ``fn`` must be a module-level callable and ``items`` plain data so
    spawn-based platforms can address the work.

    Failures are strict here (no retry — the deterministic simulation
    would fail identically): the first failing task raises a
    :class:`SuperviseError` naming the task and carrying the child's
    traceback or exit code.  Callers that want retry/quarantine call
    :func:`repro.supervise.supervised_map` with their own policy.
    """
    if jobs <= 1 or not items:
        return [fn(item) for item in items]
    outcome = supervised_map(
        fn, items, jobs=jobs, policy=_STRICT, task_ids=task_ids
    )
    if outcome.quarantined:
        first = next(
            rec for rec in outcome.manifest if rec["outcome"] == "quarantined"
        )
        detail = first["attempts"][-1]["detail"]
        raise SuperviseError(
            f"worker for task {first['task']} failed "
            f"({len(outcome.quarantined)} of {len(items)} tasks lost): {detail}"
        )
    return outcome.results


def run_experiments(
    names: Sequence[str],
    jobs: int = 1,
    with_metrics: bool = False,
) -> Dict[str, Dict[str, List[Dict[str, Any]]]]:
    """Run experiments cell-sharded over ``jobs`` worker processes.

    Returns ``{experiment: {"rows": [...], "runs": [...]}}`` with rows
    and metrics snapshots already in plain-JSON form, merged in
    deterministic enumeration order.  ``jobs <= 1`` runs the same cell
    decomposition in-process (useful for tests and as the degenerate
    case of ``--jobs 1``).
    """
    items = [
        (name, key, with_metrics)
        for name in names
        for key in harness.experiment_cells(name)
    ]
    outputs = pool_map(
        _run_cell, items, jobs, task_ids=[f"{name}:{key}" for name, key, _ in items]
    )
    merged: Dict[str, Dict[str, List[Dict[str, Any]]]] = {
        name: {"rows": [], "runs": []} for name in names
    }
    for (name, _key, _), (rows, runs) in zip(items, outputs, strict=True):
        merged[name]["rows"].extend(rows)
        merged[name]["runs"].extend(runs)
    return merged
