"""Parallel bench fan-out: shard the experiment matrix across processes.

Every experiment in :mod:`repro.bench.harness` decomposes into
independent deterministic cells (``experiment_cells`` /
``run_experiment_cell``) — the simulated property the paper's Dummynet
testbed had physically: each (seed, scenario) run is isolated, so runs
can execute anywhere in any order.  This module exploits that with
``multiprocessing``:

* each worker process runs one cell to completion, under its own
  :class:`~repro.metrics.MetricsCollector` when metrics are requested;
* the parent merges per-cell rows and metrics snapshots **in cell
  enumeration order** (``Pool.map`` preserves input order), never in
  completion order;
* virtual-time results and metrics snapshots contain no wall-clock
  values, so the merged document is byte-identical to the serial
  runner's — CI diffs the two to gate ``--jobs`` determinism.

Workers inherit the parent's environment (``REPRO_FULL`` scale
switching works unchanged).  The ``fork`` start method is preferred
(cheap, no re-import); ``spawn`` platforms work too since cells are
addressed by plain ``(experiment, key)`` strings — no callables ever
cross the process boundary.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..metrics import MetricsCollector
from . import harness

CellResult = Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]


def _run_cell(item: Tuple[str, str, bool]) -> CellResult:
    """Worker body: run one (experiment, key) cell, return plain data."""
    name, key, with_metrics = item
    if with_metrics:
        with MetricsCollector() as collector:
            rows = harness.run_experiment_cell(name, key)
        runs = collector.runs
    else:
        rows = harness.run_experiment_cell(name, key)
        runs = []
    return [row.to_jsonable() for row in rows], runs


def _pool_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def pool_map(fn: Callable, items: Sequence, jobs: int) -> List:
    """Order-preserving process-pool map under a concurrency cap.

    The shared fan-out primitive: ``run_experiments`` shards legacy
    experiment cells with it and :mod:`repro.sweep` shards dirty sweep
    cells with it.  ``jobs <= 1`` runs in-process; results always come
    back in *input* order (never completion order), which is what makes
    every merged document byte-identical to its serial counterpart.
    ``fn`` must be a module-level callable and ``items`` plain data so
    spawn-based platforms can address the work.
    """
    if jobs <= 1 or not items:
        return [fn(item) for item in items]
    with _pool_context().Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(fn, items)


def run_experiments(
    names: Sequence[str],
    jobs: int = 1,
    with_metrics: bool = False,
) -> Dict[str, Dict[str, List[Dict[str, Any]]]]:
    """Run experiments cell-sharded over ``jobs`` worker processes.

    Returns ``{experiment: {"rows": [...], "runs": [...]}}`` with rows
    and metrics snapshots already in plain-JSON form, merged in
    deterministic enumeration order.  ``jobs <= 1`` runs the same cell
    decomposition in-process (useful for tests and as the degenerate
    case of ``--jobs 1``).
    """
    items = [
        (name, key, with_metrics)
        for name in names
        for key in harness.experiment_cells(name)
    ]
    outputs = pool_map(_run_cell, items, jobs)
    merged: Dict[str, Dict[str, List[Dict[str, Any]]]] = {
        name: {"rows": [], "runs": []} for name in names
    }
    for (name, _key, _), (rows, runs) in zip(items, outputs, strict=True):
        merged[name]["rows"].extend(rows)
        merged[name]["runs"].extend(runs)
    return merged
