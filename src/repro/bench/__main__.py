"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Runs one (or all) of the paper's experiments and prints the
paper-vs-measured table, without pytest.  Useful for quick interactive
exploration and for scripting sweeps.

    python -m repro.bench fig8
    python -m repro.bench table1 fig10
    python -m repro.bench all
    REPRO_FULL=1 python -m repro.bench fig9
"""

from __future__ import annotations

import sys
import time

from . import (
    fig8_pingpong_noloss,
    fig9_nas,
    fig10_farm,
    fig11_farm_fanout,
    fig12_hol_blocking,
    format_table,
    multihoming_failover,
    table1_pingpong_loss,
)

EXPERIMENTS = {
    "fig8": ("Fig. 8: ping-pong throughput (no loss)", fig8_pingpong_noloss),
    "table1": ("Table 1: ping-pong throughput under loss", table1_pingpong_loss),
    "fig9": ("Fig. 9: NPB class B Mop/s (8 procs)", fig9_nas),
    "fig10": ("Fig. 10: farm run times, fanout=1", fig10_farm),
    "fig11": ("Fig. 11: farm run times, fanout=10", fig11_farm_fanout),
    "fig12": ("Fig. 12: 10 streams vs 1 stream (SCTP)", fig12_hol_blocking),
    "failover": ("Multihoming: primary-path failure mid-run", multihoming_failover),
}


def main(argv: list[str]) -> int:
    names = argv or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}, all")
        return 2
    for name in names:
        title, fn = EXPERIMENTS[name]
        started = time.time()
        rows = fn()
        print(format_table(title, rows))
        print(f"  [{name}: {time.time() - started:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
