"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Runs one (or all) of the paper's experiments and prints the
paper-vs-measured table, without pytest.  Useful for quick interactive
exploration and for scripting sweeps.

    python -m repro.bench fig8
    python -m repro.bench table1 fig10
    python -m repro.bench all
    python -m repro.bench fig8 --metrics-json out.json
    python -m repro.bench chaos --jobs 4 --metrics-json out.json
    python -m repro.bench fig8 --profile
    REPRO_FULL=1 python -m repro.bench fig9

``--metrics-json PATH`` additionally enables the metrics registry for
every simulated world and writes one deterministic JSON document: per
experiment, the result rows plus one full metrics snapshot per world
run.  The document contains no wall-clock time and is byte-identical
across same-seed invocations (CI's determinism gate relies on this).

``--jobs N`` shards every experiment's cell matrix across N worker
processes (each (protocol, loss, size, fanout) cell is an isolated
deterministic simulation) and merges results in enumeration order, so
the output — including ``--metrics-json`` — is byte-identical to a
serial run (CI's parallel determinism gate relies on *this*).

``--profile`` wraps the run in :mod:`cProfile` and prints the top 20
functions by cumulative time, for hot-path hunts without ad-hoc
scripts.  With ``--jobs > 1`` only the parent process is profiled,
which is rarely what you want — profile serial runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import (
    ExperimentRow,
    chaos_matrix,
    fig8_pingpong_noloss,
    fig9_nas,
    fig10_farm,
    fig11_farm_fanout,
    fig12_hol_blocking,
    format_table,
    interleave_matrix,
    multihoming_failover,
    table1_pingpong_loss,
)
from ..metrics import MetricsCollector

EXPERIMENTS = {
    "fig8": ("Fig. 8: ping-pong throughput (no loss)", fig8_pingpong_noloss),
    "table1": ("Table 1: ping-pong throughput under loss", table1_pingpong_loss),
    "fig9": ("Fig. 9: NPB class B Mop/s (8 procs)", fig9_nas),
    "fig10": ("Fig. 10: farm run times, fanout=1", fig10_farm),
    "fig11": ("Fig. 11: farm run times, fanout=10", fig11_farm_fanout),
    "fig12": ("Fig. 12: 10 streams vs 1 stream (SCTP)", fig12_hol_blocking),
    "failover": ("Multihoming: primary-path failure mid-run", multihoming_failover),
    "interleave": ("RFC 8260: small-message latency under bulk", interleave_matrix),
    "chaos": ("Chaos matrix: fault scenarios x both stacks", chaos_matrix),
}

METRICS_SCHEMA = 1


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the paper's experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="collect metrics snapshots and write a deterministic JSON "
        "document (rows + one snapshot per simulated world) to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard experiment cells across N worker processes; output "
        "(tables and metrics JSON) is byte-identical to a serial run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative functions",
    )
    return parser.parse_args(argv)


def _run_serial(names: list[str], with_metrics: bool, doc: dict) -> None:
    """The original in-process path (one collector per experiment)."""
    for name in names:
        title, fn = EXPERIMENTS[name]
        started = time.time()  # repro: allow[AN101] — wall display only
        if with_metrics:
            with MetricsCollector() as collector:
                rows = fn()
            doc["experiments"][name] = {
                "title": title,
                "rows": [row.to_jsonable() for row in rows],
                "runs": collector.runs,
            }
        else:
            rows = fn()
        print(format_table(title, rows))
        # wall time goes to stdout only: the JSON must be run-invariant
        elapsed = time.time() - started  # repro: allow[AN101] — wall display only
        print(f"  [{name}: {elapsed:.1f}s wall]")
        print()


def _run_parallel(names: list[str], jobs: int, with_metrics: bool, doc: dict) -> None:
    """Cell-sharded fan-out; merged output matches the serial path."""
    from .parallel import run_experiments

    started = time.time()  # repro: allow[AN101] — wall display only
    merged = run_experiments(names, jobs=jobs, with_metrics=with_metrics)
    elapsed = time.time() - started  # repro: allow[AN101] — wall display only
    for name in names:
        title, _ = EXPERIMENTS[name]
        rows = [ExperimentRow.from_jsonable(d) for d in merged[name]["rows"]]
        if with_metrics:
            doc["experiments"][name] = {
                "title": title,
                "rows": merged[name]["rows"],
                "runs": merged[name]["runs"],
            }
        print(format_table(title, rows))
        print()
    print(f"  [{', '.join(names)}: {elapsed:.1f}s wall across {jobs} jobs]")


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 2
    names = args.experiments or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}, all")
        return 2
    if args.metrics_json is not None:
        # fail before running minutes of experiments, not after
        try:
            with open(args.metrics_json, "w", encoding="utf-8"):
                pass
        except OSError as err:
            print(f"cannot write metrics JSON to {args.metrics_json}: {err}")
            return 2
    profiler = None
    if args.profile:
        import cProfile

        if args.jobs > 1:
            print("note: --profile with --jobs > 1 profiles only the parent process")
        profiler = cProfile.Profile()
        profiler.enable()
    doc = {"schema": METRICS_SCHEMA, "experiments": {}}
    with_metrics = args.metrics_json is not None
    try:
        if args.jobs > 1:
            _run_parallel(names, args.jobs, with_metrics, doc)
        else:
            _run_serial(names, with_metrics, doc)
    finally:
        if profiler is not None:
            import pstats

            profiler.disable()
            print()
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"metrics JSON written to {args.metrics_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
