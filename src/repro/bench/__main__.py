"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Runs one (or all) of the paper's experiments and prints the
paper-vs-measured table, without pytest.  Useful for quick interactive
exploration and for scripting sweeps.

    python -m repro.bench fig8
    python -m repro.bench table1 fig10
    python -m repro.bench all
    python -m repro.bench fig8 --metrics-json out.json
    REPRO_FULL=1 python -m repro.bench fig9

``--metrics-json PATH`` additionally enables the metrics registry for
every simulated world and writes one deterministic JSON document: per
experiment, the result rows plus one full metrics snapshot per world
run.  The document contains no wall-clock time and is byte-identical
across same-seed invocations (CI's determinism gate relies on this).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import (
    chaos_matrix,
    fig8_pingpong_noloss,
    fig9_nas,
    fig10_farm,
    fig11_farm_fanout,
    fig12_hol_blocking,
    format_table,
    multihoming_failover,
    table1_pingpong_loss,
)
from ..metrics import MetricsCollector

EXPERIMENTS = {
    "fig8": ("Fig. 8: ping-pong throughput (no loss)", fig8_pingpong_noloss),
    "table1": ("Table 1: ping-pong throughput under loss", table1_pingpong_loss),
    "fig9": ("Fig. 9: NPB class B Mop/s (8 procs)", fig9_nas),
    "fig10": ("Fig. 10: farm run times, fanout=1", fig10_farm),
    "fig11": ("Fig. 11: farm run times, fanout=10", fig11_farm_fanout),
    "fig12": ("Fig. 12: 10 streams vs 1 stream (SCTP)", fig12_hol_blocking),
    "failover": ("Multihoming: primary-path failure mid-run", multihoming_failover),
    "chaos": ("Chaos matrix: fault scenarios x both stacks", chaos_matrix),
}

METRICS_SCHEMA = 1


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the paper's experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="collect metrics snapshots and write a deterministic JSON "
        "document (rows + one snapshot per simulated world) to PATH",
    )
    return parser.parse_args(argv)


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    names = args.experiments or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}, all")
        return 2
    if args.metrics_json is not None:
        # fail before running minutes of experiments, not after
        try:
            with open(args.metrics_json, "w", encoding="utf-8"):
                pass
        except OSError as err:
            print(f"cannot write metrics JSON to {args.metrics_json}: {err}")
            return 2
    doc = {"schema": METRICS_SCHEMA, "experiments": {}}
    for name in names:
        title, fn = EXPERIMENTS[name]
        started = time.time()
        if args.metrics_json is not None:
            with MetricsCollector() as collector:
                rows = fn()
            doc["experiments"][name] = {
                "title": title,
                "rows": [row.to_jsonable() for row in rows],
                "runs": collector.runs,
            }
        else:
            rows = fn()
        print(format_table(title, rows))
        # wall time goes to stdout only: the JSON must be run-invariant
        print(f"  [{name}: {time.time() - started:.1f}s wall]")
        print()
    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"metrics JSON written to {args.metrics_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
