"""Conservative parallel DES: one world, sharded across processes.

``bench.parallel`` fans the *cell matrix* out over cores; this module
parallelises a single large world.  The design is classic conservative
(CMB-style) windowed synchronisation:

* every shard builds an **identical full replica** of the world (same
  seed, same construction order, so every RNG stream, vtag, and cookie
  secret matches), but only *spawns* the MPI ranks it owns;
* links whose transmitter and receiver live on different shards are
  **cut**: their transmission completions are diverted into an outbox
  instead of scheduling local propagation (:attr:`Link.divert`);
* the minimum propagation delay over the cut links is the **lookahead**
  ``L``: an event executed at time ``t`` can only cause a cross-shard
  delivery at ``t + L`` or later, so all shards may safely run the
  window ``[.., M + L - 1]`` where ``M`` is the global minimum
  next-event time;
* between windows a coordinator exchanges outboxes and each shard posts
  the inbound packets at their propagation-arrival times, sorted by
  ``(deliver_time, link_name)`` so the merge order is deterministic;
* both the serial (``n_shards=1``) and sharded paths run to the same
  fixed virtual **horizon**, so they fire the exact same global event
  set and the merged metrics are bit-identical (schedule-sensitive
  keys — heap depths, queue-occupancy histograms — are filtered the
  same way the perturbation gate filters them, since per-shard heap
  shapes legitimately differ).

Shard assignment is contiguous by rank (``rank * n_shards // n_procs``)
and each switch lives with the shard of its pod's first host, so a pod
world with ``n_shards == n_pods`` cuts only the inter-pod trunk links.

Wall-clock speedup requires real cores; correctness and bit-identity do
not, which is what the parity tests and CI gate pin.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analyze.perturb import filter_schedule_sensitive

# (deliver_time_ns, link_name, packet): one cross-shard packet in flight
OutboxEntry = Tuple[int, str, Any]

# how often the coordinator's supervised recv re-checks worker health
_POLL_TICK_S = 0.05

# exit code a chaos "kill" strike uses (matches repro.supervise)
CHAOS_EXIT_CODE = 70


class HorizonError(RuntimeError):
    """The virtual-time horizon elapsed before every rank finished."""


class ShardExchangeError(RuntimeError):
    """A shard worker reported an application exception mid-run."""


class ShardFailure(ShardExchangeError):
    """Infrastructure failure: a shard worker crashed, hung, or lost
    its pipe.

    Distinct from a structured ``("error", traceback)`` message — that
    is a deterministic application error which re-raises as plain
    :class:`ShardExchangeError` and would fail identically on a serial
    rerun.  A :class:`ShardFailure` means the *process*, not the
    simulation, is broken, so the coordinator reaps the whole cohort
    and (by default) degrades gracefully to the serial leg.
    """


@dataclass(frozen=True)
class ShardPlan:
    """Static partition of one world's ranks/components onto shards."""

    n_procs: int
    n_pods: int
    n_shards: int

    def __post_init__(self) -> None:
        if not 1 <= self.n_shards <= self.n_procs:
            raise ValueError(
                f"n_shards must be in [1, n_procs]: {self.n_shards}"
            )

    def shard_of_rank(self, rank: int) -> int:
        """Contiguous balanced rank partition."""
        return rank * self.n_shards // self.n_procs

    def shard_of_pod(self, pod: int) -> int:
        """A switch lives with the shard of its pod's first host."""
        first = (pod * self.n_procs + self.n_pods - 1) // self.n_pods
        return self.shard_of_rank(first)

    def ranks_of(self, shard: int) -> List[int]:
        return [r for r in range(self.n_procs) if self.shard_of_rank(r) == shard]

    def pod_of_rank(self, rank: int) -> int:
        return rank * self.n_pods // self.n_procs

    def link_shards(self, n_paths: int, switch_name) -> Dict[str, Tuple[int, int]]:
        """``link name -> (transmitter shard, receiver shard)`` for every link.

        Mirrors the wiring of :func:`repro.network.topology.build_cluster`;
        ``switch_name`` is ``ClusterConfig.switch_name``.
        """
        owners: Dict[str, Tuple[int, int]] = {}
        for p in range(n_paths):
            for h in range(self.n_procs):
                sw = switch_name(p, self.pod_of_rank(h))
                h_shard = self.shard_of_rank(h)
                sw_shard = self.shard_of_pod(self.pod_of_rank(h))
                owners[f"h{h}p{p}->{sw}"] = (h_shard, sw_shard)
                owners[f"{sw}->h{h}p{p}"] = (sw_shard, h_shard)
            for a in range(self.n_pods):
                for b in range(self.n_pods):
                    if a != b:
                        owners[f"{switch_name(p, a)}->{switch_name(p, b)}"] = (
                            self.shard_of_pod(a),
                            self.shard_of_pod(b),
                        )
        return owners


@dataclass
class PDESResult:
    """What a sharded (or horizon-serial) run returns."""

    results: List[Any]  # per-rank app return values
    metrics: Dict[str, Any]  # canonical: merged + schedule-sensitive filtered
    events_processed: int  # summed over shards == serial event count
    horizon_ns: int
    n_shards: int
    wall_s: float
    rounds: int  # synchronisation windows executed (0 for serial)
    # degradation markers live here (and on stderr), never in the
    # shard-invariant JSON payload: a degraded run's metrics document
    # must stay byte-identical to a healthy serial run's
    degraded: bool = False
    degraded_reason: Optional[str] = None


def _merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic metric merge: counters sum, the clock maxes.

    Every shard snapshots an identical key set (identical world
    replicas); a counter only accrues on the shard owning the object
    behind it, so summing reproduces the serial value exactly.
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if isinstance(value, str):
                # string probes (association state, scheduler name) only
                # materialise on the shard whose ranks drove them
                merged.setdefault(key, value)
            elif key.endswith("now_ns"):
                prev = merged.get(key, 0)
                merged[key] = value if value > prev else prev
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def canonical_metrics(merged: Dict[str, Any]) -> Dict[str, Any]:
    """The parity-comparable view: schedule-sensitive keys dropped."""
    return filter_schedule_sensitive(merged)


# ---------------------------------------------------------------------------
# shard execution (runs inside each worker process, and inline for serial)
# ---------------------------------------------------------------------------


class _Shard:
    """One shard's world replica plus its outbox plumbing."""

    def __init__(self, config: Any, plan: ShardPlan, shard_id: int) -> None:
        from ..core.world import World  # deferred: avoid core<->simkernel cycle

        self.plan = plan
        self.shard_id = shard_id
        cfg = dataclasses.replace(config, metrics_enabled=True)
        self.world = World(cfg)
        self.kernel = self.world.kernel
        self.outbox: List[OutboxEntry] = []
        self.links = self.world.cluster.links
        cluster_cfg = self.world.cluster.config
        owners = plan.link_shards(cluster_cfg.n_paths, cluster_cfg.switch_name)
        self.lookahead_ns: Optional[int] = None
        for name, (src, dst) in owners.items():
            if src == dst:
                continue
            link = self.links[name]
            la = link.prop_delay_ns
            if la < 1:
                raise ValueError(
                    f"cut link {name} has zero propagation delay: conservative "
                    "sharding needs lookahead >= 1ns"
                )
            if self.lookahead_ns is None or la < self.lookahead_ns:
                self.lookahead_ns = la
            if src == shard_id:
                link.divert = self._divert
        self.ranks = plan.ranks_of(shard_id)
        self.tasks: List[Any] = []

    def _divert(self, link: Any, packet: Any) -> None:
        self.outbox.append(
            (self.kernel.now + link.prop_delay_ns, link.name, packet)
        )

    def start(self, app: Callable, args: tuple) -> None:
        self.tasks = self.world.spawn_ranks(app, args, self.ranks)

    def run_window(self, until: int) -> List[OutboxEntry]:
        self.kernel.run(until=until)
        self.kernel.check_tasks()
        out = self.outbox
        self.outbox = []
        return out

    def deliver(self, entries: List[OutboxEntry]) -> None:
        # sorted by (deliver_time, link_name): same-timestamp arrivals from
        # different peers enqueue in a deterministic order
        post_at = self.kernel.post_at
        links = self.links
        for when, name, packet in sorted(entries, key=lambda e: (e[0], e[1])):
            post_at(when, links[name].sink, packet)

    def next_event_time(self) -> Optional[int]:
        return self.kernel.next_event_time()

    def finish(self, horizon_ns: int) -> Tuple[Dict[int, Any], Dict[str, Any], int]:
        unfinished = [t for t in self.tasks if not t.done()]
        if unfinished:
            raise HorizonError(
                f"horizon {horizon_ns}ns elapsed with {len(unfinished)} of "
                f"{len(self.tasks)} rank tasks still pending on shard "
                f"{self.shard_id} (raise --horizon-s)"
            )
        results = {r: t.result() for r, t in zip(self.ranks, self.tasks)}
        return results, self.kernel.metrics.snapshot(), self.kernel.events_processed


def _chaos_strike(op: str) -> None:  # pragma: no cover - runs in child
    """Chaos-test fault injection inside a shard worker.

    ``kill`` hard-exits (no cleanup, no structured error — exactly what
    a segfaulting or OOM-killed worker looks like to the coordinator);
    ``hang`` stops the process with SIGSTOP, which freezes *everything*
    including the pipe, the shape of a wedged worker.
    """
    if op == "kill":
        os._exit(CHAOS_EXIT_CODE)
    os.kill(os.getpid(), signal.SIGSTOP)


def _worker_main(conn: Any, config: Any, plan: ShardPlan, shard_id: int,
                 app: Callable, args: tuple,
                 chaos: Optional[Tuple[str, int]] = None) -> None:
    """Shard worker: obeys run/deliver/finish commands from the coordinator.

    ``chaos`` — ``(op, round)`` — makes this worker strike (crash or
    hang) just before executing its ``round``-th run window; used by the
    degradation self-test and the CI chaos gate.
    """
    runs_seen = 0
    try:
        shard = _Shard(config, plan, shard_id)
        shard.start(app, args)
        conn.send(("status", shard.next_event_time()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "run":
                runs_seen += 1
                if chaos is not None and runs_seen == chaos[1]:
                    _chaos_strike(chaos[0])
                conn.send(("outbox", shard.run_window(cmd[1])))
            elif op == "deliver":
                shard.deliver(cmd[1])
                conn.send(("status", shard.next_event_time()))
            elif op == "status":
                conn.send(("status", shard.next_event_time()))
            elif op == "finish":
                conn.send(("result", *shard.finish(cmd[1])))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


def _expect(conn: Any, kind: str, *, proc: Any = None, shard_id: int = -1,
            timeout_s: Optional[float] = None) -> tuple:
    """Receive one ``kind`` message, supervising the worker behind it.

    Polls instead of blocking so a worker that died (dead process, pipe
    EOF) or went silent past ``timeout_s`` raises :class:`ShardFailure`
    naming the shard — a bare ``recv()`` here used to block the
    coordinator forever on a wedged worker and report nothing useful on
    a crashed one.  Structured ``error`` replies still raise plain
    :class:`ShardExchangeError` (deterministic application failure).
    """
    deadline = (
        None if timeout_s is None
        else time.monotonic() + timeout_s  # repro: allow[AN101] — watchdog
    )
    while True:
        try:
            if conn.poll(_POLL_TICK_S):
                msg = conn.recv()
                break
        except (EOFError, OSError):
            code = None
            if proc is not None:
                proc.join(timeout=0.2)  # EOF usually precedes the reap
                code = proc.exitcode
            raise ShardFailure(
                f"shard {shard_id} worker died mid-exchange "
                f"(exit code {code}) while the coordinator awaited {kind!r}"
            ) from None
        if proc is not None and not proc.is_alive():
            raise ShardFailure(
                f"shard {shard_id} worker died (exit code {proc.exitcode}) "
                f"while the coordinator awaited {kind!r}"
            )
        now = time.monotonic()  # repro: allow[AN101] — watchdog
        if deadline is not None and now > deadline:
            raise ShardFailure(
                f"shard {shard_id} worker stalled: no {kind!r} reply within "
                f"{timeout_s:g}s (hung or stopped process)"
            )
    if msg[0] == "error":
        raise ShardExchangeError(f"shard worker failed:\n{msg[1]}")
    if msg[0] != kind:
        raise ShardExchangeError(f"expected {kind!r} from worker, got {msg[0]!r}")
    return msg


def _send(conn: Any, payload: tuple, *, proc: Any, shard_id: int) -> None:
    """Send one command; a lost pipe surfaces as :class:`ShardFailure`."""
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):
        raise ShardFailure(
            f"shard {shard_id} worker lost its pipe before "
            f"{payload[0]!r} (exit code {proc.exitcode})"
        ) from None


def _reap_cohort(procs: List[Any], conns: List[Any],
                 grace_s: float = 1.0) -> None:
    """Terminate-and-reap every shard worker: close pipes, SIGTERM,
    then SIGKILL stragglers.

    The SIGKILL backstop matters: a *stopped* (SIGSTOP'd) worker leaves
    SIGTERM pending forever, and SIGKILL is the only signal a stopped
    process cannot sit out.  ``grace_s`` lets cleanly exiting workers
    finish on their own first (the healthy-shutdown path).
    """
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
    if grace_s > 0:
        for proc in procs:
            proc.join(timeout=grace_s)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=0.5)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def _run_serial_horizon(config: Any, app: Callable, args: tuple,
                        horizon_ns: int) -> PDESResult:
    """The ``n_shards=1`` leg: one kernel, whole world, run to horizon.

    Unlike ``World.run`` (which stops at the event completing the last
    rank), this fires *every* event up to the horizon — lingering
    heartbeats, delayed ACKs — so its event set is exactly what the
    sharded legs collectively fire, which is what makes the two
    byte-comparable.
    """
    t0 = time.perf_counter()  # repro: allow[AN101] — wall display only
    plan = ShardPlan(config.n_procs, config.n_pods, 1)
    shard = _Shard(config, plan, 0)
    shard.start(app, args)
    shard.kernel.run(until=horizon_ns)
    shard.kernel.check_tasks()
    by_rank, snapshot, events = shard.finish(horizon_ns)
    merged = _merge_snapshots([snapshot])
    return PDESResult(
        results=[by_rank[r] for r in range(config.n_procs)],
        metrics=canonical_metrics(merged),
        events_processed=events,
        horizon_ns=horizon_ns,
        n_shards=1,
        wall_s=time.perf_counter() - t0,  # repro: allow[AN101] — wall display
        rounds=0,
    )


def _parse_chaos(spec: Optional[str], n_shards: int) -> Optional[Tuple[str, int, int]]:
    """Parse ``"kill:SHARD[:ROUND]"`` / ``"hang:SHARD[:ROUND]"``.

    Returns ``(op, shard, round)`` with ``round`` defaulting to the
    first run window, or ``None`` for no injection.
    """
    if spec is None:
        return None
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"chaos spec must be OP:SHARD[:ROUND], got {spec!r}")
    op = parts[0]
    if op not in ("kill", "hang"):
        raise ValueError(f"chaos op must be 'kill' or 'hang', got {op!r}")
    shard = int(parts[1])
    if not 0 <= shard < n_shards:
        raise ValueError(
            f"chaos shard {shard} out of range for n_shards={n_shards}"
        )
    round_no = int(parts[2]) if len(parts) == 3 else 1
    if round_no < 1:
        raise ValueError(f"chaos round must be >= 1, got {round_no}")
    return op, shard, round_no


def run_sharded(
    app: Callable,
    *,
    config: Any,
    horizon_ns: int,
    n_shards: int,
    args: tuple = (),
    shard_timeout_s: Optional[float] = 60.0,
    degrade_to_serial: bool = True,
    chaos: Optional[str] = None,
) -> PDESResult:
    """Run ``app`` on every rank of one world, sharded over processes.

    ``config`` is a :class:`repro.core.world.WorldConfig`; ``app`` the
    per-rank coroutine function (as for ``World.run``).  Requires the
    ``fork`` start method (workers inherit ``app`` by address space, so
    closures work); every POSIX CI runner has it.

    The coordinator supervises its cohort: a worker that crashes, hangs
    (no reply within ``shard_timeout_s``), or loses its pipe gets the
    whole cohort terminated and reaped, and — since every shard holds a
    full world replica, so no state is lost — the run **degrades
    gracefully** to the serial leg, whose metrics are byte-identical to
    what the healthy sharded run would have produced.  The returned
    result carries ``degraded=True`` plus the reason (and a notice is
    printed to stderr); the shard-invariant payload is unchanged.  Pass
    ``degrade_to_serial=False`` to get the :class:`ShardFailure`
    instead.  Deterministic application errors (a structured worker
    traceback, :class:`HorizonError`) never degrade — the serial rerun
    would fail identically, so they propagate.

    ``chaos`` (``"kill:SHARD[:ROUND]"`` / ``"hang:SHARD[:ROUND]"``)
    injects a worker fault for self-tests and the CI chaos gate.
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon must be positive: {horizon_ns}")
    if n_shards == 1:
        return _run_serial_horizon(config, app, args, horizon_ns)
    chaos_plan = _parse_chaos(chaos, n_shards)
    plan = ShardPlan(config.n_procs, config.n_pods, n_shards)
    t0 = time.perf_counter()  # repro: allow[AN101] — wall display only
    ctx = multiprocessing.get_context("fork")
    conns: List[Any] = []
    procs: List[Any] = []
    try:
        for s in range(n_shards):
            parent, child = ctx.Pipe()
            worker_chaos = (
                (chaos_plan[0], chaos_plan[2])
                if chaos_plan is not None and chaos_plan[1] == s
                else None
            )
            proc = ctx.Process(
                target=_worker_main,
                args=(child, config, plan, s, app, args, worker_chaos),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        # the lookahead is a topology constant; every link shares
        # prop_delay_ns (validated >= 1 on the cut links in the shards)
        L = config.prop_delay_ns
        from ..network.topology import ClusterConfig

        naming = ClusterConfig(
            n_hosts=config.n_procs, n_paths=config.n_paths, n_pods=config.n_pods
        )
        owners = plan.link_shards(config.n_paths, naming.switch_name)

        def recv(kind: str) -> List[tuple]:
            return [
                _expect(c, kind, proc=p, shard_id=s, timeout_s=shard_timeout_s)
                for s, (c, p) in enumerate(zip(conns, procs))
            ]

        def send_all(payloads: List[tuple]) -> None:
            for s, (conn, proc, payload) in enumerate(
                zip(conns, procs, payloads)
            ):
                _send(conn, payload, proc=proc, shard_id=s)

        nexts = [msg[1] for msg in recv("status")]
        rounds = 0
        while True:
            live = [t for t in nexts if t is not None]
            m = min(live) if live else None
            if m is None or m > horizon_ns:
                break
            window = min(horizon_ns, m + L - 1)
            send_all([("run", window)] * n_shards)
            outboxes = [msg[1] for msg in recv("outbox")]
            inbound: List[List[OutboxEntry]] = [[] for _ in range(n_shards)]
            for entries in outboxes:
                for entry in entries:
                    dest = owners[entry[1]][1]
                    inbound[dest].append(entry)
            send_all([("deliver", entries) for entries in inbound])
            nexts = [msg[1] for msg in recv("status")]
            rounds += 1
        # final fast-forward: every remaining event is beyond the horizon,
        # so this fires nothing and pins each shard clock to exactly the
        # horizon — matching the serial leg's run(until=horizon)
        send_all([("run", horizon_ns)] * n_shards)
        recv("outbox")
        send_all([("finish", horizon_ns)] * n_shards)
        by_rank: Dict[int, Any] = {}
        snapshots: List[Dict[str, Any]] = []
        events = 0
        for msg in recv("result"):
            by_rank.update(msg[1])
            snapshots.append(msg[2])
            events += msg[3]
        merged = _merge_snapshots(snapshots)
        return PDESResult(
            results=[by_rank[r] for r in range(config.n_procs)],
            metrics=canonical_metrics(merged),
            events_processed=events,
            horizon_ns=horizon_ns,
            n_shards=n_shards,
            wall_s=time.perf_counter() - t0,  # repro: allow[AN101] — wall display
            rounds=rounds,
        )
    except ShardFailure as err:
        # infrastructure failure: reap the whole cohort *now* (no grace
        # — a hung worker would just burn the timeout again), then fall
        # back to the serial leg if allowed
        _reap_cohort(procs, conns, grace_s=0.0)
        if not degrade_to_serial:
            raise
        print(
            f"pdes: sharded run degraded to serial after shard failure: {err}",
            file=sys.stderr,
        )
        result = _run_serial_horizon(config, app, args, horizon_ns)
        result.degraded = True
        result.degraded_reason = str(err)
        return result
    finally:
        _reap_cohort(procs, conns)
