"""Time and bandwidth unit helpers.

All simulator time is kept as integer nanoseconds to make event ordering
exact and runs bit-reproducible; these constants/converters keep call sites
readable (``kernel.call_after(3 * MILLISECOND, ...)``).
"""

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

KBIT_PER_S = 1_000
MBIT_PER_S = 1_000_000
GBIT_PER_S = 1_000_000_000


def tx_time_ns(nbytes: int, bits_per_second: int) -> int:
    """Serialization delay of ``nbytes`` on a link of the given rate.

    Rounded up to a whole nanosecond so a transmission never takes zero
    time, which keeps link FIFO ordering well defined.
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    if bits_per_second <= 0:
        raise ValueError(f"non-positive bandwidth: {bits_per_second}")
    bits = nbytes * 8
    return max(1, (bits * SECOND + bits_per_second - 1) // bits_per_second)


def ns_to_seconds(ns: int) -> float:
    """Convert integer nanoseconds into float seconds for reporting."""
    return ns / SECOND


def seconds_to_ns(seconds: float) -> int:
    """Convert (possibly fractional) seconds into integer nanoseconds."""
    return int(round(seconds * SECOND))
