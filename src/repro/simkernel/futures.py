"""Futures and tasks driven by the virtual-time kernel.

These mirror the asyncio primitives closely enough that simulation code
reads like ordinary async Python, but they are deliberately minimal: a
:class:`Future` completes exactly once, a :class:`Task` steps a coroutine
forward every time the future it awaits completes, and everything happens
synchronously inside :meth:`repro.simkernel.kernel.Kernel.run`.
"""

from __future__ import annotations

from typing import Any, Callable, Coroutine, Optional

_PENDING = "pending"
_DONE = "done"
_CANCELLED = "cancelled"


class CancelledError(Exception):
    """Raised inside a coroutine whose task was cancelled."""


class InvalidStateError(Exception):
    """A future was completed twice or its result read before completion."""


class Future:
    """A single-assignment result container awaitable from simulation code."""

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        # lazy: most futures resolve without ever getting a callback, so
        # the list is only allocated on first add_done_callback
        self._callbacks: Optional[list[Callable[[Future], None]]] = None
        self.name = name

    # -- inspection ------------------------------------------------------
    def done(self) -> bool:
        """True once a result, exception, or cancellation has been set."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        """True if :meth:`cancel` completed this future."""
        return self._state == _CANCELLED

    def result(self) -> Any:
        """Return the stored result, raising the stored exception if any."""
        if self._state == _PENDING:
            raise InvalidStateError(f"future {self.name!r} is not done")
        if self._state == _CANCELLED:
            raise CancelledError(self.name)
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception (None if completed normally)."""
        if self._state == _PENDING:
            raise InvalidStateError(f"future {self.name!r} is not done")
        return self._exception

    # -- completion ------------------------------------------------------
    def set_result(self, value: Any) -> None:
        """Complete the future successfully and run completion callbacks."""
        if self._state is not _PENDING:
            raise InvalidStateError(f"future {self.name!r} already {self._state}")
        self._state = _DONE
        self._result = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._state is not _PENDING:
            raise InvalidStateError(f"future {self.name!r} already {self._state}")
        self._state = _DONE
        self._exception = exc
        self._run_callbacks()

    def cancel(self) -> bool:
        """Cancel if still pending; returns whether a cancellation happened."""
        if self._state is not _PENDING:
            return False
        self._state = _CANCELLED
        self._run_callbacks()
        return True

    def add_done_callback(self, fn: Callable[[Future], None]) -> None:
        """Run ``fn(self)`` when done (immediately if already done)."""
        if self._state is not _PENDING:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks = self._callbacks
        if callbacks is None:
            return
        self._callbacks = None
        for fn in callbacks:
            fn(self)

    # -- awaiting --------------------------------------------------------
    def __await__(self):
        if self._state is _PENDING:
            yield self
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future {self.name!r} {self._state}>"


class Task(Future):
    """Drives a coroutine; completes with the coroutine's return value.

    The coroutine may only ``await`` :class:`Future` objects (everything in
    the simulator — timers, socket readiness, MPI requests — bottoms out in
    one).  Each time the awaited future completes, the task immediately
    resumes the coroutine; there is no separate ready queue, which keeps
    causality obvious: all work triggered by an event happens at the event's
    timestamp, in deterministic order.
    """

    __slots__ = ("_coro", "_awaiting")

    def __init__(self, coro: Coroutine, name: str = "") -> None:
        super().__init__(name=name or getattr(coro, "__name__", "task"))
        self._coro = coro
        self._awaiting: Optional[Future] = None

    def start(self) -> None:
        """Begin executing the coroutine (called by ``Kernel.spawn``)."""
        self._step(None, None)

    def cancel(self) -> bool:
        """Cancel the task, throwing CancelledError into the coroutine."""
        if self.done():
            return False
        awaiting, self._awaiting = self._awaiting, None
        if awaiting is not None and not awaiting.done():
            # Detach from whatever we were waiting on, then interrupt.
            self._step(None, CancelledError(self.name))
            return True
        return super().cancel()

    def _wakeup(self, fut: Future) -> None:
        # fires once per task step: read the slots directly (fut is done
        # by contract here, so the accessor guards would never trip)
        if self._state is not _PENDING:
            return
        if fut is not self._awaiting:
            return  # stale wakeup from a future we abandoned via cancel()
        self._awaiting = None
        if fut._state is _CANCELLED:
            self._step(None, CancelledError(fut.name))
        elif fut._exception is not None:
            self._step(None, fut._exception)
        else:
            self._step(fut._result, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                awaited = self._coro.throw(exc)
            else:
                awaited = self._coro.send(value)
        except StopIteration as stop:
            if not self.done():
                self.set_result(stop.value)
            return
        except CancelledError:
            if not self.done():
                super().cancel()
            return
        except BaseException as err:
            if not self.done():
                self.set_exception(err)
            return
        if not isinstance(awaited, Future):
            raise TypeError(
                f"task {self.name!r} awaited {awaited!r}; only simkernel "
                "Futures can be awaited inside the simulator"
            )
        self._awaiting = awaited
        awaited.add_done_callback(self._wakeup)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name!r} {self._state}>"
