"""The virtual-time event loop.

A :class:`Kernel` owns the clock (integer nanoseconds), a binary heap of
timers, and the root of every named RNG stream.  It is single-threaded and
fully deterministic: two runs with the same configuration and seed produce
identical event sequences.

Hot-path design (the simulator spends most of its wall-clock time here):

* heap entries are single flat tuples ``(when, seq ^ mask, obj, args)``
  where ``obj`` is either a pooled :class:`Timer` (cancellable path) or a
  bare callable (fire-and-forget path).  One allocation per scheduled
  event — the nested ``(fn, args)`` payload tuple of earlier revisions is
  gone.  (A parallel-array core with packed integer keys and slot indices
  was prototyped and measured *slower* in CPython: the big-int shift/mask
  temporaries needed to pack ``when``/``seq``/``slot`` into one key cost
  more than the single tuple they replace — see DESIGN.md § event-core
  layout for the numbers.  The free-list idea survives as the Timer and
  Packet object pools.)
* two scheduling paths share one heap and one sequence counter, so event
  *order* is identical whichever a caller uses: :meth:`Kernel.call_at`
  returns a cancellable :class:`Timer` handle, while :meth:`Kernel.post_at`
  is the fire-and-forget path the per-packet machinery (links, host CPUs,
  pipes) uses;
* :class:`Timer` objects are recycled through a free-list pool: a timer
  is returned to the pool when its heap entry is consumed (fired, or
  popped/compacted after cancellation), so steady-state retransmission
  churn allocates no Timer objects at all.  The contract is that a Timer
  handle is *dead* once it has fired or been cancelled — holding a stale
  handle and cancelling it later is a no-op until the object is reused,
  and undefined after.  ``REPRO_SANITIZE=1`` poisons pooled timers to
  catch use-after-recycle (see :mod:`repro.analyze.sanitize`).
* live-timer accounting is O(1): a maintained counter is incremented on
  schedule and decremented on fire/cancel, so the ``pending_timers``
  metrics probe never scans the heap;
* cancellation is lazy (the heap entry stays until popped), but when
  cancelled entries dominate a large heap the kernel compacts it in place,
  so a long idle simulation that cancelled thousands of retransmission
  timers doesn't drag them along forever.  Compaction preserves event
  order exactly because heap keys ``(when, seq)`` are unique.
* the sequence counter is renumbered (order-preserving) when it reaches
  :data:`Kernel.SEQ_LIMIT` under the production FIFO mask, so keys stay
  small machine integers over arbitrarily long runs.  Under a non-zero
  perturbation mask the counter simply keeps growing — XOR stays a
  bijection at any width, so correctness is unaffected and only
  perturbation runs (which are short by construction) pay big-int keys.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from collections import Counter
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Coroutine, Iterable, Optional

from ..analyze.sanitize import POOL_POISON, kernel_sanitizer
from ..metrics.registry import MetricsRegistry
from .futures import _PENDING, Future, Task

# timer-heap depth buckets: powers of four up to a million timers
HEAP_DEPTH_EDGES = (4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)

# Same-time tie-break mask XORed into every heap sequence key.  0 is the
# production FIFO order; repro.analyze.perturb installs non-zero masks
# (reversal, seed-shuffle) to prove results don't depend on the order of
# equal-timestamp events.  XOR is a bijection, so keys stay unique and
# compaction stays order-preserving under any mask.  Module-level so the
# race detector reaches kernels constructed deep inside the bench
# harness; individual kernels can override via ``tiebreak_mask=``.
DEFAULT_TIEBREAK_MASK = 0


class Timer:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Timers are pooled: once a timer has fired or been cancelled the
    handle is dead and the object may be reused for a later
    ``call_at``/``call_after``.  Callers must drop (or null out) handles
    on fire/cancel — every transport in this repo does — and never
    cancel a handle that might already have fired and been reused.
    """

    __slots__ = ("when", "fn", "args", "cancelled", "_kernel")

    def __init__(
        self, when: int, fn: Callable, args: tuple, kernel: Optional["Kernel"] = None
    ) -> None:
        self.when = when
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for live-timer accounting; detached (set to None)
        # when the timer fires, so a late cancel() is a pure no-op.
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        kernel = self._kernel
        if kernel is not None:
            self._kernel = None
            kernel._note_cancelled()


class WatchdogExpired(RuntimeError):
    """An armed kernel progress watchdog tripped.

    The message names the limit that expired (wall clock, event budget,
    or virtual-time stall), the virtual time and event count at expiry,
    and the hottest callback labels still queued — enough to tell a
    retransmission storm from a livelocked barrier without re-running
    under a profiler.
    """


def _hot_heap_labels(heap: list, top: int = 5) -> str:
    """The most common live callback labels queued in ``heap``.

    Diagnostic for :class:`WatchdogExpired`: the machinery flooding the
    heap is almost always the machinery that livelocked.
    """
    counts: Counter = Counter()
    for entry in heap:
        obj = entry[2]
        if type(obj) is Timer:
            if obj.cancelled:
                continue
            fn = obj.fn
        else:
            fn = obj
        counts[getattr(fn, "__qualname__", None) or repr(fn)] += 1
    if not counts:
        return "(heap empty)"
    return ", ".join(f"{name} x{n}" for name, n in counts.most_common(top))


class _Watchdog:
    """Armed progress limits for one kernel (:meth:`Kernel.arm_watchdog`).

    One ``tick(when)`` per fired event, guarded by the same is-None test
    the sanitizer uses, so a kernel without a watchdog pays nothing.
    Wall-clock reads are amortised over ``check_every`` events; the
    event and stall counters are plain integer arithmetic.
    """

    __slots__ = ("kernel", "max_wall_s", "started", "max_events", "count",
                 "max_stall_events", "stall", "last_now", "check_every",
                 "until_wall")

    def __init__(self, kernel: "Kernel", max_wall_s: Optional[float],
                 max_events: Optional[int], max_stall_events: Optional[int],
                 check_every: int) -> None:
        self.kernel = kernel
        self.max_wall_s = max_wall_s
        self.started = (
            time.monotonic()  # repro: allow[AN101] — watchdog wall budget
            if max_wall_s is not None else 0.0
        )
        self.max_events = max_events
        self.count = 0
        self.max_stall_events = max_stall_events
        self.stall = 0
        self.last_now = -1
        self.check_every = check_every
        self.until_wall = check_every

    def tick(self, when: int) -> None:
        self.count += 1
        if self.max_stall_events is not None:
            if when != self.last_now:
                self.last_now = when
                self.stall = 0
            else:
                self.stall += 1
                if self.stall >= self.max_stall_events:
                    self._expire(
                        f"virtual time stalled: {self.stall + 1} consecutive "
                        f"events at t={when}ns (livelock — something is "
                        "rescheduling itself with zero delay)"
                    )
        if self.max_events is not None and self.count >= self.max_events:
            self._expire(f"event budget exhausted ({self.max_events} events)")
        if self.max_wall_s is not None:
            self.until_wall -= 1
            if self.until_wall <= 0:
                self.until_wall = self.check_every
                elapsed = (
                    time.monotonic()  # repro: allow[AN101] — watchdog wall budget
                    - self.started
                )
                if elapsed > self.max_wall_s:
                    self._expire(
                        f"wall-clock budget exhausted "
                        f"({elapsed:.1f}s > {self.max_wall_s:g}s)"
                    )

    def _expire(self, reason: str) -> None:
        kernel = self.kernel
        kernel._watchdog = None  # disarm so cleanup code can't re-trip it
        raise WatchdogExpired(
            f"kernel watchdog expired at t={kernel.now}ns after "
            f"{self.count} events: {reason}; pending events: "
            f"{kernel.pending_events()}, hot heap labels: "
            f"{_hot_heap_labels(kernel._heap)}"
        )


def _watchdog_env() -> Optional[dict]:
    """Parse ``REPRO_WATCHDOG=wall=30,events=1e6,stall=100000[,every=N]``.

    Evaluated once at import; every kernel constructed in the process
    auto-arms with these limits (the CI/sweep "no run hangs forever"
    safety net — per-kernel :meth:`Kernel.arm_watchdog` overrides it).
    """
    spec = os.environ.get("REPRO_WATCHDOG", "").strip()
    if not spec:
        return None
    limits: dict = {"wall": None, "events": None, "stall": None, "every": 1024}
    for part in spec.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in limits:
            raise ValueError(
                f"REPRO_WATCHDOG: expected wall=/events=/stall=/every= "
                f"terms, got {part!r}"
            )
        limits[key] = float(value) if key == "wall" else int(float(value))
    if all(limits[k] is None for k in ("wall", "events", "stall")):
        raise ValueError("REPRO_WATCHDOG: set at least one of wall/events/stall")
    return limits


_ENV_WATCHDOG = _watchdog_env()


class Kernel:
    """Discrete-event loop with an integer nanosecond virtual clock."""

    # lazy-deletion compaction policy: rebuild the heap once it holds at
    # least COMPACT_MIN_HEAP entries and more than half are cancelled
    COMPACT_MIN_HEAP = 1024

    # sequence-counter renumber threshold: far beyond any realistic event
    # count, and overridable per instance so tests can exercise the
    # order-preserving renumbering cheaply
    SEQ_LIMIT = 1 << 62

    def __init__(
        self,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tiebreak_mask: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self._now = 0
        # entries are flat (when, seq ^ mask, Timer, None) from call_at or
        # (when, seq ^ mask, fn, args) from post_at; (when, seq ^ mask) is
        # unique so the third element is never compared
        self._heap: list[tuple] = []
        self._seq = 0
        self._seq_mask = (
            DEFAULT_TIEBREAK_MASK if tiebreak_mask is None else tiebreak_mask
        )
        # None unless REPRO_SANITIZE / enable_sanitizers() is on, so the
        # run loops pay one is-None test per event (the metrics pattern)
        self._san = kernel_sanitizer(self)
        # None unless armed (arm_watchdog / REPRO_WATCHDOG): same pattern
        self._watchdog: Optional[_Watchdog] = None
        if _ENV_WATCHDOG is not None:
            self.arm_watchdog(
                max_wall_s=_ENV_WATCHDOG["wall"],
                max_events=_ENV_WATCHDOG["events"],
                max_stall_events=_ENV_WATCHDOG["stall"],
                check_every=_ENV_WATCHDOG["every"],
            )
        # Timer free list: dead handles awaiting reuse (never scheduled)
        self._timer_pool: list[Timer] = []
        self._events_processed = 0
        self._live_events = 0  # scheduled, not yet fired or cancelled
        self._cancelled_in_heap = 0  # lazy-deleted entries awaiting pop
        self._compactions = 0
        self._seq_renumbers = 0
        self._tasks: list[Task] = []
        self._rng_cache: dict[str, random.Random] = {}
        # The kernel owns the metrics registry every layer registers into.
        # Metric registration never touches the RNG machinery, so streams
        # are identical whether or not a simulation is instrumented.
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        scope = self.metrics.scope("kernel")
        scope.probe("events_processed", lambda: self._events_processed)
        scope.probe("pending_timers", self.pending_events)
        scope.probe("cancelled_in_heap", lambda: self._cancelled_in_heap)
        scope.probe("heap_compactions", lambda: self._compactions)
        scope.probe("tasks_spawned", lambda: len(self._tasks))
        scope.probe("now_ns", lambda: self._now)
        # heap-depth histogram observed on every schedule; None when the
        # registry is disabled so the hot path pays only this check
        self._heap_depth_hist = (
            scope.histogram("timer_heap_depth", HEAP_DEPTH_EDGES)
            if self.metrics.enabled
            else None
        )

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds since simulation start."""
        return self._now

    # -- randomness ------------------------------------------------------
    def rng(self, label: str) -> random.Random:
        """A reproducible RNG stream named ``label``.

        The stream seed is a stable hash of ``(kernel seed, label)`` so
        adding a new consumer never perturbs existing streams.  Streams
        are cached per label: asking twice for the same label returns the
        *same* generator (continuing its sequence), and the SHA-256
        derivation is paid once per label, not once per call.
        """
        stream = self._rng_cache.get(label)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._rng_cache[label] = stream
        return stream

    # -- scheduling ------------------------------------------------------
    def _acquire_timer(self, when: int, fn: Callable, args: tuple) -> Timer:
        """A Timer bound to this kernel, recycled from the pool if possible."""
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
            if self._san is not None and timer.fn is not POOL_POISON:
                self._san.pool_corruption("timer", timer)
            timer.when = when
            timer.fn = fn
            timer.args = args
            timer.cancelled = False
            timer._kernel = self
            return timer
        return Timer(when, fn, args, self)

    def _recycle_timer(self, timer: Timer) -> None:
        """Return a consumed (fired or cancel-popped) handle to the pool."""
        timer.cancelled = True  # dead: a stale cancel() is a no-op
        timer._kernel = None
        if self._san is not None:
            timer.fn = POOL_POISON
            timer.args = POOL_POISON
        self._timer_pool.append(timer)

    def call_at(self, when: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        timer = self._acquire_timer(when, fn, args)
        self._seq = seq = self._seq + 1
        if seq >= self.SEQ_LIMIT and not self._seq_mask:
            self._seq = seq = self._renumber_seq()
        heappush(self._heap, (when, seq ^ self._seq_mask, timer, None))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))
        return timer

    def call_after(self, delay: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # body of call_at inlined (minus the past-check: now+delay >= now)
        timer = self._acquire_timer(self._now + delay, fn, args)
        self._seq = seq = self._seq + 1
        if seq >= self.SEQ_LIMIT and not self._seq_mask:
            self._seq = seq = self._renumber_seq()
        heappush(self._heap, (timer.when, seq ^ self._seq_mask, timer, None))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))
        return timer

    def post_at(self, when: int, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`call_at`: no cancellable handle.

        The cheap-construction scheduling path for high-churn callers
        (per-packet link/CPU completions) that never cancel: one flat
        heap tuple is the only allocation.  Ordering is identical to
        ``call_at`` — both share the clock and sequence counter.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        self._seq = seq = self._seq + 1
        if seq >= self.SEQ_LIMIT and not self._seq_mask:
            self._seq = seq = self._renumber_seq()
        heappush(self._heap, (when, seq ^ self._seq_mask, fn, args))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))

    def post_after(self, delay: int, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`call_after` (see :meth:`post_at`).

        This is the single hottest scheduling call in a run (every link
        hop, CPU charge, and pipe transfer lands here), so the
        :meth:`post_at` body is inlined rather than delegated.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        if seq >= self.SEQ_LIMIT and not self._seq_mask:
            self._seq = seq = self._renumber_seq()
        heappush(self._heap, (self._now + delay, seq ^ self._seq_mask, fn, args))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))

    def call_window(
        self,
        start: int,
        end: Optional[int],
        on_fn: Callable,
        off_fn: Callable,
    ) -> tuple:
        """Run ``on_fn`` at ``start`` and ``off_fn`` at ``end``.

        The primitive behind fault-scenario arming (repro.faults): a
        window that is already open (``start <= now``) switches on
        immediately; ``end=None`` means the window never closes.
        Returns ``(start_timer, end_timer)`` with ``None`` for legs that
        ran inline or don't exist.
        """
        if end is not None and end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        if end is not None and end <= self._now:
            on_fn()  # the whole window is in the past: open and close
            off_fn()
            return None, None
        if start <= self._now:
            on_fn()
            start_timer = None
        else:
            start_timer = self.call_at(start, on_fn)
        end_timer = self.call_at(end, off_fn) if end is not None else None
        return start_timer, end_timer

    def sleep(self, delay: int) -> Future:
        """Future that completes ``delay`` ns from now (``await kernel.sleep(d)``)."""
        fut = Future(name="sleep")  # static name: one sleep per compute phase
        self.post_after(delay, fut.set_result, None)
        return fut

    def spawn(self, coro: Coroutine, name: str = "") -> Task:
        """Wrap a coroutine into a task and start it immediately."""
        task = Task(coro, name=name)
        self._tasks.append(task)
        task.start()
        return task

    # -- heap maintenance --------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account one Timer.cancel(); compact if dead entries dominate."""
        self._live_events -= 1
        self._cancelled_in_heap += 1
        heap_size = len(self._heap)
        if heap_size >= self.COMPACT_MIN_HEAP and 2 * self._cancelled_in_heap > heap_size:
            self._compact()

    def _compact(self) -> None:
        """Drop lazily-deleted entries and re-heapify, in place.

        Order-preserving: heap keys ``(when, seq)`` are unique, so any
        valid heap over the surviving entries pops in the same total
        order.  In-place (slice assignment) so a ``run()`` loop holding a
        reference to the heap list sees the compacted state.  The Timer
        handles behind the dropped entries go back to the pool.
        """
        survivors = []
        append = survivors.append
        recycle = self._recycle_timer
        for entry in self._heap:
            obj = entry[2]
            if type(obj) is Timer and obj.cancelled:
                recycle(obj)
            else:
                append(entry)
        self._heap[:] = survivors
        heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _renumber_seq(self) -> int:
        """Compact the sequence space, preserving pop order; new top seq.

        Only reached under the production FIFO mask (``_seq_mask == 0``):
        queued entries are re-keyed ``1..n`` in pop order (a sorted list
        satisfies the heap property, so no re-heapify is needed) and the
        counter restarts at ``n + 1``, which keeps every future key above
        every queued key — FIFO tie-breaking is exactly preserved.  Under
        a non-zero perturbation mask the caller skips renumbering: XOR is
        a bijection at any integer width, so ever-growing sequence
        numbers stay correct (merely big-int slow), while renumbering
        could collide re-keyed entries with future masked keys.
        """
        entries = sorted(self._heap)
        self._heap[:] = [
            (entry[0], i, entry[2], entry[3]) for i, entry in enumerate(entries, 1)
        ]
        self._seq_renumbers += 1
        return len(entries) + 1

    # -- watchdog --------------------------------------------------------
    def arm_watchdog(
        self,
        *,
        max_wall_s: Optional[float] = None,
        max_events: Optional[int] = None,
        max_stall_events: Optional[int] = None,
        check_every: int = 1024,
    ) -> None:
        """Arm opt-in progress limits checked from inside the run loops.

        * ``max_wall_s`` — real seconds this kernel may spend firing
          events (read every ``check_every`` events, so granularity is
          coarse by design);
        * ``max_events`` — total events this watchdog will allow;
        * ``max_stall_events`` — consecutive events at an *unchanged*
          virtual ``now`` before the run is declared livelocked (pick a
          value well above legitimate same-timestamp bursts — barriers
          firing a whole rank set at one instant are normal);

        Tripping any limit raises :class:`WatchdogExpired` with the hot
        heap labels, instead of the run spinning forever.  This is the
        layer that catches *pure-Python* livelocks, which the process
        supervisor's heartbeat cannot see (a spinning event loop still
        heartbeats); conversely a SIGSTOP'd or C-stuck process never
        reaches these checks, which is the heartbeat's job — the two are
        complements, not alternatives.

        Arming takes effect when a run loop is next entered; determinism
        is unaffected (the watchdog observes, and either raises or
        changes nothing).
        """
        if max_wall_s is None and max_events is None and max_stall_events is None:
            raise ValueError("arm_watchdog: set at least one limit")
        for name, value in (("max_wall_s", max_wall_s),
                            ("max_events", max_events),
                            ("max_stall_events", max_stall_events)):
            if value is not None and value <= 0:
                raise ValueError(f"arm_watchdog: {name} must be positive: {value}")
        if check_every < 1:
            raise ValueError(f"arm_watchdog: check_every must be >= 1: {check_every}")
        self._watchdog = _Watchdog(
            self, max_wall_s, max_events, max_stall_events, check_every
        )

    def disarm_watchdog(self) -> None:
        """Remove any armed watchdog (effective at the next run entry)."""
        self._watchdog = None

    # -- running ---------------------------------------------------------
    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest queued entry, or None when idle.

        Conservative: a lazily-cancelled head counts (its timestamp is a
        lower bound on the next real event), which is exactly what the
        parallel-DES lookahead computation needs.
        """
        heap = self._heap
        return heap[0][0] if heap else None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` fire.  Returns the number of events processed."""
        heap = self._heap  # _compact() mutates in place, never rebinds
        san = self._san
        wd = self._watchdog
        processed = 0
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if until is not None and when > until:
                    self._now = until
                    return processed
                heappop(heap)
                obj = entry[2]
                if type(obj) is Timer:
                    if obj.cancelled:
                        self._cancelled_in_heap -= 1
                        self._recycle_timer(obj)
                        continue
                    fn = obj.fn
                    args = obj.args
                    if san is not None and fn is POOL_POISON:
                        san.pool_corruption("timer", obj)
                    self._recycle_timer(obj)
                else:
                    fn = obj
                    args = entry[3]
                self._live_events -= 1
                if san is not None:
                    san.on_fire(when)
                self._now = when
                fn(*args)
                processed += 1
                # ticked after the event fired so the heap shows its
                # effects (a livelock's re-post is visible in the dump)
                if wd is not None:
                    wd.tick(when)
                if max_events is not None and processed >= max_events:
                    return processed
            if until is not None and until > self._now:
                self._now = until
            return processed
        finally:
            self._events_processed += processed

    def run_until(self, fut: Future, limit: Optional[int] = None) -> Any:
        """Run until ``fut`` completes; raise if the simulation stalls first.

        This is the driver every ``World.run`` sits in, so the one-event
        step is inlined rather than paying a full :meth:`run` call per
        event (frame setup, try/finally, loop re-entry); semantics and
        event order are identical to ``run(max_events=1)`` in a loop.
        """
        heap = self._heap  # _compact() mutates in place, never rebinds
        san = self._san
        wd = self._watchdog
        processed = 0
        try:
            if limit is None:
                # no-limit variant: pop-and-unpack directly, no peek and no
                # per-event limit test (this is the common World.run path)
                pop = heappop  # local: one global lookup per run, not per event
                while fut._state is _PENDING:
                    if not heap:
                        raise DeadlockError(
                            f"event heap drained at t={self._now}ns but {fut!r} "
                            "is still pending (simulation deadlock)"
                        )
                    when, _seq, obj, args = pop(heap)
                    if type(obj) is Timer:
                        if obj.cancelled:
                            self._cancelled_in_heap -= 1
                            self._recycle_timer(obj)
                            continue
                        fn = obj.fn
                        args = obj.args
                        if san is not None and fn is POOL_POISON:
                            san.pool_corruption("timer", obj)
                        self._recycle_timer(obj)
                    else:
                        fn = obj
                    self._live_events -= 1
                    if san is not None:
                        san.on_fire(when)
                    self._now = when
                    fn(*args)
                    processed += 1
                    if wd is not None:
                        wd.tick(when)
                return fut.result()
            # fut._state check == Future.done(), minus a method call per event
            while fut._state is _PENDING:
                if not heap:
                    raise DeadlockError(
                        f"event heap drained at t={self._now}ns but {fut!r} is "
                        "still pending (simulation deadlock)"
                    )
                entry = heap[0]
                if entry[0] > limit:
                    raise TimeoutError(
                        f"{fut!r} still pending at virtual time limit {limit}ns"
                    )
                heappop(heap)
                obj = entry[2]
                if type(obj) is Timer:
                    if obj.cancelled:
                        self._cancelled_in_heap -= 1
                        self._recycle_timer(obj)
                        continue
                    fn = obj.fn
                    args = obj.args
                    if san is not None and fn is POOL_POISON:
                        san.pool_corruption("timer", obj)
                    self._recycle_timer(obj)
                else:
                    fn = obj
                    args = entry[3]
                self._live_events -= 1
                if san is not None:
                    san.on_fire(entry[0])
                self._now = entry[0]
                fn(*args)
                processed += 1
                if wd is not None:
                    wd.tick(entry[0])
        finally:
            self._events_processed += processed
        return fut.result()

    @property
    def events_processed(self) -> int:
        """Total events fired over the kernel's lifetime (for diagnostics)."""
        return self._events_processed

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued — O(1), maintained."""
        return self._live_events

    @property
    def heap_compactions(self) -> int:
        """Times the timer heap was compacted (for diagnostics/tests)."""
        return self._compactions

    @property
    def seq_renumbers(self) -> int:
        """Times the sequence counter was renumbered (for diagnostics/tests)."""
        return self._seq_renumbers

    def failed_tasks(self) -> Iterable[Task]:
        """Tasks that completed with an exception (useful in test asserts)."""
        return [
            t
            for t in self._tasks
            if t.done() and not t.cancelled() and t.exception() is not None
        ]

    def check_tasks(self) -> None:
        """Re-raise the first exception stored in any spawned task."""
        for task in self.failed_tasks():
            raise task.exception()


class DeadlockError(RuntimeError):
    """The event heap drained while some awaited future was still pending."""
