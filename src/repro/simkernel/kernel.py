"""The virtual-time event loop.

A :class:`Kernel` owns the clock (integer nanoseconds), a binary heap of
timers, and the root of every named RNG stream.  It is single-threaded and
fully deterministic: two runs with the same configuration and seed produce
identical event sequences.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Any, Callable, Coroutine, Iterable, Optional

from ..metrics.registry import MetricsRegistry
from .futures import Future, Task

# timer-heap depth buckets: powers of four up to a million timers
HEAP_DEPTH_EDGES = (4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


class Timer:
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("when", "fn", "args", "cancelled")

    def __init__(self, when: int, fn: Callable, args: tuple) -> None:
        self.when = when
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True
        self.fn = None
        self.args = ()


class Kernel:
    """Discrete-event loop with an integer nanosecond virtual clock."""

    def __init__(self, seed: int = 0, metrics: Optional[MetricsRegistry] = None) -> None:
        self.seed = seed
        self._now = 0
        self._heap: list[tuple[int, int, Timer]] = []
        self._seq = 0
        self._events_processed = 0
        self._tasks: list[Task] = []
        # The kernel owns the metrics registry every layer registers into.
        # Metric registration never touches the RNG machinery, so streams
        # are identical whether or not a simulation is instrumented.
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        scope = self.metrics.scope("kernel")
        scope.probe("events_processed", lambda: self._events_processed)
        scope.probe("pending_timers", self.pending_events)
        scope.probe("tasks_spawned", lambda: len(self._tasks))
        scope.probe("now_ns", lambda: self._now)
        # heap-depth histogram observed on every schedule; None when the
        # registry is disabled so the hot path pays only this check
        self._heap_depth_hist = (
            scope.histogram("timer_heap_depth", HEAP_DEPTH_EDGES)
            if self.metrics.enabled
            else None
        )

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds since simulation start."""
        return self._now

    # -- randomness ------------------------------------------------------
    def rng(self, label: str) -> random.Random:
        """A reproducible RNG stream named ``label``.

        The stream seed is a stable hash of ``(kernel seed, label)`` so
        adding a new consumer never perturbs existing streams.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- scheduling ------------------------------------------------------
    def call_at(self, when: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        timer = Timer(when, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, timer))
        if self._heap_depth_hist is not None:
            self._heap_depth_hist.observe(len(self._heap))
        return timer

    def call_after(self, delay: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def call_window(
        self,
        start: int,
        end: Optional[int],
        on_fn: Callable,
        off_fn: Callable,
    ) -> tuple:
        """Run ``on_fn`` at ``start`` and ``off_fn`` at ``end``.

        The primitive behind fault-scenario arming (repro.faults): a
        window that is already open (``start <= now``) switches on
        immediately; ``end=None`` means the window never closes.
        Returns ``(start_timer, end_timer)`` with ``None`` for legs that
        ran inline or don't exist.
        """
        if end is not None and end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        if end is not None and end <= self._now:
            on_fn()  # the whole window is in the past: open and close
            off_fn()
            return None, None
        if start <= self._now:
            on_fn()
            start_timer = None
        else:
            start_timer = self.call_at(start, on_fn)
        end_timer = self.call_at(end, off_fn) if end is not None else None
        return start_timer, end_timer

    def sleep(self, delay: int) -> Future:
        """Future that completes ``delay`` ns from now (``await kernel.sleep(d)``)."""
        fut = Future(name=f"sleep@{self._now}+{delay}")
        self.call_after(delay, fut.set_result, None)
        return fut

    def spawn(self, coro: Coroutine, name: str = "") -> Task:
        """Wrap a coroutine into a task and start it immediately."""
        task = Task(coro, name=name)
        self._tasks.append(task)
        task.start()
        return task

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` fire.  Returns the number of events processed."""
        processed = 0
        while self._heap:
            when, _, timer = self._heap[0]
            if until is not None and when > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            fn, args = timer.fn, timer.args
            timer.fn, timer.args = None, ()  # break refcycles early
            fn(*args)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        else:
            if until is not None and until > self._now:
                self._now = until
        return processed

    def run_until(self, fut: Future, limit: Optional[int] = None) -> Any:
        """Run until ``fut`` completes; raise if the simulation stalls first."""
        while not fut.done():
            if not self._heap:
                raise DeadlockError(
                    f"event heap drained at t={self._now}ns but {fut!r} is still "
                    "pending (simulation deadlock)"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise TimeoutError(
                    f"{fut!r} still pending at virtual time limit {limit}ns"
                )
            self.run(max_events=1)
        return fut.result()

    @property
    def events_processed(self) -> int:
        """Total events fired over the kernel's lifetime (for diagnostics)."""
        return self._events_processed

    def pending_events(self) -> int:
        """Live (non-cancelled) timers still queued."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)

    def failed_tasks(self) -> Iterable[Task]:
        """Tasks that completed with an exception (useful in test asserts)."""
        return [
            t
            for t in self._tasks
            if t.done() and not t.cancelled() and t.exception() is not None
        ]

    def check_tasks(self) -> None:
        """Re-raise the first exception stored in any spawned task."""
        for task in self.failed_tasks():
            raise task.exception()


class DeadlockError(RuntimeError):
    """The event heap drained while some awaited future was still pending."""
