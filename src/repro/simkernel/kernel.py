"""The virtual-time event loop.

A :class:`Kernel` owns the clock (integer nanoseconds), a binary heap of
timers, and the root of every named RNG stream.  It is single-threaded and
fully deterministic: two runs with the same configuration and seed produce
identical event sequences.

Hot-path design (the simulator spends most of its wall-clock time here):

* two scheduling paths share one heap and one sequence counter, so event
  *order* is identical whichever a caller uses: :meth:`Kernel.call_at`
  returns a cancellable :class:`Timer` handle, while :meth:`Kernel.post_at`
  is the fire-and-forget path that pushes a bare ``(fn, args)`` tuple —
  no handle object is ever allocated, which is what the per-packet
  machinery (links, host CPUs, pipes) uses;
* live-timer accounting is O(1): a maintained counter is incremented on
  schedule and decremented on fire/cancel, so the ``pending_timers``
  metrics probe never scans the heap;
* cancellation is lazy (the heap entry stays until popped), but when
  cancelled entries dominate a large heap the kernel compacts it in place,
  so a long idle simulation that cancelled thousands of retransmission
  timers doesn't drag them along forever.  Compaction preserves event
  order exactly because heap keys ``(when, seq)`` are unique.
"""

from __future__ import annotations

import hashlib
import random
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Coroutine, Iterable, Optional

from ..analyze.sanitize import kernel_sanitizer
from ..metrics.registry import MetricsRegistry
from .futures import _PENDING, Future, Task

# timer-heap depth buckets: powers of four up to a million timers
HEAP_DEPTH_EDGES = (4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)

# Same-time tie-break mask XORed into every heap sequence key.  0 is the
# production FIFO order; repro.analyze.perturb installs non-zero masks
# (reversal, seed-shuffle) to prove results don't depend on the order of
# equal-timestamp events.  XOR is a bijection, so keys stay unique and
# compaction stays order-preserving under any mask.  Module-level so the
# race detector reaches kernels constructed deep inside the bench
# harness; individual kernels can override via ``tiebreak_mask=``.
DEFAULT_TIEBREAK_MASK = 0


class Timer:
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("when", "fn", "args", "cancelled", "_kernel")

    def __init__(
        self, when: int, fn: Callable, args: tuple, kernel: Optional["Kernel"] = None
    ) -> None:
        self.when = when
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for live-timer accounting; detached (set to None)
        # when the timer fires, so a late cancel() is a pure no-op.
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        kernel = self._kernel
        if kernel is not None:
            self._kernel = None
            kernel._note_cancelled()


class Kernel:
    """Discrete-event loop with an integer nanosecond virtual clock."""

    # lazy-deletion compaction policy: rebuild the heap once it holds at
    # least COMPACT_MIN_HEAP entries and more than half are cancelled
    COMPACT_MIN_HEAP = 1024

    def __init__(
        self,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tiebreak_mask: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self._now = 0
        # entries are (when, seq ^ mask, Timer) from call_at or (when,
        # seq ^ mask, (fn, args)) from post_at; (when, seq ^ mask) is
        # unique so the third element is never compared
        self._heap: list[tuple] = []
        self._seq = 0
        self._seq_mask = (
            DEFAULT_TIEBREAK_MASK if tiebreak_mask is None else tiebreak_mask
        )
        # None unless REPRO_SANITIZE / enable_sanitizers() is on, so the
        # run loops pay one is-None test per event (the metrics pattern)
        self._san = kernel_sanitizer(self)
        self._events_processed = 0
        self._live_events = 0  # scheduled, not yet fired or cancelled
        self._cancelled_in_heap = 0  # lazy-deleted entries awaiting pop
        self._compactions = 0
        self._tasks: list[Task] = []
        self._rng_cache: dict[str, random.Random] = {}
        # The kernel owns the metrics registry every layer registers into.
        # Metric registration never touches the RNG machinery, so streams
        # are identical whether or not a simulation is instrumented.
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        scope = self.metrics.scope("kernel")
        scope.probe("events_processed", lambda: self._events_processed)
        scope.probe("pending_timers", self.pending_events)
        scope.probe("cancelled_in_heap", lambda: self._cancelled_in_heap)
        scope.probe("heap_compactions", lambda: self._compactions)
        scope.probe("tasks_spawned", lambda: len(self._tasks))
        scope.probe("now_ns", lambda: self._now)
        # heap-depth histogram observed on every schedule; None when the
        # registry is disabled so the hot path pays only this check
        self._heap_depth_hist = (
            scope.histogram("timer_heap_depth", HEAP_DEPTH_EDGES)
            if self.metrics.enabled
            else None
        )

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds since simulation start."""
        return self._now

    # -- randomness ------------------------------------------------------
    def rng(self, label: str) -> random.Random:
        """A reproducible RNG stream named ``label``.

        The stream seed is a stable hash of ``(kernel seed, label)`` so
        adding a new consumer never perturbs existing streams.  Streams
        are cached per label: asking twice for the same label returns the
        *same* generator (continuing its sequence), and the SHA-256
        derivation is paid once per label, not once per call.
        """
        stream = self._rng_cache.get(label)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._rng_cache[label] = stream
        return stream

    # -- scheduling ------------------------------------------------------
    def call_at(self, when: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        timer = Timer(when, fn, args, self)
        self._seq = seq = self._seq + 1
        heappush(self._heap, (when, seq ^ self._seq_mask, timer))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))
        return timer

    def call_after(self, delay: int, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # body of call_at inlined (minus the past-check: now+delay >= now)
        timer = Timer(self._now + delay, fn, args, self)
        self._seq = seq = self._seq + 1
        heappush(self._heap, (timer.when, seq ^ self._seq_mask, timer))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))
        return timer

    def post_at(self, when: int, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`call_at`: no cancellable handle.

        The cheap-construction scheduling path for high-churn callers
        (per-packet link/CPU completions) that never cancel: it allocates
        one tuple instead of a :class:`Timer`.  Ordering is identical to
        ``call_at`` — both share the clock and sequence counter.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (when, seq ^ self._seq_mask, (fn, args)))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))

    def post_after(self, delay: int, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`call_after` (see :meth:`post_at`).

        This is the single hottest scheduling call in a run (every link
        hop, CPU charge, and pipe transfer lands here), so the
        :meth:`post_at` body is inlined rather than delegated.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self._now + delay, seq ^ self._seq_mask, (fn, args)))
        self._live_events += 1
        hist = self._heap_depth_hist
        if hist is not None:
            hist.observe(len(self._heap))

    def call_window(
        self,
        start: int,
        end: Optional[int],
        on_fn: Callable,
        off_fn: Callable,
    ) -> tuple:
        """Run ``on_fn`` at ``start`` and ``off_fn`` at ``end``.

        The primitive behind fault-scenario arming (repro.faults): a
        window that is already open (``start <= now``) switches on
        immediately; ``end=None`` means the window never closes.
        Returns ``(start_timer, end_timer)`` with ``None`` for legs that
        ran inline or don't exist.
        """
        if end is not None and end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        if end is not None and end <= self._now:
            on_fn()  # the whole window is in the past: open and close
            off_fn()
            return None, None
        if start <= self._now:
            on_fn()
            start_timer = None
        else:
            start_timer = self.call_at(start, on_fn)
        end_timer = self.call_at(end, off_fn) if end is not None else None
        return start_timer, end_timer

    def sleep(self, delay: int) -> Future:
        """Future that completes ``delay`` ns from now (``await kernel.sleep(d)``)."""
        fut = Future(name="sleep")  # static name: one sleep per compute phase
        self.post_after(delay, fut.set_result, None)
        return fut

    def spawn(self, coro: Coroutine, name: str = "") -> Task:
        """Wrap a coroutine into a task and start it immediately."""
        task = Task(coro, name=name)
        self._tasks.append(task)
        task.start()
        return task

    # -- heap maintenance --------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account one Timer.cancel(); compact if dead entries dominate."""
        self._live_events -= 1
        self._cancelled_in_heap += 1
        heap_size = len(self._heap)
        if heap_size >= self.COMPACT_MIN_HEAP and 2 * self._cancelled_in_heap > heap_size:
            self._compact()

    def _compact(self) -> None:
        """Drop lazily-deleted entries and re-heapify, in place.

        Order-preserving: heap keys ``(when, seq)`` are unique, so any
        valid heap over the surviving entries pops in the same total
        order.  In-place (slice assignment) so a ``run()`` loop holding a
        reference to the heap list sees the compacted state.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if type(entry[2]) is not Timer or not entry[2].cancelled
        ]
        heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` fire.  Returns the number of events processed."""
        heap = self._heap  # _compact() mutates in place, never rebinds
        san = self._san
        processed = 0
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if until is not None and when > until:
                    self._now = until
                    return processed
                heappop(heap)
                obj = entry[2]
                if type(obj) is Timer:
                    if obj.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    obj._kernel = None  # fired: later cancel() is a no-op
                    fn = obj.fn
                    args = obj.args
                    obj.fn, obj.args = None, ()  # break refcycles early
                else:
                    fn, args = obj
                self._live_events -= 1
                if san is not None:
                    san.on_fire(when)
                self._now = when
                fn(*args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    return processed
            if until is not None and until > self._now:
                self._now = until
            return processed
        finally:
            self._events_processed += processed

    def run_until(self, fut: Future, limit: Optional[int] = None) -> Any:
        """Run until ``fut`` completes; raise if the simulation stalls first.

        This is the driver every ``World.run`` sits in, so the one-event
        step is inlined rather than paying a full :meth:`run` call per
        event (frame setup, try/finally, loop re-entry); semantics and
        event order are identical to ``run(max_events=1)`` in a loop.
        """
        heap = self._heap  # _compact() mutates in place, never rebinds
        san = self._san
        processed = 0
        try:
            if limit is None:
                # no-limit variant: pop-and-unpack directly, no peek and no
                # per-event limit test (this is the common World.run path)
                pop = heappop  # local: one global lookup per run, not per event
                while fut._state is _PENDING:
                    if not heap:
                        raise DeadlockError(
                            f"event heap drained at t={self._now}ns but {fut!r} "
                            "is still pending (simulation deadlock)"
                        )
                    when, _seq, obj = pop(heap)
                    if type(obj) is Timer:
                        if obj.cancelled:
                            self._cancelled_in_heap -= 1
                            continue
                        obj._kernel = None  # fired: later cancel() is a no-op
                        fn = obj.fn
                        args = obj.args
                        obj.fn, obj.args = None, ()  # break refcycles early
                    else:
                        fn, args = obj
                    self._live_events -= 1
                    if san is not None:
                        san.on_fire(when)
                    self._now = when
                    fn(*args)
                    processed += 1
                return fut.result()
            # fut._state check == Future.done(), minus a method call per event
            while fut._state is _PENDING:
                if not heap:
                    raise DeadlockError(
                        f"event heap drained at t={self._now}ns but {fut!r} is "
                        "still pending (simulation deadlock)"
                    )
                entry = heap[0]
                if entry[0] > limit:
                    raise TimeoutError(
                        f"{fut!r} still pending at virtual time limit {limit}ns"
                    )
                heappop(heap)
                obj = entry[2]
                if type(obj) is Timer:
                    if obj.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    obj._kernel = None  # fired: later cancel() is a no-op
                    fn = obj.fn
                    args = obj.args
                    obj.fn, obj.args = None, ()  # break refcycles early
                else:
                    fn, args = obj
                self._live_events -= 1
                if san is not None:
                    san.on_fire(entry[0])
                self._now = entry[0]
                fn(*args)
                processed += 1
        finally:
            self._events_processed += processed
        return fut.result()

    @property
    def events_processed(self) -> int:
        """Total events fired over the kernel's lifetime (for diagnostics)."""
        return self._events_processed

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued — O(1), maintained."""
        return self._live_events

    @property
    def heap_compactions(self) -> int:
        """Times the timer heap was compacted (for diagnostics/tests)."""
        return self._compactions

    def failed_tasks(self) -> Iterable[Task]:
        """Tasks that completed with an exception (useful in test asserts)."""
        return [
            t
            for t in self._tasks
            if t.done() and not t.cancelled() and t.exception() is not None
        ]

    def check_tasks(self) -> None:
        """Re-raise the first exception stored in any spawned task."""
        for task in self.failed_tasks():
            raise task.exception()


class DeadlockError(RuntimeError):
    """The event heap drained while some awaited future was still pending."""
