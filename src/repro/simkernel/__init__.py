"""Deterministic virtual-time discrete-event kernel.

This package is the foundation every other subsystem (network links,
transport protocol timers, MPI processes) runs on.  It provides:

* :class:`~repro.simkernel.kernel.Kernel` -- the event loop with an integer
  nanosecond clock and cancellable timers,
* :class:`~repro.simkernel.futures.Future` / :class:`~repro.simkernel.futures.Task`
  -- asyncio-like primitives driven by the virtual clock instead of wall time,
* synchronisation helpers (:func:`~repro.simkernel.sync.wait_all`,
  :func:`~repro.simkernel.sync.wait_any`, :class:`~repro.simkernel.sync.AsyncEvent`,
  :class:`~repro.simkernel.sync.AsyncQueue`),
* unit helpers for time and bandwidth arithmetic.

Determinism rules: time is integral (ns), ties are broken by insertion
sequence number, and every stochastic component draws from a named RNG
stream derived from the kernel seed (``kernel.rng("link.loss.h0")``), so a
simulation is a pure function of its configuration and seed.
"""

from .futures import CancelledError, Future, Task
from .kernel import Kernel, Timer, WatchdogExpired
from .sync import AsyncEvent, AsyncQueue, wait_all, wait_any
from .units import GBIT_PER_S, MBIT_PER_S, MICROSECOND, MILLISECOND, SECOND, tx_time_ns

__all__ = [
    "AsyncEvent",
    "AsyncQueue",
    "CancelledError",
    "Future",
    "GBIT_PER_S",
    "Kernel",
    "MBIT_PER_S",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "Task",
    "Timer",
    "WatchdogExpired",
    "tx_time_ns",
    "wait_all",
    "wait_any",
]
