"""Synchronisation helpers built on :class:`~repro.simkernel.futures.Future`.

These are the small set of coordination tools simulation code needs:
barrier-style ``wait_all``, select-style ``wait_any``, a level-triggered
event, and an unbounded async queue (used by e.g. the MPI manager/worker
workloads).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Sequence

from .futures import _PENDING, Future


def wait_all(futures: Sequence[Future]) -> Future:
    """Future that completes with ``[f.result() for f in futures]``.

    Completes with the first exception instead if any input fails.
    """
    futures = list(futures)
    out = Future(name=f"wait_all({len(futures)})")
    remaining = len(futures)
    if remaining == 0:
        out.set_result([])
        return out

    def on_done(fut: Future) -> None:
        nonlocal remaining
        if out.done():
            return
        if fut.exception() is not None:
            out.set_exception(fut.exception())
            return
        remaining -= 1
        if remaining == 0:
            out.set_result([f.result() for f in futures])

    for f in futures:
        f.add_done_callback(on_done)
    return out


def wait_any(futures: Sequence[Future]) -> Future:
    """Future that completes with ``(index, result)`` of the first to finish.

    Mirrors ``MPI_Waitany``: later completions are simply ignored here (the
    caller keeps its own request list).
    """
    futures = list(futures)
    if not futures:
        raise ValueError("wait_any() requires at least one future")
    # hot path (every select/progress loop builds one): constant name and
    # direct slot reads — ``fut`` is done by callback contract.
    # Already-done fast path: resolve with the first finished input (same
    # winner the callback loop below would pick) without building any
    # closures or touching the other futures' callback lists.
    for i, f in enumerate(futures):
        if f._state is not _PENDING:
            out = Future(name="wait_any")
            if f._exception is not None:
                out.set_exception(f._exception)
            else:
                out.set_result((i, f.result()))
            return out
    out = Future(name="wait_any")

    def make_cb(index: int):
        def on_done(fut: Future) -> None:
            if out._state is not _PENDING:
                return
            if fut._exception is not None:
                out.set_exception(fut._exception)
            else:
                out.set_result((index, fut.result()))

        return on_done

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out


class AsyncEvent:
    """Level-triggered event: waiters released once :meth:`set` is called."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._set = False
        self._waiters: list[Future] = []
        self._wait_name = "event:" + name  # computed once, not per wait()

    def is_set(self) -> bool:
        """Whether the event has fired."""
        return self._set

    def set(self) -> None:
        """Fire the event, releasing current and future waiters."""
        if self._set:
            return
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)

    def clear(self) -> None:
        """Reset to the unset state (subsequent waits block again)."""
        self._set = False

    def wait(self) -> Future:
        """Future completing when the event is (or already was) set."""
        fut = Future(name=self._wait_name)
        if self._set:
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut


class AsyncQueue:
    """Unbounded FIFO with async ``get``; ``put`` never blocks."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Future] = deque()
        self._get_name = f"queue:{name}.get"  # computed once, not per get()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(item)
                return
        self._items.append(item)

    def put_many(self, items: Iterable[Any]) -> None:
        """Enqueue several items preserving order."""
        for item in items:
            self.put(item)

    def get(self) -> Future:
        """Future yielding the next item (immediately if one is queued)."""
        fut = Future(name=self._get_name)
        if self._items:
            fut.set_result(self._items.popleft())
        else:
            self._getters.append(fut)
        return fut

    def get_nowait(self) -> Any:
        """Pop an item or raise ``IndexError`` if the queue is empty."""
        return self._items.popleft()
