"""Resumable per-cell result cache.

One JSON file per cell under a cache directory (default
``.sweep-cache/``), named by the cell's content digest.  Because the
digest commits to (resolved params, code version, scale), a lookup
needs no further validation: if the file exists and round-trips, its
rows are exactly what rerunning the cell would produce.  Writes are
atomic (tmp file + ``os.replace``) so an interrupted sweep never leaves
a truncated entry behind — the resume run just recomputes that cell.

A corrupted or truncated entry (a torn disk write, a bad copy) is
never fatal: :meth:`SweepCache.get` logs a one-line warning with the
digest and reports a miss, so the runner recomputes the cell and
overwrites the bad entry on the way out.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from .spec import Cell

CACHE_SCHEMA = 1

log = logging.getLogger("repro.sweep.cache")


class SweepCache:
    """Digest-keyed cell cache rooted at one directory."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[List[Dict[str, Any]]]:
        """Cached rows for a digest, or ``None`` on any miss/mismatch.

        A missing file is a silent miss (the normal cold-cache case);
        an *existing but unusable* entry — unreadable, truncated,
        invalid JSON, schema/digest mismatch, malformed rows — is a
        logged miss: the caller recomputes and overwrites it.
        """
        path = self.path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as err:
            log.warning("cache entry %s unreadable (%s): recomputing", digest, err)
            return None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            log.warning(
                "cache entry %s corrupt/truncated (%s): recomputing", digest, err
            )
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            log.warning(
                "cache entry %s has unexpected schema: recomputing", digest
            )
            return None
        if doc.get("digest") != digest:
            log.warning(
                "cache entry %s keyed by mismatching digest %r: recomputing",
                digest,
                doc.get("digest"),
            )
            return None
        rows = doc.get("rows")
        if not isinstance(rows, list):
            log.warning("cache entry %s has malformed rows: recomputing", digest)
            return None
        return rows

    def put(self, digest: str, cell: Cell, rows: List[Dict[str, Any]]) -> None:
        """Store one cell's rows (atomically) under its digest."""
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "cell": cell.id,
            "experiment": cell.experiment,
            "params": cell.resolved,
            "rows": rows,
        }
        target = self.path(digest)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(
            json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(tmp, target)

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
