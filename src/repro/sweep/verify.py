"""The "run it twice and cmp" CI idiom as one reusable call.

Before ``repro.sweep``, every determinism gate in CI copy-pasted the
same shell: run a bench twice, ``cmp`` the outputs, maybe run it again
with ``--jobs`` and ``cmp`` that too.  :func:`verify_spec` is that
idiom for sweeps, plus the cache contract:

1. **cold serial** run into a fresh cache — the reference bytes;
2. **cold parallel** run (``--jobs N``, separate fresh cache) — merged
   document must be byte-identical to the reference;
3. **warm resume** against the serial cache — must recompute *zero*
   cells and reproduce the reference bytes;
4. **cache kill + rerun** — after ``clear()`` nothing may be served
   from cache, and the recomputed document must again match.

Any violation is returned as a human-readable failure message; an empty
list means the spec's whole execution surface is deterministic and the
cache is sound.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List, Optional

from .cache import SweepCache
from .runner import dumps_result, run_sweep
from .spec import SweepSpec


def verify_spec(
    spec: SweepSpec, jobs: int = 4, workdir: Optional[str] = None
) -> List[str]:
    """Run the four-phase determinism/cache check; failures as messages."""
    failures: List[str] = []
    with tempfile.TemporaryDirectory(dir=workdir, prefix="sweep-verify-") as tmp:
        serial_cache = SweepCache(Path(tmp) / "cache-serial")
        serial = run_sweep(spec, jobs=1, cache=serial_cache)
        reference = dumps_result(serial.doc)
        if serial.cached:
            failures.append(
                f"cold serial run was served {len(serial.cached)} cell(s) "
                "from a supposedly fresh cache"
            )

        parallel = run_sweep(
            spec, jobs=jobs, cache=SweepCache(Path(tmp) / "cache-parallel")
        )
        if dumps_result(parallel.doc) != reference:
            failures.append(
                f"--jobs {jobs} merged document differs from the serial one"
            )

        warm = run_sweep(spec, jobs=1, cache=serial_cache)
        if warm.executed:
            failures.append(
                f"warm resume recomputed {len(warm.executed)} cell(s): "
                + ", ".join(warm.executed)
            )
        if dumps_result(warm.doc) != reference:
            failures.append("warm-resume document differs from the serial one")

        serial_cache.clear()
        cold = run_sweep(spec, jobs=1, cache=serial_cache)
        if cold.cached:
            failures.append(
                f"cleared cache still served {len(cold.cached)} cell(s)"
            )
        if dumps_result(cold.doc) != reference:
            failures.append("rerun after cache clear differs from the serial one")
    return failures
