"""Declarative sweep orchestrator with resumable caching (ROADMAP item 4).

The paper's evaluation is one big parameter matrix — app x protocol x
loss x message size x fan-out.  ``repro.sweep`` makes that matrix a
*document*: a JSON/YAML spec expands into validated cells of the
:mod:`repro.bench.harness` registry, executes under a concurrency cap
with per-cell caching keyed by (config digest, code version), and
merges into one byte-stable result document.  ``repro.sweep report``
appends normalized snapshots to the committed ``BENCH_trajectory.json``
so CI and re-anchors gate on the perf/result *curve*, not one number.

Layers (each its own module, composable from Python as well as the CLI):

=============  ==========================================================
``spec``       spec parsing/validation -> expanded :class:`Cell` list
``digest``     content digests: (resolved params, code version, scale)
``cache``      digest-keyed per-cell result cache (atomic, resumable)
``runner``     cache-aware fan-out + deterministic spec-order merge
``report``     trajectory entries, trend table, simperf curve gate
``verify``     the run-twice/cmp + warm-resume CI gate as one call
=============  ==========================================================
"""

from .cache import SweepCache
from .digest import canonical_json, cell_digest, code_version, current_scale
from .report import (
    BEGIN_MARK,
    END_MARK,
    append_trajectory,
    build_entry,
    derive_summaries,
    gate_simperf,
    load_trajectory,
    render_trend_table,
    update_experiments_md,
)
from .runner import SweepRunResult, dumps_result, merge_cells, run_sweep
from .spec import Cell, SweepError, SweepSpec, cell_id, load_spec, spec_from_dict
from .verify import verify_spec

__all__ = [
    "BEGIN_MARK",
    "Cell",
    "END_MARK",
    "SweepCache",
    "SweepError",
    "SweepRunResult",
    "SweepSpec",
    "append_trajectory",
    "build_entry",
    "canonical_json",
    "cell_digest",
    "cell_id",
    "code_version",
    "current_scale",
    "derive_summaries",
    "dumps_result",
    "gate_simperf",
    "load_spec",
    "load_trajectory",
    "merge_cells",
    "render_trend_table",
    "run_sweep",
    "spec_from_dict",
    "update_experiments_md",
    "verify_spec",
]
