"""Execute a sweep: cache lookup, dirty-cell fan-out, deterministic merge.

The runner is a thin deterministic pipeline:

1. digest every cell of the (already expanded and validated) spec;
2. satisfy what it can from the :class:`~repro.sweep.cache.SweepCache`;
3. run the remaining *dirty* cells under a concurrency cap via
   :func:`repro.bench.parallel.pool_map` — the same order-preserving
   fan-out primitive the legacy ``--jobs`` bench path uses;
4. merge all rows back **in spec order**, never completion order, into
   one result document.

Steps 2-3 are the only stateful parts; the merge is a pure function
(:func:`merge_cells`) of the spec and a ``{digest: rows}`` mapping, so
the merged document is byte-identical whether cells came from the
cache, a serial run, or a shuffled parallel completion — the property
CI's ``sweep-gate`` diffs for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bench import harness
from ..bench.parallel import pool_map
from .cache import SweepCache
from .digest import canonical_json, cell_digest, code_version, current_scale
from .spec import SweepSpec

RESULT_SCHEMA = 1


@dataclass
class SweepRunResult:
    """One sweep execution: the merged document plus what actually ran."""

    doc: Dict[str, Any]
    executed: List[str] = field(default_factory=list)  # cell ids recomputed
    cached: List[str] = field(default_factory=list)  # cell ids from cache


def _run_sweep_item(item: Tuple[str, str]) -> List[Dict[str, Any]]:
    """Worker body: one (experiment, params-JSON) cell to plain rows."""
    experiment, params_json = item
    rows = harness.run_sweep_cell(experiment, json.loads(params_json))
    return [row.to_jsonable() for row in rows]


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> SweepRunResult:
    """Run every cell of ``spec`` (cache-aware) and merge the results."""
    code = code_version()
    scale = current_scale()
    digests = [
        cell_digest(cell.experiment, cell.resolved, code=code, scale=scale)
        for cell in spec.cells
    ]
    rows_by_digest: Dict[str, List[Dict[str, Any]]] = {}
    dirty = []
    cached_ids = []
    for cell, digest in zip(spec.cells, digests):
        if digest in rows_by_digest:
            # two spec cells resolving to the same computation share rows
            cached_ids.append(cell.id)
            continue
        rows = cache.get(digest) if cache is not None else None
        if rows is not None:
            rows_by_digest[digest] = rows
            cached_ids.append(cell.id)
        else:
            dirty.append((cell, digest))
    if dirty:
        items = [
            (cell.experiment, canonical_json(cell.resolved)) for cell, _ in dirty
        ]
        outputs = pool_map(_run_sweep_item, items, jobs)
        for (cell, digest), rows in zip(dirty, outputs):
            rows_by_digest[digest] = rows
            if cache is not None:
                cache.put(digest, cell, rows)
    doc = merge_cells(spec, rows_by_digest, code=code, scale=scale)
    return SweepRunResult(
        doc=doc,
        executed=[cell.id for cell, _ in dirty],
        cached=cached_ids,
    )


def merge_cells(
    spec: SweepSpec,
    rows_by_digest: Dict[str, List[Dict[str, Any]]],
    code: Optional[str] = None,
    scale: Optional[str] = None,
) -> Dict[str, Any]:
    """Pure deterministic merge: cells in spec order, whatever the
    iteration/completion order of ``rows_by_digest`` was."""
    code = code if code is not None else code_version()
    scale = scale if scale is not None else current_scale()
    cells = []
    for cell in spec.cells:
        digest = cell_digest(cell.experiment, cell.resolved, code=code, scale=scale)
        cells.append(
            {
                "id": cell.id,
                "experiment": cell.experiment,
                "params": cell.resolved,
                "digest": digest,
                "rows": rows_by_digest[digest],
            }
        )
    return {
        "schema": RESULT_SCHEMA,
        "name": spec.name,
        "code_version": code,
        "scale": scale,
        "cells": cells,
    }


def dumps_result(doc: Dict[str, Any]) -> str:
    """The byte-stable serialisation every determinism gate compares."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"
