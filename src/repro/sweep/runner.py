"""Execute a sweep: cache lookup, dirty-cell fan-out, deterministic merge.

The runner is a thin deterministic pipeline:

1. digest every cell of the (already expanded and validated) spec;
2. satisfy what it can from the :class:`~repro.sweep.cache.SweepCache`
   (a corrupted entry is a logged miss, never an abort);
3. run the remaining *dirty* cells under a concurrency cap via
   :func:`repro.bench.parallel.pool_map` — the same order-preserving
   supervised fan-out the legacy ``--jobs`` bench path uses; with a
   :class:`~repro.supervise.SupervisePolicy` (``supervise=``) the cells
   additionally get per-attempt deadlines, crash/hang detection,
   bounded deterministic retry, and quarantine;
4. merge all rows back **in spec order**, never completion order, into
   one result document.  Quarantined cells are *salvaged around*: the
   surviving cells merge byte-identically to what an unfailed run
   would have produced for them, and the document carries a structured
   ``failures`` manifest instead of the run being lost.

Steps 2-3 are the only stateful parts; the merge is a pure function
(:func:`merge_cells`) of the spec and a ``{digest: rows}`` mapping, so
the merged document is byte-identical whether cells came from the
cache, a serial run, or a shuffled parallel completion — the property
CI's ``sweep-gate`` diffs for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bench import harness
from ..bench.parallel import CellError, pool_map
from ..supervise import SupervisePolicy, supervised_map
from .cache import SweepCache
from .digest import canonical_json, cell_digest, code_version, current_scale
from .spec import SweepSpec

RESULT_SCHEMA = 1


@dataclass
class SweepRunResult:
    """One sweep execution: the merged document plus what actually ran."""

    doc: Dict[str, Any]
    executed: List[str] = field(default_factory=list)  # cell ids recomputed
    cached: List[str] = field(default_factory=list)  # cell ids from cache
    quarantined: List[str] = field(default_factory=list)  # cell ids lost
    manifest: List[Dict[str, Any]] = field(default_factory=list)


def _run_sweep_item(item: Tuple[str, str]) -> List[Dict[str, Any]]:
    """Worker body: one (experiment, params-JSON) cell to plain rows."""
    experiment, params_json = item
    try:
        rows = harness.run_sweep_cell(experiment, json.loads(params_json))
    except Exception as exc:
        # keep the failing cell's identity and resolved params in the
        # parent traceback instead of a bare multiprocessing stack
        raise CellError(
            f"sweep cell {experiment} with params {params_json} failed: {exc!r}"
        ) from exc
    return [row.to_jsonable() for row in rows]


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    supervise: Optional[SupervisePolicy] = None,
) -> SweepRunResult:
    """Run every cell of ``spec`` (cache-aware) and merge the results.

    Without ``supervise`` a failing cell raises (strict mode, the
    historical behaviour).  With a policy, dirty cells run under full
    supervision — crash/hang detection, deadlines, deterministic
    retry — and persistently failing cells are quarantined into the
    document's ``failures`` manifest while every surviving cell merges
    exactly as it would have in an unfailed run.
    """
    code = code_version()
    scale = current_scale()
    digests = [
        cell_digest(cell.experiment, cell.resolved, code=code, scale=scale)
        for cell in spec.cells
    ]
    rows_by_digest: Dict[str, List[Dict[str, Any]]] = {}
    dirty = []
    cached_ids = []
    for cell, digest in zip(spec.cells, digests):
        if digest in rows_by_digest:
            # two spec cells resolving to the same computation share rows
            cached_ids.append(cell.id)
            continue
        rows = cache.get(digest) if cache is not None else None
        if rows is not None:
            rows_by_digest[digest] = rows
            cached_ids.append(cell.id)
        else:
            dirty.append((cell, digest))
    manifest: List[Dict[str, Any]] = []
    quarantined: List[str] = []
    executed: List[str] = []
    if dirty:
        items = [
            (cell.experiment, canonical_json(cell.resolved)) for cell, _ in dirty
        ]
        ids = [cell.id for cell, _ in dirty]
        if supervise is None:
            outputs = pool_map(_run_sweep_item, items, jobs, task_ids=ids)
        else:
            outcome = supervised_map(
                _run_sweep_item,
                items,
                jobs=max(1, jobs),
                policy=supervise,
                task_ids=ids,
            )
            outputs = outcome.results
            manifest = [
                {"cell": rec["task"], "outcome": rec["outcome"],
                 "attempts": rec["attempts"]}
                for rec in outcome.manifest
            ]
            quarantined = list(outcome.quarantined)
        for (cell, digest), rows in zip(dirty, outputs):
            if rows is None and cell.id in quarantined:
                continue  # salvage: quarantined cells just don't merge
            rows_by_digest[digest] = rows
            executed.append(cell.id)
            if cache is not None:
                cache.put(digest, cell, rows)
    # only *quarantined* records go into the document: a recovered cell
    # holds exactly the data an unfailed run produces, and the document
    # must stay a pure function of its data (the determinism gates cmp
    # documents, and a transient crash-then-recover must not flake them)
    lost = [rec for rec in manifest if rec["outcome"] == "quarantined"]
    doc = merge_cells(
        spec, rows_by_digest, code=code, scale=scale, failures=lost or None
    )
    return SweepRunResult(
        doc=doc,
        executed=executed,
        cached=cached_ids,
        quarantined=quarantined,
        manifest=manifest,
    )


def merge_cells(
    spec: SweepSpec,
    rows_by_digest: Dict[str, List[Dict[str, Any]]],
    code: Optional[str] = None,
    scale: Optional[str] = None,
    failures: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Pure deterministic merge: cells in spec order, whatever the
    iteration/completion order of ``rows_by_digest`` was.

    With ``failures`` (a supervision manifest), cells whose digest is
    absent from ``rows_by_digest`` are treated as quarantined and
    skipped — partial-result salvage — and the manifest is embedded
    under ``failures``.  Without it, a missing digest is a programming
    error and raises, exactly as before.
    """
    code = code if code is not None else code_version()
    scale = scale if scale is not None else current_scale()
    cells = []
    for cell in spec.cells:
        digest = cell_digest(cell.experiment, cell.resolved, code=code, scale=scale)
        if failures is not None and digest not in rows_by_digest:
            continue  # quarantined: recorded in the manifest instead
        cells.append(
            {
                "id": cell.id,
                "experiment": cell.experiment,
                "params": cell.resolved,
                "digest": digest,
                "rows": rows_by_digest[digest],
            }
        )
    doc: Dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "name": spec.name,
        "code_version": code,
        "scale": scale,
        "cells": cells,
    }
    if failures:
        # only present when something actually failed, so an unfailed
        # supervised run's document stays byte-identical to a plain one
        doc["failures"] = failures
    return doc


def dumps_result(doc: Dict[str, Any]) -> str:
    """The byte-stable serialisation every determinism gate compares."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"
