"""Persistent perf/result trajectory: the repo's committed curve.

``BENCH_trajectory.json`` is an append-only list of normalized
snapshots — one per recorded sweep run — so re-anchors and CI see how
the reproduction's results and simulator performance move over time
instead of a single latest number.  Each entry records:

* ``run_id`` — short digest of (git sha, merged-sweep digest);
* ``git_sha`` / ``date`` — the commit the sweep ran at and its commit
  date (commit metadata, not wall clock, so entries stay deterministic
  for a given tree);
* ``cells`` — per-cell numeric scores distilled from the merged sweep
  document (label -> metric -> value);
* ``simperf`` — the calibration-normalized scores from
  ``benchmarks/bench_simperf.py``, the hardware-independent perf curve
  the trajectory CI gate compares against.

The gate (:func:`gate_simperf`) fails when any normalized simperf score
drops more than a threshold below the *last committed* entry — the
sweep-era replacement for the old fixed-baseline perf-smoke check.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional

from .digest import canonical_json

TRAJECTORY_SCHEMA = 1
BEGIN_MARK = "<!-- sweep-trajectory:begin -->"
END_MARK = "<!-- sweep-trajectory:end -->"

# simperf benches get one trend-table column each, in this order
_SIMPERF_COLUMNS = ("kernel_events", "timer_churn", "link_packets", "fig8_cell")


def _git(args: List[str]) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    value = out.stdout.strip()
    return value if out.returncode == 0 and value else None


def build_entry(
    sweep_doc: Dict[str, Any],
    simperf_doc: Optional[Dict[str, Any]] = None,
    git_sha: Optional[str] = None,
    date: Optional[str] = None,
) -> Dict[str, Any]:
    """Normalize one merged sweep document into a trajectory entry."""
    if git_sha is None:
        git_sha = _git(["rev-parse", "HEAD"]) or "unknown"
    if date is None:
        date = _git(["show", "-s", "--format=%cs", "HEAD"]) or "unknown"
    sweep_digest = hashlib.sha256(canonical_json(sweep_doc).encode()).hexdigest()
    run_id = hashlib.sha256(f"{git_sha}:{sweep_digest}".encode()).hexdigest()[:12]
    cells: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell in sweep_doc.get("cells", []):
        scores: Dict[str, Dict[str, float]] = {}
        for row in cell.get("rows", []):
            numeric = {
                key: value
                for key, value in row.get("measured", {}).items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            if numeric:
                scores[row.get("label", "?")] = numeric
        cells[cell["id"]] = scores
    entry: Dict[str, Any] = {
        "schema": TRAJECTORY_SCHEMA,
        "run_id": run_id,
        "git_sha": git_sha,
        "date": date,
        "sweep": sweep_doc.get("name", "?"),
        "scale": sweep_doc.get("scale", "?"),
        "code_version": sweep_doc.get("code_version", "?"),
        "cells": cells,
    }
    if simperf_doc is not None:
        entry["simperf"] = {
            name: bench["normalized"]
            for name, bench in sorted(simperf_doc.get("benches", {}).items())
            if isinstance(bench, dict) and "normalized" in bench
        }
    return entry


def load_trajectory(path: str) -> Dict[str, Any]:
    """The trajectory document at ``path``, or a fresh empty one."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    return doc


def append_trajectory(path: str, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append one entry to the trajectory file (created if missing)."""
    doc = load_trajectory(path)
    doc["entries"].append(entry)
    Path(path).write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return doc


def gate_simperf(
    last_entry: Optional[Dict[str, Any]],
    entry: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Regression messages vs the last committed entry (empty = pass).

    Only simperf normalized scores gate — sweep cell scores are virtual
    -time results whose drift means a *behaviour* change, which the
    determinism gates already catch far more precisely.
    """
    if not last_entry:
        return []
    baseline = last_entry.get("simperf") or {}
    current = entry.get("simperf") or {}
    if baseline and not current:
        return ["trajectory entry has no simperf scores but the last entry does"]
    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: present in last trajectory entry but not now")
            continue
        floor = base * (1.0 - max_regression)
        if cur < floor:
            failures.append(
                f"{name}: normalized score {cur:.4f} is "
                f"{1 - cur / base:.0%} below the last trajectory entry's "
                f"{base:.4f} (allowed: {max_regression:.0%})"
            )
    return failures


def render_trend_table(trajectory: Dict[str, Any], limit: int = 12) -> str:
    """Markdown trend table over the trajectory's most recent entries."""
    entries = trajectory.get("entries", [])[-limit:]
    header = ["run", "date", "git", "scale", "cells"]
    header += [f"{name} (norm)" for name in _SIMPERF_COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for entry in entries:
        simperf = entry.get("simperf") or {}
        row = [
            entry.get("run_id", "?"),
            entry.get("date", "?"),
            str(entry.get("git_sha", "?"))[:9],
            entry.get("scale", "?"),
            str(len(entry.get("cells", {}))),
        ]
        for name in _SIMPERF_COLUMNS:
            value = simperf.get(name)
            row.append(f"{value:.3f}" if isinstance(value, (int, float)) else "—")
        lines.append("| " + " | ".join(row) + " |")
    if not entries:
        lines.append("| _no recorded runs yet_ |" + " |" * (len(header) - 1))
    return "\n".join(lines)


def update_experiments_md(path: str, trajectory: Dict[str, Any]) -> None:
    """Rewrite the generated trend table between the EXPERIMENTS.md
    markers (the section is appended if the markers are missing)."""
    table = render_trend_table(trajectory)
    block = f"{BEGIN_MARK}\n{table}\n{END_MARK}"
    target = Path(path)
    text = target.read_text(encoding="utf-8") if target.is_file() else ""
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin != -1 and end != -1 and end >= begin:
        text = text[:begin] + block + text[end + len(END_MARK):]
    else:
        if text and not text.endswith("\n"):
            text += "\n"
        text += f"\n## Perf/result trajectory (generated)\n\n{block}\n"
    target.write_text(text, encoding="utf-8")
