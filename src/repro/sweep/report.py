"""Persistent perf/result trajectory: the repo's committed curve.

``BENCH_trajectory.json`` is an append-only list of normalized
snapshots — one per recorded sweep run — so re-anchors and CI see how
the reproduction's results and simulator performance move over time
instead of a single latest number.  Each entry records:

* ``run_id`` — short digest of (git sha, merged-sweep digest);
* ``git_sha`` / ``date`` — the commit the sweep ran at and its commit
  date (commit metadata, not wall clock, so entries stay deterministic
  for a given tree);
* ``cells`` — per-cell numeric scores distilled from the merged sweep
  document (label -> metric -> value);
* ``simperf`` — the calibration-normalized scores from
  ``benchmarks/bench_simperf.py``, the hardware-independent perf curve
  the trajectory CI gate compares against;
* ``derived`` — cross-cell summaries distilled from the cells: the
  SCTP/TCP metric ratio of every protocol-paired cell, and the loss
  values where a ratio crosses 1.0 (the paper's protocol-crossover
  points).  These are *recomputed* from the cells, never measured, so
  older entries without the field render identically.

The gate (:func:`gate_simperf`) fails when any normalized simperf score
drops more than a threshold below the *last committed* entry — the
sweep-era replacement for the old fixed-baseline perf-smoke check.
"""

from __future__ import annotations

import hashlib
import json
import statistics
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .digest import canonical_json

TRAJECTORY_SCHEMA = 1
BEGIN_MARK = "<!-- sweep-trajectory:begin -->"
END_MARK = "<!-- sweep-trajectory:end -->"

# simperf benches get one trend-table column each, in this order
_SIMPERF_COLUMNS = ("kernel_events", "timer_churn", "link_packets", "fig8_cell")


def _git(args: List[str]) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    value = out.stdout.strip()
    return value if out.returncode == 0 and value else None


def _parse_cell_id(cell_id: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"exp[k=v,...]"`` into (experiment, params)."""
    if "[" not in cell_id or not cell_id.endswith("]"):
        return cell_id, {}
    experiment, _, rest = cell_id.partition("[")
    params: Dict[str, str] = {}
    for part in rest[:-1].split(","):
        key, sep, value = part.partition("=")
        if sep:
            params[key] = value
    return experiment, params


def _family_key(experiment: str, params: Dict[str, str], drop: Tuple[str, ...]) -> str:
    kept = ",".join(f"{k}={v}" for k, v in params.items() if k not in drop)
    return f"{experiment}[{kept}]"


def _cell_metrics(scores: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Flatten a cell's label->metric->value rows (first label wins)."""
    flat: Dict[str, float] = {}
    for label in sorted(scores):
        for metric, value in scores[label].items():
            flat.setdefault(metric, value)
    return flat


def derive_summaries(
    cells: Dict[str, Dict[str, Dict[str, float]]],
) -> Dict[str, Any]:
    """Cross-cell summaries: SCTP/TCP ratios and loss-crossover points.

    * ``sctp_tcp_ratio`` — for every pair of cells identical except for
      ``protocol=``, the per-metric ratio sctp/tcp, keyed by the cell id
      with the protocol param removed.
    * ``loss_crossover`` — within a ratio family identical except for
      ``loss=``, the adjacent loss values between which a metric's ratio
      crosses 1.0 — i.e. where one protocol overtakes the other, the
      quantity the paper's loss sweeps exist to locate.
    """
    pairs: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cid, scores in cells.items():
        experiment, params = _parse_cell_id(cid)
        proto = params.get("protocol")
        if proto not in ("sctp", "tcp"):
            continue
        key = _family_key(experiment, params, drop=("protocol",))
        pairs.setdefault(key, {})[proto] = _cell_metrics(scores)

    ratios: Dict[str, Dict[str, float]] = {}
    for key in sorted(pairs):
        pair = pairs[key]
        if "sctp" not in pair or "tcp" not in pair:
            continue
        cell_ratios = {
            metric: sctp_value / pair["tcp"][metric]
            for metric, sctp_value in sorted(pair["sctp"].items())
            if pair["tcp"].get(metric)  # shared metric, nonzero denominator
        }
        if cell_ratios:
            ratios[key] = cell_ratios

    families: Dict[str, List[Tuple[float, Dict[str, float]]]] = {}
    for key, cell_ratios in ratios.items():
        experiment, params = _parse_cell_id(key)
        try:
            loss = float(params["loss"])
        except (KeyError, ValueError):
            continue
        family = _family_key(experiment, params, drop=("loss",))
        families.setdefault(family, []).append((loss, cell_ratios))

    crossovers: Dict[str, List[Dict[str, float]]] = {}
    for family in sorted(families):
        points = sorted(families[family])
        found = []
        for metric in sorted({m for _, r in points for m in r}):
            series = [(loss, r[metric]) for loss, r in points if metric in r]
            for (lo_loss, lo_ratio), (hi_loss, hi_ratio) in zip(series, series[1:]):
                if (lo_ratio - 1.0) * (hi_ratio - 1.0) < 0:
                    found.append(
                        {
                            "metric": metric,
                            "loss_below": lo_loss,
                            "loss_above": hi_loss,
                            "ratio_below": lo_ratio,
                            "ratio_above": hi_ratio,
                        }
                    )
        if found:
            crossovers[family] = found
    return {"sctp_tcp_ratio": ratios, "loss_crossover": crossovers}


def build_entry(
    sweep_doc: Dict[str, Any],
    simperf_doc: Optional[Dict[str, Any]] = None,
    git_sha: Optional[str] = None,
    date: Optional[str] = None,
) -> Dict[str, Any]:
    """Normalize one merged sweep document into a trajectory entry."""
    if git_sha is None:
        git_sha = _git(["rev-parse", "HEAD"]) or "unknown"
    if date is None:
        date = _git(["show", "-s", "--format=%cs", "HEAD"]) or "unknown"
    sweep_digest = hashlib.sha256(canonical_json(sweep_doc).encode()).hexdigest()
    run_id = hashlib.sha256(f"{git_sha}:{sweep_digest}".encode()).hexdigest()[:12]
    cells: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell in sweep_doc.get("cells", []):
        scores: Dict[str, Dict[str, float]] = {}
        for row in cell.get("rows", []):
            numeric = {
                key: value
                for key, value in row.get("measured", {}).items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            if numeric:
                scores[row.get("label", "?")] = numeric
        cells[cell["id"]] = scores
    entry: Dict[str, Any] = {
        "schema": TRAJECTORY_SCHEMA,
        "run_id": run_id,
        "git_sha": git_sha,
        "date": date,
        "sweep": sweep_doc.get("name", "?"),
        "scale": sweep_doc.get("scale", "?"),
        "code_version": sweep_doc.get("code_version", "?"),
        "cells": cells,
        "derived": derive_summaries(cells),
    }
    failures = sweep_doc.get("failures")
    if failures:
        # a salvaged partial run: record what was lost alongside what
        # survived, so the trajectory shows the run was degraded
        entry["failures"] = failures
    if simperf_doc is not None:
        entry["simperf"] = {
            name: bench["normalized"]
            for name, bench in sorted(simperf_doc.get("benches", {}).items())
            if isinstance(bench, dict) and "normalized" in bench
        }
    return entry


def load_trajectory(path: str) -> Dict[str, Any]:
    """The trajectory document at ``path``, or a fresh empty one."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    return doc


def append_trajectory(path: str, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append one entry to the trajectory file (created if missing)."""
    doc = load_trajectory(path)
    doc["entries"].append(entry)
    Path(path).write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return doc


def gate_simperf(
    last_entry: Optional[Dict[str, Any]],
    entry: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Regression messages vs the last committed entry (empty = pass).

    Only simperf normalized scores gate — sweep cell scores are virtual
    -time results whose drift means a *behaviour* change, which the
    determinism gates already catch far more precisely.
    """
    if not last_entry:
        return []
    baseline = last_entry.get("simperf") or {}
    current = entry.get("simperf") or {}
    if baseline and not current:
        return ["trajectory entry has no simperf scores but the last entry does"]
    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: present in last trajectory entry but not now")
            continue
        floor = base * (1.0 - max_regression)
        if cur < floor:
            failures.append(
                f"{name}: normalized score {cur:.4f} is "
                f"{1 - cur / base:.0%} below the last trajectory entry's "
                f"{base:.4f} (allowed: {max_regression:.0%})"
            )
    return failures


def render_trend_table(trajectory: Dict[str, Any], limit: int = 12) -> str:
    """Markdown trend table over the trajectory's most recent entries."""
    entries = trajectory.get("entries", [])[-limit:]
    header = ["run", "date", "git", "scale", "cells", "sctp/tcp (med)", "crossovers"]
    header += [f"{name} (norm)" for name in _SIMPERF_COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for entry in entries:
        simperf = entry.get("simperf") or {}
        # entries predating the derived field are summarized on the fly
        derived = entry.get("derived") or derive_summaries(entry.get("cells") or {})
        ratio_values = [
            value
            for cell in derived.get("sctp_tcp_ratio", {}).values()
            for value in cell.values()
        ]
        n_crossovers = sum(
            len(points) for points in derived.get("loss_crossover", {}).values()
        )
        row = [
            entry.get("run_id", "?"),
            entry.get("date", "?"),
            str(entry.get("git_sha", "?"))[:9],
            entry.get("scale", "?"),
            str(len(entry.get("cells", {}))),
            f"{statistics.median(ratio_values):.3f}" if ratio_values else "—",
            str(n_crossovers) if ratio_values else "—",
        ]
        for name in _SIMPERF_COLUMNS:
            value = simperf.get(name)
            row.append(f"{value:.3f}" if isinstance(value, (int, float)) else "—")
        lines.append("| " + " | ".join(row) + " |")
    if not entries:
        lines.append("| _no recorded runs yet_ |" + " |" * (len(header) - 1))
    return "\n".join(lines)


def update_experiments_md(path: str, trajectory: Dict[str, Any]) -> None:
    """Rewrite the generated trend table between the EXPERIMENTS.md
    markers (the section is appended if the markers are missing)."""
    table = render_trend_table(trajectory)
    block = f"{BEGIN_MARK}\n{table}\n{END_MARK}"
    target = Path(path)
    text = target.read_text(encoding="utf-8") if target.is_file() else ""
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin != -1 and end != -1 and end >= begin:
        text = text[:begin] + block + text[end + len(END_MARK):]
    else:
        if text and not text.endswith("\n"):
            text += "\n"
        text += f"\n## Perf/result trajectory (generated)\n\n{block}\n"
    target.write_text(text, encoding="utf-8")
