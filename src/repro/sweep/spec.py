"""Declarative sweep specs: the parameter matrix as a document.

A spec is a JSON (or YAML, when PyYAML happens to be installed — it is
deliberately *not* a dependency) document describing one named sweep as
a list of blocks, each of which expands to cells of one experiment from
the :mod:`repro.bench.harness` registry::

    {
      "name": "smoke",
      "description": "CI smoke sweep",
      "sweeps": [
        {
          "experiment": "pingpong",
          "matrix": {"protocol": ["tcp", "sctp"], "loss": [0.0, 0.01]},
          "params": {"size": 30720, "iterations": 12}
        },
        {
          "experiment": "farm",
          "cells": [
            {"protocol": "tcp", "size_label": "short", "loss": 0.0},
            {"protocol": "sctp", "size_label": "short", "loss": 0.0}
          ],
          "params": {"fanout": 1, "num_tasks": 40}
        }
      ]
    }

Per block, exactly one of:

* ``matrix`` — cross-product axes: every combination of the listed
  values becomes a cell (values vary fastest in the *last* listed axis);
* ``cells`` — an explicit list of parameter points;

and optionally ``params``: parameters fixed for every cell of the
block.  Any registry parameter — axis or free (seed, iterations,
fault ``scenario``, ...) — may appear in either place, but not both.

Expansion is eager and fully validated: unknown experiments, unknown or
illegal parameter values, empty products, and duplicate cell ids all
raise :class:`SweepError` at load time, before any simulation runs.
Cell ids are canonical (``experiment[axis=...,param=...]`` with axes in
registry order, then free params sorted), so the same spec always
yields the same ids in the same order — the order every merged result
document uses.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..bench import harness


class SweepError(ValueError):
    """A sweep spec is malformed (raised at load/expansion time)."""


@dataclass(frozen=True)
class Cell:
    """One expanded sweep cell.

    ``params`` is the spec's explicit view (what the document said);
    ``resolved`` is the validated, default-filled view the runner
    executes and the content digest is computed over.
    """

    id: str
    experiment: str
    params: Dict[str, Any]
    resolved: Dict[str, Any]


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully expanded sweep: cells in canonical spec order."""

    name: str
    description: str
    cells: Tuple[Cell, ...]

    def experiments(self) -> List[str]:
        """Distinct experiment names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.experiment, None)
        return list(seen)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    if isinstance(value, (list, tuple)):
        return "(" + "+".join(_fmt_value(v) for v in value) + ")"
    return str(value)


def cell_id(experiment: str, params: Mapping[str, Any]) -> str:
    """Canonical cell id: axes in registry order, then sorted extras."""
    axis_order = harness.sweep_axis_names(experiment)
    ordered = [name for name in axis_order if name in params]
    ordered += sorted(name for name in params if name not in axis_order)
    inner = ",".join(f"{name}={_fmt_value(params[name])}" for name in ordered)
    return f"{experiment}[{inner}]"


_TOP_KEYS = {"name", "description", "schema", "sweeps"}
_BLOCK_KEYS = {"experiment", "matrix", "cells", "params"}


def spec_from_dict(doc: Any) -> SweepSpec:
    """Expand and validate a spec document into a :class:`SweepSpec`."""
    if not isinstance(doc, Mapping):
        raise SweepError("sweep spec must be a mapping")
    unknown_top = sorted(set(doc) - _TOP_KEYS)
    if unknown_top:
        raise SweepError(f"unknown top-level key(s): {', '.join(unknown_top)}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise SweepError("sweep spec needs a non-empty string 'name'")
    description = doc.get("description", "")
    blocks = doc.get("sweeps")
    if not isinstance(blocks, list) or not blocks:
        raise SweepError("sweep spec needs a non-empty 'sweeps' list")

    cells: List[Cell] = []
    seen_ids: Dict[str, str] = {}
    for index, block in enumerate(blocks):
        where = f"sweeps[{index}]"
        if not isinstance(block, Mapping):
            raise SweepError(f"{where}: block must be a mapping")
        unknown = sorted(set(block) - _BLOCK_KEYS)
        if unknown:
            raise SweepError(f"{where}: unknown key(s): {', '.join(unknown)}")
        experiment = block.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise SweepError(f"{where}: needs an 'experiment' name")
        if experiment not in harness.sweep_experiments():
            raise SweepError(
                f"{where}: unknown experiment {experiment!r} "
                f"(known: {', '.join(harness.sweep_experiments())})"
            )
        base = block.get("params", {})
        if not isinstance(base, Mapping):
            raise SweepError(f"{where}: 'params' must be a mapping")
        points = _expand_points(block, where)
        for point in points:
            clash = sorted(set(point) & set(base))
            if clash:
                raise SweepError(
                    f"{where}: parameter(s) set both per-cell and in 'params': "
                    f"{', '.join(clash)}"
                )
            params = {**base, **point}
            try:
                resolved = harness.resolve_sweep_params(experiment, params)
            except ValueError as err:
                raise SweepError(f"{where}: {err}") from None
            cid = cell_id(experiment, params)
            if cid in seen_ids:
                raise SweepError(
                    f"{where}: duplicate cell id {cid!r} "
                    f"(first produced by {seen_ids[cid]})"
                )
            seen_ids[cid] = where
            cells.append(Cell(cid, experiment, dict(params), resolved))
    return SweepSpec(name=name, description=description, cells=tuple(cells))


def _expand_points(block: Mapping, where: str) -> List[Dict[str, Any]]:
    """One block's cell points: cross-product matrix or explicit list."""
    matrix = block.get("matrix")
    explicit = block.get("cells")
    if matrix is not None and explicit is not None:
        raise SweepError(f"{where}: use either 'matrix' or 'cells', not both")
    if explicit is not None:
        if not isinstance(explicit, list) or not explicit:
            raise SweepError(f"{where}: 'cells' must be a non-empty list")
        points = []
        for j, point in enumerate(explicit):
            if not isinstance(point, Mapping):
                raise SweepError(f"{where}.cells[{j}]: cell must be a mapping")
            points.append(dict(point))
        return points
    if matrix is None:
        # a bare block is a single point made of 'params' alone
        return [{}]
    if not isinstance(matrix, Mapping) or not matrix:
        raise SweepError(f"{where}: 'matrix' must be a non-empty mapping")
    axis_names = list(matrix)
    value_lists = []
    for axis in axis_names:
        values = matrix[axis]
        if not isinstance(values, list) or not values:
            raise SweepError(
                f"{where}: matrix axis {axis!r} has an empty value list "
                "(the cross product would be empty)"
            )
        value_lists.append(values)
    return [
        dict(zip(axis_names, combo)) for combo in itertools.product(*value_lists)
    ]


def load_spec(path: str) -> SweepSpec:
    """Load a spec file (JSON always; YAML when PyYAML is importable)."""
    lower = str(path).lower()
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        raise SweepError(f"cannot read sweep spec {path}: {err}") from None
    if lower.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore[import-not-found]
        except ImportError:
            raise SweepError(
                f"{path}: YAML specs need PyYAML, which is not installed; "
                "use the JSON form instead"
            ) from None
        doc = yaml.safe_load(text)
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            raise SweepError(f"{path}: invalid JSON: {err}") from None
    return spec_from_dict(doc)
