"""Content digests: the cache key of one sweep cell.

A cell's digest commits to everything that can change its rows:

* the experiment name and the *resolved* parameter mapping (defaults
  filled in, so adding an explicit ``seed=1`` to a spec does not dirty
  a cache built without it);
* the code version — a digest over every ``src/repro`` source file, so
  any code change invalidates every cached cell (coarse on purpose:
  correctness beats cache hits, and a full smoke sweep is cheap);
* the scale switch (``REPRO_FULL``), which changes iteration counts.

Digests are pure functions of those inputs — no wall clock, no
hostnames — which is what makes a cache hit byte-equivalent to a rerun.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Optional

from ..bench.harness import full_scale

DIGEST_SCHEMA = 1

_code_version_memo: Optional[str] = None


def canonical_json(obj: Any) -> str:
    """Key-sorted, separator-normalised JSON (tuples serialise as lists)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def code_version() -> str:
    """Digest of every ``repro`` source file (memoised per process).

    Computed from file contents rather than a VCS revision so dirty
    working trees invalidate correctly and the cache works without git.
    """
    global _code_version_memo
    if _code_version_memo is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(path.relative_to(root).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _code_version_memo = hasher.hexdigest()[:16]
    return _code_version_memo


def current_scale() -> str:
    """The scale half of the cache key: ``full`` or ``scaled``."""
    return "full" if full_scale() else "scaled"


def cell_digest(
    experiment: str,
    resolved_params: Mapping[str, Any],
    code: Optional[str] = None,
    scale: Optional[str] = None,
) -> str:
    """The content digest one cell's cached rows are keyed by."""
    doc = {
        "schema": DIGEST_SCHEMA,
        "experiment": experiment,
        "params": dict(resolved_params),
        "code": code if code is not None else code_version(),
        "scale": scale if scale is not None else current_scale(),
    }
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
