"""Sweep CLI: ``python -m repro.sweep <subcommand>``.

    # run a sweep spec (resumable: cached cells are not recomputed)
    python -m repro.sweep run benchmarks/sweep_smoke.json --jobs 4 \\
        --out sweep_result.json

    # list the cells a spec expands to, without running anything
    python -m repro.sweep cells benchmarks/sweep_smoke.json

    # the CI determinism + cache gate (serial vs --jobs, warm resume,
    # cache kill) in one call
    python -m repro.sweep verify benchmarks/sweep_smoke.json --jobs 4

    # append a normalized snapshot to the committed trajectory, gate on
    # the simperf curve, and regenerate the EXPERIMENTS.md trend table
    python -m repro.sweep report --sweep sweep_result.json \\
        --simperf BENCH_simperf.json --trajectory BENCH_trajectory.json \\
        --experiments-md EXPERIMENTS.md --max-regression 0.30

Exit codes: 0 success, 1 gate/verify failure, 2 usage/spec error.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..bench.harness import ExperimentRow, format_table
from ..supervise import SupervisePolicy
from .cache import SweepCache
from .report import (
    append_trajectory,
    build_entry,
    gate_simperf,
    load_trajectory,
    update_experiments_md,
)
from .runner import dumps_result, run_sweep
from .spec import SweepError, load_spec
from .verify import verify_spec


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Declarative sweep orchestrator over the bench cell registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="run a sweep spec (cache-resumable)")
    runp.add_argument("spec", help="sweep spec path (.json, or .yaml with PyYAML)")
    runp.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard dirty cells across N worker processes")
    runp.add_argument("--cache", default=".sweep-cache", metavar="DIR",
                      help="per-cell result cache directory (default: .sweep-cache)")
    runp.add_argument("--no-cache", action="store_true",
                      help="recompute every cell; do not read or write the cache")
    runp.add_argument("--out", metavar="PATH", default=None,
                      help="write the merged result document (byte-stable JSON)")
    runp.add_argument("--supervise", action="store_true",
                      help="run dirty cells under supervision: crash/hang "
                      "detection, bounded deterministic retry, and quarantine "
                      "of persistently failing cells (partial-result salvage)")
    runp.add_argument("--max-attempts", type=int, default=3, metavar="N",
                      help="supervised retry budget per cell (default: 3)")
    runp.add_argument("--deadline-s", type=float, default=None, metavar="SEC",
                      help="supervised per-attempt wall-clock deadline")
    runp.add_argument("--hang-timeout-s", type=float, default=None, metavar="SEC",
                      help="kill a worker whose heartbeat goes silent this long")

    cellsp = sub.add_parser("cells", help="list a spec's expanded cells")
    cellsp.add_argument("spec")

    verifyp = sub.add_parser(
        "verify",
        help="determinism + cache gate: serial vs --jobs byte parity, "
        "zero-recompute warm resume, cache-kill rerun",
    )
    verifyp.add_argument("spec")
    verifyp.add_argument("--jobs", type=int, default=4, metavar="N")

    reportp = sub.add_parser(
        "report", help="append a trajectory entry, gate the perf curve"
    )
    reportp.add_argument("--sweep", required=True, metavar="PATH",
                         help="merged sweep result document (from 'run --out')")
    reportp.add_argument("--simperf", metavar="PATH", default=None,
                         help="bench_simperf.py --json output to record/gate")
    reportp.add_argument("--trajectory", metavar="PATH",
                         default="BENCH_trajectory.json",
                         help="trajectory file to append to (default: %(default)s)")
    reportp.add_argument("--experiments-md", metavar="PATH", default=None,
                         help="regenerate the trend table in this markdown file")
    reportp.add_argument("--max-regression", type=float, default=None,
                         metavar="FRAC",
                         help="fail if any simperf normalized score drops more "
                         "than FRAC below the last committed trajectory entry")
    reportp.add_argument("--git-sha", default=None, help=argparse.SUPPRESS)
    reportp.add_argument("--date", default=None, help=argparse.SUPPRESS)
    return parser.parse_args(argv)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 2
    cache = None if args.no_cache else SweepCache(args.cache)
    policy = None
    if args.supervise:
        policy = SupervisePolicy(
            max_attempts=args.max_attempts,
            deadline_s=args.deadline_s,
            hang_timeout_s=args.hang_timeout_s,
        )
    result = run_sweep(spec, jobs=args.jobs, cache=cache, supervise=policy)
    for cell in result.doc["cells"]:
        rows = [ExperimentRow.from_jsonable(row) for row in cell["rows"]]
        print(format_table(cell["id"], rows))
    print(
        f"\nsweep {spec.name!r}: {len(spec.cells)} cells "
        f"({len(result.executed)} executed, {len(result.cached)} from cache), "
        f"code {result.doc['code_version']}, scale {result.doc['scale']}"
    )
    for rec in result.manifest:
        attempts = ", ".join(
            f"#{a['attempt']} {a['outcome']}" for a in rec["attempts"]
        )
        print(f"  [{rec['outcome']}] {rec['cell']}: {attempts}")
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dumps_result(result.doc))
        print(f"merged result written to {args.out}")
    if result.quarantined:
        print(
            f"QUARANTINED {len(result.quarantined)} cell(s) after exhausting "
            f"retries: {', '.join(result.quarantined)} — surviving cells were "
            "salvaged into the document's 'cells'; details under 'failures'"
        )
        return 1
    return 0


def _cmd_cells(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    for cell in spec.cells:
        print(cell.id)
    print(
        f"# {len(spec.cells)} cells across "
        f"{len(spec.experiments())} experiment(s): {', '.join(spec.experiments())}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    failures = verify_spec(spec, jobs=max(2, args.jobs))
    if failures:
        print("SWEEP VERIFY FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"sweep verify OK: {len(spec.cells)} cells byte-identical serial vs "
        f"--jobs {max(2, args.jobs)}, warm resume recomputed 0 cells, "
        "cache-kill rerun reproduced the document"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with open(args.sweep, encoding="utf-8") as fh:
        sweep_doc = json.load(fh)
    simperf_doc = None
    if args.simperf is not None:
        with open(args.simperf, encoding="utf-8") as fh:
            simperf_doc = json.load(fh)
    entry = build_entry(
        sweep_doc, simperf_doc=simperf_doc, git_sha=args.git_sha, date=args.date
    )
    trajectory = load_trajectory(args.trajectory)
    last = trajectory["entries"][-1] if trajectory["entries"] else None
    if args.max_regression is not None:
        failures = gate_simperf(last, entry, args.max_regression)
        if failures:
            print("TRAJECTORY PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(
            f"trajectory perf gate OK (no simperf score "
            f">{args.max_regression:.0%} below the last entry)"
        )
    trajectory = append_trajectory(args.trajectory, entry)
    print(
        f"appended run {entry['run_id']} (git {entry['git_sha'][:9]}, "
        f"{len(entry['cells'])} cells) to {args.trajectory} "
        f"[{len(trajectory['entries'])} entries]"
    )
    if args.experiments_md is not None:
        update_experiments_md(args.experiments_md, trajectory)
        print(f"trend table regenerated in {args.experiments_md}")
    return 0


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    commands = {
        "run": _cmd_run,
        "cells": _cmd_cells,
        "verify": _cmd_verify,
        "report": _cmd_report,
    }
    try:
        return commands[args.command](args)
    except SweepError as err:
        print(f"sweep spec error: {err}")
        return 2
    except OSError as err:
        print(f"i/o error: {err}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
