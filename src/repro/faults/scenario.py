"""Declarative, deterministic fault-injection timelines.

A :class:`FaultScenario` is a named list of :class:`FaultEvent` entries
``(t_start_ns, t_end_ns, target, impairment)``.  Arming a scenario on a
cluster schedules kernel timers that install each impairment on every
matched target at ``t_start_ns`` and remove it at ``t_end_ns``
(``None`` = until the end of the run).  Targets select Dummynet pipes
by ``fnmatch`` pattern over their keys (``"h0p0"``, ``"h*p0"``,
``"*"``); the prefix ``link:`` instead matches raw links by name and
administratively downs them for the window (impairment must be a
:class:`~repro.faults.impairments.Blackhole`).

Every armed impairment is an independent :meth:`clone` of the event's
prototype, bound to its own RNG stream
``faults:<scenario>:e<idx>:<target>`` — so the same scenario object can
arm many worlds, and arming never perturbs any other random stream.
Scenarios round-trip through plain dicts/JSON for config files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence, Tuple

from .impairments import Blackhole, Impairment

LINK_PREFIX = "link:"


@dataclass(frozen=True)
class FaultEvent:
    """One timeline entry: apply ``impairment`` to ``target`` during
    ``[t_start_ns, t_end_ns)``."""

    t_start_ns: int
    t_end_ns: Optional[int]  # None: stays armed until the end of the run
    target: str
    impairment: Impairment

    def __post_init__(self) -> None:
        if self.t_start_ns < 0:
            raise ValueError(f"event start cannot be negative: {self.t_start_ns}")
        if self.t_end_ns is not None and self.t_end_ns <= self.t_start_ns:
            raise ValueError(
                f"event window is empty: [{self.t_start_ns}, {self.t_end_ns})"
            )
        if self.target.startswith(LINK_PREFIX) and not isinstance(
            self.impairment, Blackhole
        ):
            raise ValueError(
                f"link targets only support blackhole (link down), got "
                f"{self.impairment.kind!r} on {self.target!r}"
            )

    def to_dict(self) -> Dict:
        return {
            "t_start_ns": self.t_start_ns,
            "t_end_ns": self.t_end_ns,
            "target": self.target,
            "impairment": self.impairment.to_dict(),
        }

    @classmethod
    def from_dict(cls, spec: Dict) -> "FaultEvent":
        return cls(
            t_start_ns=spec["t_start_ns"],
            t_end_ns=spec.get("t_end_ns"),
            target=spec["target"],
            impairment=Impairment.from_dict(spec["impairment"]),
        )


@dataclass
class FaultScenario:
    """A named, reusable impairment timeline."""

    name: str
    events: Sequence[FaultEvent] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        self.events = tuple(self.events)

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict:
        return {"name": self.name, "events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, spec: Dict) -> "FaultScenario":
        return cls(
            name=spec["name"],
            events=tuple(FaultEvent.from_dict(e) for e in spec.get("events", ())),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))

    # -- arming -----------------------------------------------------------
    def arm(self, kernel, pipes: Dict, links: Optional[Dict] = None) -> "ArmedScenario":
        """Schedule this timeline against ``pipes`` (and ``links``).

        Raises ``ValueError`` for targets that match nothing — a typo'd
        target silently doing nothing would be a debugging trap.
        """
        armed = ArmedScenario(self, kernel)
        for idx, event in enumerate(self.events):
            if event.target.startswith(LINK_PREFIX):
                pattern = event.target[len(LINK_PREFIX):]
                matched = sorted(
                    name for name in (links or {}) if fnmatch(name, pattern)
                )
                if not matched:
                    raise ValueError(
                        f"scenario {self.name!r} event {idx}: link target "
                        f"{pattern!r} matches no link"
                    )
                for name in matched:
                    armed.add_link_window(event, links[name])
            else:
                matched = sorted(k for k in pipes if fnmatch(k, event.target))
                if not matched:
                    raise ValueError(
                        f"scenario {self.name!r} event {idx}: target "
                        f"{event.target!r} matches no Dummynet pipe"
                    )
                for key in matched:
                    imp = event.impairment.clone()
                    imp.bind(kernel, f"faults:{self.name}:e{idx}:{key}")
                    armed.add_pipe_window(event, idx, key, pipes[key], imp)
        return armed


class ArmedScenario:
    """A scenario scheduled onto one kernel: live state + metrics.

    Registers probes under ``faults.<scenario>.e<idx>.<target>.*`` so
    ``--metrics-json`` snapshots carry per-impairment seen/dropped/
    affected counts, plus a ``faults.<scenario>.active`` gauge.
    """

    def __init__(self, scenario: FaultScenario, kernel) -> None:
        self.scenario = scenario
        self.kernel = kernel
        self.impairments: List[Tuple[str, Impairment]] = []  # (pipe key, imp)
        self.active = 0
        self._timers: List = []
        self._scope = kernel.metrics.scope(f"faults.{scenario.name}")
        self._scope.probe("active", lambda: self.active)
        self._scope.probe("impairments_armed", lambda: len(self.impairments))

    def _schedule(self, t_start_ns: int, t_end_ns: Optional[int], on, off) -> None:
        start, end = self.kernel.call_window(t_start_ns, t_end_ns, on, off)
        if start is not None:
            self._timers.append(start)
        if end is not None:
            self._timers.append(end)

    def add_pipe_window(
        self, event: FaultEvent, idx: int, key: str, pipe, imp: Impairment
    ) -> None:
        """Install ``imp`` on ``pipe`` for the event's time window."""
        self.impairments.append((key, imp))
        scope = self._scope.scope(f"e{idx}.{key}")
        scope.probe("packets_seen", lambda: imp.packets_seen)
        scope.probe("packets_dropped", lambda: imp.packets_dropped)
        scope.probe("packets_affected", lambda: imp.packets_affected)

        def on() -> None:
            pipe.arm(imp)
            self.active += 1

        def off() -> None:
            pipe.disarm(imp)
            self.active -= 1

        self._schedule(event.t_start_ns, event.t_end_ns, on, off)

    def add_link_window(self, event: FaultEvent, link) -> None:
        """Administratively down ``link`` for the event's time window."""

        def on() -> None:
            link.set_up(False)
            self.active += 1

        def off() -> None:
            link.set_up(True)
            self.active -= 1

        self._schedule(event.t_start_ns, event.t_end_ns, on, off)

    def cancel(self) -> None:
        """Cancel every not-yet-fired arm/disarm timer."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArmedScenario {self.scenario.name!r} "
            f"{len(self.impairments)} impairments, {self.active} active>"
        )
