"""Composable packet impairment models.

Every impairment is one small state machine behind a single interface:
:meth:`Impairment.process` takes one packet and returns the list of
``(packet, extra_delay_ns)`` pairs to forward downstream — an empty list
drops the packet, two entries duplicate it, a non-zero delay lets later
packets overtake it (reordering).  Impairments are configuration
dataclasses; all runtime state (RNG stream, counters, Markov state) is
created by :meth:`Impairment.bind`, so one unbound instance can serve as
the prototype for many armed copies (one per target pipe) without any
shared state.

Determinism: every bound impairment draws from its own named kernel RNG
stream (``kernel.rng(label)``), so arming a new impairment never
perturbs the draws of the base Dummynet loss process or of any other
impairment — same-seed runs stay byte-identical.

The models map onto the mechanisms the paper's evaluation exercises:

* :class:`BernoulliLoss` — the Dummynet ``plr`` i.i.d. drop of §4
  (Table 1, Figs. 10-12); rate 1.0 is a full blackhole.
* :class:`GilbertElliott` — bursty/correlated loss, the regime where
  SCTP's unlimited SACK gap-ack blocks beat TCP's 3-block SACK option.
* :class:`Blackhole` — a time-windowed link failure; drives SCTP
  heartbeat-based failover (§3.5.1) vs TCP RTO backoff.
* :class:`Corrupt` — on-wire bit corruption; rejected by SCTP's CRC32c
  / verification-tag validation and TCP's checksum (§3.5.2).
* :class:`Duplicate` / :class:`Reorder` / :class:`Delay` — duplicate
  TSN reporting, SACK reordering robustness, and path-delay asymmetry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

from ..network.packet import Packet

Emit = Tuple[Packet, int]  # (packet to forward, extra delay in ns)


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]: {rate}")


def copy_packet(packet: Packet) -> Packet:
    """A duplicate wire copy (fresh pkt_id, same payload object)."""
    dup = Packet(
        src=packet.src,
        dst=packet.dst,
        proto=packet.proto,
        payload=packet.payload,
        wire_size=packet.wire_size,
    )
    dup.corrupted = packet.corrupted
    return dup


@dataclass
class Impairment:
    """Base class: a configurable, seedable per-packet packet filter.

    Subclasses override :meth:`process` (and optionally :meth:`on_bind`
    for extra runtime state).  Config lives in dataclass fields so
    :meth:`clone` can stamp out independent per-target copies.
    """

    #: registry key used by from_dict/to_dict
    kind = "impairment"

    def bind(self, kernel, stream: str) -> "Impairment":
        """Attach to a kernel: create the RNG stream and zero counters."""
        self.kernel = kernel
        self.stream = stream
        self.rng = kernel.rng(stream)
        self.packets_seen = 0
        self.packets_dropped = 0
        self.packets_affected = 0  # corrupted / duplicated / delayed / ...
        self.on_bind()
        return self

    def on_bind(self) -> None:
        """Hook for subclass runtime state (Markov state, etc.)."""

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has been called."""
        return getattr(self, "rng", None) is not None

    def clone(self) -> "Impairment":
        """An unbound copy with the same configuration."""
        return dataclasses.replace(self)

    def process(self, packet: Packet) -> List[Emit]:
        """Transform one packet into the list of packets to forward."""
        raise NotImplementedError

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-dict form: ``{"kind": ..., <config fields>}``."""
        out = {"kind": self.kind}
        out.update(dataclasses.asdict(self))
        return out

    @staticmethod
    def from_dict(spec: Dict) -> "Impairment":
        """Instantiate the impairment described by ``spec``."""
        spec = dict(spec)
        kind = spec.pop("kind", None)
        cls = IMPAIRMENT_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown impairment kind {kind!r} "
                f"(known: {', '.join(sorted(IMPAIRMENT_KINDS))})"
            )
        return cls(**spec)


@dataclass
class BernoulliLoss(Impairment):
    """Independent drop per packet — Dummynet's ``plr`` (paper §4).

    ``rate`` may be 1.0: a full blackhole, the degenerate link-down case.
    The RNG is only consulted when ``rate > 0`` so an idle impairment
    leaves the stream untouched (this preserves the draw sequence of the
    pre-refactor :class:`~repro.network.dummynet.DummynetPipe`).
    """

    kind = "bernoulli"
    rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("loss rate", self.rate)

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        if self.rate > 0.0 and self.rng.random() < self.rate:
            self.packets_dropped += 1
            return []
        return [(packet, 0)]


@dataclass
class GilbertElliott(Impairment):
    """Two-state Markov (Gilbert-Elliott) bursty loss.

    GOOD drops with probability ``loss_good`` (usually 0), BAD with
    ``loss_bad`` (usually near 1).  After each packet the chain moves
    GOOD->BAD with ``p_enter_bad`` and BAD->GOOD with ``p_exit_bad``, so
    the mean burst length is ``1 / p_exit_bad`` packets.  Correlated
    loss is where SACK gap-ack reporting differentiates the stacks.
    """

    kind = "gilbert_elliott"
    p_enter_bad: float = 0.01
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        _check_rate("p_enter_bad", self.p_enter_bad)
        _check_rate("p_exit_bad", self.p_exit_bad)
        _check_rate("loss_good", self.loss_good)
        _check_rate("loss_bad", self.loss_bad)

    def on_bind(self) -> None:
        self.in_bad_state = False

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        loss = self.loss_bad if self.in_bad_state else self.loss_good
        # fixed two draws per packet keeps the stream layout stable
        dropped = self.rng.random() < loss
        flip = self.rng.random()
        if self.in_bad_state:
            if flip < self.p_exit_bad:
                self.in_bad_state = False
        elif flip < self.p_enter_bad:
            self.in_bad_state = True
        if dropped:
            self.packets_dropped += 1
            return []
        return [(packet, 0)]


@dataclass
class Blackhole(Impairment):
    """Drop everything — a dead link/path while armed.

    Time-windowing comes from the enclosing
    :class:`~repro.faults.scenario.FaultEvent`; a windowed blackhole is
    a brownout-to-black link outage that exercises SCTP heartbeat
    failover and TCP RTO exponential backoff.
    """

    kind = "blackhole"

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        self.packets_dropped += 1
        return []


@dataclass
class Corrupt(Impairment):
    """Flip bits on the wire with probability ``rate``.

    The packet keeps flowing (links/queues still charge its bytes) but
    arrives with ``corrupted=True``; the receiving transport's integrity
    check (SCTP CRC32c, TCP checksum) must drop and count it.
    """

    kind = "corrupt"
    rate: float = 0.01

    def __post_init__(self) -> None:
        _check_rate("corruption rate", self.rate)

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        if self.rate > 0.0 and self.rng.random() < self.rate:
            packet.corrupted = True
            self.packets_affected += 1
        return [(packet, 0)]


@dataclass
class Duplicate(Impairment):
    """Emit an extra wire copy with probability ``rate``.

    Drives the receivers' duplicate handling: SCTP reports dup TSNs in
    SACKs, TCP sends immediate duplicate ACKs.
    """

    kind = "duplicate"
    rate: float = 0.01

    def __post_init__(self) -> None:
        _check_rate("duplication rate", self.rate)

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        if self.rate > 0.0 and self.rng.random() < self.rate:
            self.packets_affected += 1
            return [(packet, 0), (copy_packet(packet), 0)]
        return [(packet, 0)]


@dataclass
class Reorder(Impairment):
    """Hold a packet for ``delay_ns`` with probability ``rate``.

    Later packets overtake the held one, producing genuine on-wire
    reordering (gap-ack blocks on SCTP, dupacks on TCP — and spurious
    fast retransmit if the delay beats the dupack threshold).
    """

    kind = "reorder"
    rate: float = 0.05
    delay_ns: int = 1_000_000  # 1 ms: several packet times at 1 Gbit/s

    def __post_init__(self) -> None:
        _check_rate("reorder rate", self.rate)
        if self.delay_ns <= 0:
            raise ValueError(f"reorder delay must be positive: {self.delay_ns}")

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        if self.rate > 0.0 and self.rng.random() < self.rate:
            self.packets_affected += 1
            return [(packet, self.delay_ns)]
        return [(packet, 0)]


@dataclass
class Delay(Impairment):
    """Add fixed latency plus optional uniform jitter to every packet.

    With ``jitter_ns`` large enough relative to inter-packet spacing
    this is another reordering source (jittered packets can leapfrog).
    """

    kind = "delay"
    delay_ns: int = 0
    jitter_ns: int = 0

    def __post_init__(self) -> None:
        if self.delay_ns < 0 or self.jitter_ns < 0:
            raise ValueError("delay/jitter cannot be negative")

    def process(self, packet: Packet) -> List[Emit]:
        self.packets_seen += 1
        extra = self.delay_ns
        if self.jitter_ns:
            extra += self.rng.randrange(self.jitter_ns + 1)
        if extra:
            self.packets_affected += 1
        return [(packet, extra)]


IMPAIRMENT_KINDS: Dict[str, Type[Impairment]] = {
    cls.kind: cls
    for cls in (
        BernoulliLoss,
        GilbertElliott,
        Blackhole,
        Corrupt,
        Duplicate,
        Reorder,
        Delay,
    )
}
