"""Canonical scenarios: the chaos matrix the benches and CI sweep.

Each factory returns a fresh :class:`~repro.faults.scenario.FaultScenario`
mapping onto a protocol mechanism the paper argues about; the chaos
bench (``benchmarks/bench_chaos_matrix.py``) runs every one against
both stacks.  All factories take times in nanoseconds and target every
host egress pipe by default (``"*"``), path 0 for path-scoped faults.
"""

from __future__ import annotations

from ..simkernel import MILLISECOND, SECOND
from .impairments import (
    BernoulliLoss,
    Blackhole,
    Corrupt,
    Duplicate,
    GilbertElliott,
    Reorder,
)
from .scenario import FaultEvent, FaultScenario


def bernoulli_loss(rate: float = 0.01, target: str = "*") -> FaultScenario:
    """The paper's Dummynet setting as a scenario (Table 1 regime)."""
    return FaultScenario(
        "bernoulli", [FaultEvent(0, None, target, BernoulliLoss(rate))]
    )


def burst_loss(
    p_enter_bad: float = 0.01,
    p_exit_bad: float = 0.25,
    loss_bad: float = 0.9,
    target: str = "*",
) -> FaultScenario:
    """Gilbert-Elliott correlated loss: multi-packet holes per window."""
    return FaultScenario(
        "burst",
        [
            FaultEvent(
                0,
                None,
                target,
                GilbertElliott(
                    p_enter_bad=p_enter_bad,
                    p_exit_bad=p_exit_bad,
                    loss_bad=loss_bad,
                ),
            )
        ],
    )


def primary_blackhole(
    start_ns: int = 1 * SECOND,
    duration_ns: int = 2 * SECOND,
    path: int = 0,
) -> FaultScenario:
    """Black out every host's path-``path`` egress for a window.

    ``duration_ns=0`` keeps the path dead until the end of the run (the
    multihoming-failover bench's permanent failure).
    """
    end = None if duration_ns == 0 else start_ns + duration_ns
    return FaultScenario(
        "blackhole", [FaultEvent(start_ns, end, f"h*p{path}", Blackhole())]
    )


def corruption(rate: float = 0.02, target: str = "*") -> FaultScenario:
    """Bit corruption caught by CRC32c (SCTP) / checksum (TCP)."""
    return FaultScenario("corrupt", [FaultEvent(0, None, target, Corrupt(rate))])


def dup_and_reorder(
    dup_rate: float = 0.01,
    reorder_rate: float = 0.05,
    reorder_delay_ns: int = 1 * MILLISECOND,
    target: str = "*",
) -> FaultScenario:
    """Duplication plus reordering: SACK/dupack robustness."""
    return FaultScenario(
        "dup_reorder",
        [
            FaultEvent(0, None, target, Duplicate(dup_rate)),
            FaultEvent(
                0, None, target, Reorder(reorder_rate, reorder_delay_ns)
            ),
        ],
    )
