"""Deterministic fault injection: scripted impairment scenarios.

The paper's evaluation is *made of* induced failure — Dummynet loss for
Table 1 and Figs. 10-12, path failure for §3.5.1's multihoming story,
checksum/verification-tag rejection for §3.5.2's robustness claims.
This package turns those one-off setups into a first-class subsystem:

* :mod:`~repro.faults.impairments` — composable per-packet impairment
  models (Bernoulli and Gilbert-Elliott loss, blackhole, corruption,
  duplication, reordering, delay/jitter) behind one interface;
* :mod:`~repro.faults.scenario` — a declarative ``FaultScenario``
  timeline of ``(t_start, t_end, target, impairment)`` entries, armed
  onto a cluster via seeded per-impairment RNG streams so same-seed
  runs are byte-identical;
* :mod:`~repro.faults.observers` — packet-tap probes measuring what the
  application felt (delivery stalls, recovery time);
* :mod:`~repro.faults.library` — the canonical chaos-matrix scenarios.

Quick example — a 2 s mid-run blackhole of the primary path::

    from repro import WorldConfig, run_app
    from repro.faults import FaultEvent, FaultScenario, Blackhole
    from repro.simkernel import SECOND

    scenario = FaultScenario(
        "primary-outage",
        [FaultEvent(1 * SECOND, 3 * SECOND, "h*p0", Blackhole())],
    )
    result = run_app(app, n_procs=2, rpi="sctp", n_paths=2, scenario=scenario)

SCTP rides it out by failing over to path 1 (heartbeat-detected); TCP
stalls through RTO exponential backoff.  ``benchmarks/
bench_chaos_matrix.py`` sweeps the whole library against both stacks.
"""

from .impairments import (
    IMPAIRMENT_KINDS,
    BernoulliLoss,
    Blackhole,
    Corrupt,
    Delay,
    Duplicate,
    GilbertElliott,
    Impairment,
    Reorder,
)
from .library import (
    bernoulli_loss,
    burst_loss,
    corruption,
    dup_and_reorder,
    primary_blackhole,
)
from .observers import DeliveryWatch, carries_data
from .scenario import ArmedScenario, FaultEvent, FaultScenario

__all__ = [
    "ArmedScenario",
    "BernoulliLoss",
    "Blackhole",
    "Corrupt",
    "Delay",
    "DeliveryWatch",
    "Duplicate",
    "FaultEvent",
    "FaultScenario",
    "GilbertElliott",
    "IMPAIRMENT_KINDS",
    "Impairment",
    "Reorder",
    "bernoulli_loss",
    "burst_loss",
    "carries_data",
    "corruption",
    "dup_and_reorder",
    "primary_blackhole",
]
