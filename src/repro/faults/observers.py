"""Recovery observers: measure how transports ride out a fault.

Built on the host packet-tap bus (``host.taps``) shared with
:class:`repro.metrics.MetricsPacketTap` and
:class:`repro.util.trace.PacketTrace`, so benches can measure recovery
without the transports knowing they are observed.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.taps import PacketTap
from ..simkernel import MILLISECOND


def carries_data(packet) -> bool:
    """Whether a packet moves user payload (vs pure control/ack)."""
    payload = packet.payload
    data_len = getattr(payload, "data_len", None)  # TCP segment
    if data_len is not None:
        return data_len > 0
    data_chunks = getattr(payload, "data_chunks", None)  # SCTP packet
    if data_chunks is not None:
        return bool(data_chunks())
    return True  # unknown PDU: count it


class DeliveryWatch(PacketTap):
    """Tracks data-delivery stalls for one protocol across a run.

    * ``max_gap_ns`` — the longest interval between two consecutive
      data-bearing receives anywhere in the observed host set: under a
      fault this is the outage the application actually felt (TCP's RTO
      backoff stall, SCTP's failover detection time).
    * ``recovery_ns`` — how long after ``fault_start_ns`` delivery
      resumed: the end of the first stall (gap >= ``min_stall_ns``)
      reaching past the fault start.  In-flight packets draining just
      after the fault hits don't count as recovery — only delivery
      resuming after an actual outage does.
    """

    def __init__(
        self,
        proto: str,
        fault_start_ns: int = 0,
        min_stall_ns: int = 1 * MILLISECOND,
    ) -> None:
        super().__init__()
        self.proto = proto
        self.fault_start_ns = fault_start_ns
        self.min_stall_ns = min_stall_ns
        self.data_rx_packets = 0
        self.first_data_rx_ns: Optional[int] = None
        self.last_data_rx_ns: Optional[int] = None
        self.first_data_rx_after_fault_ns: Optional[int] = None
        self.stall_recovered_ns: Optional[int] = None  # end of first stall
        self.max_gap_ns = 0

    def on_packet(self, direction: str, host, packet) -> None:
        if direction != "rx" or packet.proto != self.proto:
            return
        if not carries_data(packet):
            return
        now = host.kernel.now
        self.data_rx_packets += 1
        if self.last_data_rx_ns is None:
            self.first_data_rx_ns = now
        else:
            gap = now - self.last_data_rx_ns
            if gap > self.max_gap_ns:
                self.max_gap_ns = gap
            if (
                self.stall_recovered_ns is None
                and now >= self.fault_start_ns
                and gap >= self.min_stall_ns
            ):
                self.stall_recovered_ns = now
        self.last_data_rx_ns = now
        if now >= self.fault_start_ns and self.first_data_rx_after_fault_ns is None:
            self.first_data_rx_after_fault_ns = now

    @property
    def recovery_ns(self) -> Optional[int]:
        """ns from fault start until delivery resumed after the outage.

        ``0`` means delivery never stalled (the stack shrugged the fault
        off); ``None`` means data never flowed again after the fault.
        """
        if self.stall_recovered_ns is not None:
            return self.stall_recovered_ns - self.fault_start_ns
        if self.first_data_rx_after_fault_ns is not None:
            return 0
        return None
