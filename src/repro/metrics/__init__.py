"""Unified observability layer: one registry across every subsystem.

See :mod:`repro.metrics.registry` for the metric types,
:mod:`repro.metrics.taps` for the packet-tap bus shared with
:class:`repro.util.trace.PacketTrace`, and
:mod:`repro.metrics.collect` for benchmark-time collection
(``python -m repro.bench fig8 --metrics-json out.json``).
"""

from .collect import MetricsCollector, active_collector
from .registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from .taps import MetricsPacketTap, PacketTap

__all__ = [
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsPacketTap",
    "MetricsRegistry",
    "MetricsScope",
    "PacketTap",
    "active_collector",
]
