"""Metrics collection across benchmark runs.

The bench harness functions build and tear down many :class:`Worlds
<repro.core.world.World>` internally; :class:`MetricsCollector` is how
``--metrics-json`` reaches into them without threading a flag through
every workload signature.  While a collector is active (``with``
block), every World constructed enables its kernel's metrics registry
and appends a labelled snapshot to the collector when its run finishes.

Collection order is the (deterministic) order the harness runs its
simulations in, so the collected document is a pure function of the
experiment configuration and seeds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

_ACTIVE: List["MetricsCollector"] = []


class MetricsCollector:
    """Context manager gathering one snapshot per simulated world."""

    def __init__(self) -> None:
        self.runs: List[Dict[str, Any]] = []

    def add(self, label: str, snapshot: Dict[str, Any]) -> None:
        """Record one world's final metrics under a config label."""
        self.runs.append({"label": label, "metrics": snapshot})

    def __enter__(self) -> "MetricsCollector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.remove(self)


def active_collector() -> Optional[MetricsCollector]:
    """The innermost active collector, or None."""
    return _ACTIVE[-1] if _ACTIVE else None
