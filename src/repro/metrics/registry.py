"""The unified metrics registry: counters, gauges, histograms, probes.

Every layer of the stack — kernel, links, Dummynet pipes, both transport
protocols, the RPI progression engines — registers into one hierarchical
:class:`MetricsRegistry` owned by the :class:`~repro.simkernel.Kernel`.
The registry is built for two properties the benchmarks depend on:

* **zero cost when disabled** — a disabled registry hands out shared
  no-op metric singletons and ignores probe registration, so the hot
  paths of an instrumented simulation pay nothing beyond an occasional
  ``None`` check;
* **deterministic snapshots** — histograms use fixed bucket edges,
  snapshot keys are sorted, and every value derives from virtual time or
  event counts, so two runs with the same seed serialise to
  byte-identical JSON (the CI determinism gate asserts exactly this).

Two metric styles coexist:

* **push** metrics (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  record transient values at event time — congestion-window samples,
  queue occupancy, timer-heap depth;
* **pull** probes (:meth:`MetricsRegistry.probe`) are callbacks read at
  snapshot time.  Layers that already keep cheap stats structs (TCP's
  ``ConnStats``, SCTP's ``AssocStats``, the RPI's ``RPIStats``) register
  probes over them, which costs nothing on the hot path at all.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically growing count (events, bytes, drops)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (rwnd, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Number) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: Number) -> None:
        """Move the current value by ``delta`` (may be negative)."""
        self.value += delta


class Histogram:
    """Fixed-bucket histogram; edges are frozen at creation for determinism.

    ``edges`` must be strictly increasing; an observation ``v`` lands in
    the first bucket whose edge satisfies ``v <= edge``, with one
    overflow bucket above the last edge.
    """

    __slots__ = ("name", "edges", "counts", "total_count", "total_sum")

    def __init__(self, name: str, edges: Iterable[Number]) -> None:
        edge_tuple = tuple(edges)
        if not edge_tuple:
            raise ValueError(f"histogram {name}: needs at least one bucket edge")
        if any(b <= a for a, b in zip(edge_tuple, edge_tuple[1:], strict=False)):
            raise ValueError(
                f"histogram {name}: edges must be strictly increasing: {edge_tuple}"
            )
        self.name = name
        self.edges = edge_tuple
        self.counts = [0] * (len(edge_tuple) + 1)
        self.total_count = 0
        self.total_sum = 0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        # bisect_left gives "first bucket with value <= edge" (le semantics)
        self.counts[bisect_left(self.edges, value)] += 1
        self.total_count += 1
        self.total_sum += value

    def bucket_counts(self) -> List[int]:
        """Counts per bucket, overflow bucket last."""
        return list(self.counts)


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: Number = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0

    def set(self, value: Number) -> None:
        return None

    def add(self, delta: Number) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    edges: Tuple[Number, ...] = (0,)
    total_count = 0
    total_sum = 0

    def observe(self, value: Number) -> None:
        return None

    def bucket_counts(self) -> List[int]:
        return [0, 0]


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _coerce(value: Any) -> Any:
    """Make a probe/row value JSON-stable (handles numpy scalars)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    # numpy integers/floats/bools and similar scalar wrappers
    try:
        if hasattr(value, "is_integer") or hasattr(value, "__float__"):
            f = float(value)
            return int(f) if f.is_integer() and abs(f) < 2**53 else f
    except (TypeError, ValueError):
        pass
    return str(value)


class MetricsScope:
    """A registry view that prefixes every name (``scope.counter("x")``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def _join(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._join(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._join(name))

    def histogram(self, name: str, edges: Iterable[Number]) -> Histogram:
        return self._registry.histogram(self._join(name), edges)

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        self._registry.probe(self._join(name), fn)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, self._join(prefix))


class MetricsRegistry:
    """Hierarchical metric store with deterministic snapshots.

    Metric creation is get-or-create: asking twice for the same name
    returns the same object (so e.g. every TCP connection on a host can
    share one cwnd histogram).  Asking for an existing name with a
    different metric kind is an error.  Probe names are deduplicated
    with a deterministic ``#N`` suffix, since independent objects (two
    connections reusing a port pair) may legitimately describe
    themselves identically.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._probes: Dict[str, Callable[[], Any]] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- creation ----------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory: Callable):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        if name in self._probes:
            raise TypeError(f"metric {name!r} already registered as a probe")
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if not self._enabled:
            return NULL_COUNTER
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if not self._enabled:
            return NULL_GAUGE
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Iterable[Number]) -> Histogram:
        """Get or create a fixed-edge histogram called ``name``."""
        if not self._enabled:
            return NULL_HISTOGRAM
        hist = self._get_or_create(name, Histogram, lambda: Histogram(name, edges))
        if hist.edges != tuple(edges):
            raise ValueError(
                f"histogram {name!r} re-requested with different edges "
                f"({hist.edges} vs {tuple(edges)})"
            )
        return hist

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a pull callback evaluated at snapshot time."""
        if not self._enabled:
            return
        unique = name
        suffix = 2
        while unique in self._probes or unique in self._metrics:
            unique = f"{name}#{suffix}"
            suffix += 1
        self._probes[unique] = fn

    def scope(self, prefix: str) -> MetricsScope:
        """A view of this registry under ``prefix.``."""
        return MetricsScope(self, prefix)

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One flat, name-sorted dict of every metric and probe value.

        Histograms expand into ``<name>/le_<edge>``, ``<name>/le_inf``,
        ``<name>/count`` and ``<name>/sum`` entries.
        """
        if not self._enabled:
            return {}
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                for edge, count in zip(metric.edges, metric.counts, strict=False):
                    out[f"{name}/le_{edge}"] = count
                out[f"{name}/le_inf"] = metric.counts[-1]
                out[f"{name}/count"] = metric.total_count
                out[f"{name}/sum"] = _coerce(metric.total_sum)
            else:
                out[name] = _coerce(metric.value)
        for name, fn in self._probes.items():
            out[name] = _coerce(fn())
        return dict(sorted(out.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
