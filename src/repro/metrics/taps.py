"""Packet-tap infrastructure shared by tracing and metrics.

Hosts publish every transmitted/received packet to the callbacks in
``host.taps``.  :class:`PacketTap` is the attach/detach plumbing every
consumer shares; :class:`repro.util.trace.PacketTrace` (the tcpdump-like
recorder) and :class:`MetricsPacketTap` (per-host, per-protocol packet
and byte counters) are both consumers of the same bus, so a benchmark
can count *and* trace without the host knowing either exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .registry import Counter, MetricsScope


class PacketTap:
    """Base class: subscribe to the packet events of a set of hosts.

    Subclasses implement :meth:`on_packet`; ``direction`` is ``"tx"`` or
    ``"rx"``, ``host`` the publishing :class:`~repro.network.host.Host`,
    ``packet`` the :class:`~repro.network.packet.Packet` on the wire.
    """

    def __init__(self) -> None:
        self._attached: List = []

    def attach(self, hosts: Iterable) -> "PacketTap":
        """Start observing ``hosts``; returns self for chaining."""
        for host in hosts:
            host.taps.append(self._tap)
            self._attached.append(host)
        return self

    def detach(self) -> None:
        """Stop observing everything."""
        for host in self._attached:
            if self._tap in host.taps:
                host.taps.remove(self._tap)
        self._attached.clear()

    def _tap(self, direction: str, host, packet) -> None:
        self.on_packet(direction, host, packet)

    def on_packet(self, direction: str, host, packet) -> None:
        """Handle one packet event; subclasses override."""
        raise NotImplementedError


class MetricsPacketTap(PacketTap):
    """Counts packets and wire bytes per (host, direction, protocol).

    Registers ``<host>.<direction>.<proto>.packets`` / ``.bytes``
    counters under the scope it is given (the world uses
    ``net.packets``).
    """

    def __init__(self, scope: MetricsScope) -> None:
        super().__init__()
        self._scope = scope
        self._counters: Dict[Tuple[str, str, str], Tuple[Counter, Counter]] = {}

    def on_packet(self, direction: str, host, packet) -> None:
        key = (host.name, direction, packet.proto)
        pair = self._counters.get(key)
        if pair is None:
            base = f"{host.name}.{direction}.{packet.proto}"
            pair = (
                self._scope.counter(f"{base}.packets"),
                self._scope.counter(f"{base}.bytes"),
            )
            self._counters[key] = pair
        pair[0].inc()
        pair[1].inc(packet.wire_size)
