"""Cluster topology builder.

Reproduces the paper's testbed in one call: N hosts, each with
``n_paths`` gigabit NICs, one switch per path (so multihomed paths are
fully independent), full-duplex links, and a Dummynet loss pipe on every
host egress.  The paper used 8 nodes, 3 NICs each, 1 Gbit/s, and loss
rates of 0%, 1%, 2%; those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..simkernel import GBIT_PER_S, Kernel, MICROSECOND

if TYPE_CHECKING:  # avoid an import cycle: faults imports network.packet
    from ..faults.scenario import ArmedScenario, FaultScenario
from .costmodel import CostModel
from .dummynet import DummynetPipe
from .host import Host
from .link import Link
from .nic import NIC
from .switch import Switch


@dataclass
class ClusterConfig:
    """Knobs for :func:`build_cluster`; defaults mirror the paper's setup."""

    n_hosts: int = 8
    n_paths: int = 1  # the paper's comparison benches run single-homed
    # Pod structure (datacenter-style): hosts are split into ``n_pods``
    # contiguous groups, each with its own switch per path, and the pod
    # switches of one path form a full mesh of trunk links.  ``n_pods=1``
    # reproduces the paper's flat single-switch testbed exactly (same
    # component names, same wiring).  Pods are also the sharding unit for
    # conservative parallel DES: the trunks are the only links crossing
    # pod boundaries, so their propagation delay is the PDES lookahead.
    n_pods: int = 1
    bandwidth_bps: int = GBIT_PER_S
    prop_delay_ns: int = 5 * MICROSECOND  # host <-> switch, one way
    # Per-output-port buffering.  Must exceed n_hosts * rcvbuf (220 KiB) so
    # an 8-way incast bounded by receive windows never tail-drops: the
    # paper's testbed showed no loss at 0% Dummynet loss, so ours must not
    # invent any.
    queue_bytes: int = 2 * 1024 * 1024
    loss_rate: float = 0.0
    extra_delay_ns: int = 0
    cost_model: CostModel = field(default_factory=CostModel)

    def address(self, host_index: int, path: int = 0) -> str:
        """Deterministic addressing: path p, host h -> ``10.p.0.(h+1)``."""
        return f"10.{path}.0.{host_index + 1}"

    def pod_of(self, host_index: int) -> int:
        """Pod of a host: contiguous balanced partition of the host range."""
        return host_index * self.n_pods // self.n_hosts

    def switch_name(self, path: int, pod: int) -> str:
        """Switch naming; flat clusters keep the historical ``sw{p}``."""
        if self.n_pods == 1:
            return f"sw{path}"
        return f"sw{path}pod{pod}"


@dataclass
class Cluster:
    """The assembled testbed."""

    config: ClusterConfig
    kernel: Kernel
    hosts: List[Host]
    switches: List[Switch]
    pipes: Dict[str, DummynetPipe]  # keyed by "h{host}p{path}"
    links: Dict[str, Link]

    def host_address(self, host_index: int, path: int = 0) -> str:
        """Address of host ``host_index`` on ``path``."""
        return self.config.address(host_index, path)

    def pipe_for(self, host_index: int, path: int = 0) -> DummynetPipe:
        """The egress Dummynet pipe of one host interface."""
        return self.pipes[f"h{host_index}p{path}"]

    def set_loss_rate(self, loss_rate: float) -> None:
        """Reconfigure every Dummynet pipe (like re-running ``ipfw pipe``)."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {loss_rate}")
        for pipe in self.pipes.values():
            pipe.loss_rate = loss_rate

    def arm_scenario(self, scenario: "FaultScenario") -> "ArmedScenario":
        """Arm a fault-injection timeline onto this cluster's pipes/links."""
        return scenario.arm(self.kernel, self.pipes, links=self.links)

    def pod_of(self, host_index: int) -> int:
        """Pod (sharding unit) a host belongs to."""
        return self.config.pod_of(host_index)

    def switch_for(self, path: int, pod: int = 0) -> Switch:
        """The switch serving one (path, pod)."""
        return self.switches[path * self.config.n_pods + pod]

    def fail_path(self, path: int) -> None:
        """Take an entire subnet down (kills its switches)."""
        for pod in range(self.config.n_pods):
            self.switch_for(path, pod).set_up(False)

    def restore_path(self, path: int) -> None:
        """Bring a previously failed subnet back."""
        for pod in range(self.config.n_pods):
            self.switch_for(path, pod).set_up(True)

    def total_dropped(self) -> int:
        """Packets dropped by all Dummynet pipes (not queue drops)."""
        return sum(p.dropped_packets for p in self.pipes.values())


def build_cluster(kernel: Kernel, config: Optional[ClusterConfig] = None) -> Cluster:
    """Assemble hosts, switches, links and loss pipes per ``config``."""
    cfg = config or ClusterConfig()
    if cfg.n_hosts < 1:
        raise ValueError("cluster needs at least one host")
    if cfg.n_paths < 1:
        raise ValueError("cluster needs at least one path")
    if not 1 <= cfg.n_pods <= cfg.n_hosts:
        raise ValueError(f"n_pods must be in [1, n_hosts]: {cfg.n_pods}")

    hosts = [Host(kernel, f"node{h}", cfg.cost_model) for h in range(cfg.n_hosts)]
    switches: List[Switch] = []
    pipes: Dict[str, DummynetPipe] = {}
    links: Dict[str, Link] = {}

    for p in range(cfg.n_paths):
        pod_switches: List[Switch] = []
        for pod in range(cfg.n_pods):
            name = cfg.switch_name(p, pod)
            switch = Switch(name)
            switches.append(switch)
            pod_switches.append(switch)
            sw_scope = kernel.metrics.scope(f"net.switch.{name}")
            sw_scope.probe("forwarded", lambda s=switch: s.forwarded)
            sw_scope.probe("unroutable", lambda s=switch: s.unroutable)
        for h, host in enumerate(hosts):
            switch = pod_switches[cfg.pod_of(h)]
            addr = cfg.address(h, p)
            nic = NIC(addr)
            host.add_interface(nic)

            up = Link(
                kernel,
                f"h{h}p{p}->{switch.name}",
                cfg.bandwidth_bps,
                cfg.prop_delay_ns,
                cfg.queue_bytes,
                sink=switch.ingress(),
            )
            down = Link(
                kernel,
                f"{switch.name}->h{h}p{p}",
                cfg.bandwidth_bps,
                cfg.prop_delay_ns,
                cfg.queue_bytes,
                sink=nic.receive,
            )
            links[up.name] = up
            links[down.name] = down
            switch.attach(addr, down)

            pipe = DummynetPipe(
                kernel,
                f"h{h}p{p}",
                loss_rate=cfg.loss_rate,
                extra_delay_ns=cfg.extra_delay_ns,
                sink=up.send,
            )
            pipes[f"h{h}p{p}"] = pipe
            nic.connect(pipe)
        # full-mesh trunks between the pod switches of this path: the
        # sending pod's switch routes every address of the remote pod
        # down one trunk link (Switch.attach maps many addrs -> one Link)
        for a, src_sw in enumerate(pod_switches):
            for b, dst_sw in enumerate(pod_switches):
                if a == b:
                    continue
                trunk = Link(
                    kernel,
                    f"{src_sw.name}->{dst_sw.name}",
                    cfg.bandwidth_bps,
                    cfg.prop_delay_ns,
                    cfg.queue_bytes,
                    sink=dst_sw.ingress(),
                )
                links[trunk.name] = trunk
                for h in range(cfg.n_hosts):
                    if cfg.pod_of(h) == b:
                        src_sw.attach(cfg.address(h, p), trunk)

    return Cluster(
        config=cfg,
        kernel=kernel,
        hosts=hosts,
        switches=switches,
        pipes=pipes,
        links=links,
    )
