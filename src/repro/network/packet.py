"""The simulator's datagram.

A :class:`Packet` stands for one IP datagram on the wire.  Its ``payload``
is the transport protocol's PDU object (a TCP segment or an SCTP packet of
chunks); ``wire_size`` is the number of bytes the datagram would occupy on
the link including all headers, which is what links/queues/loss act on.
Actual user bytes are never stored in packets — transports use a ledger
scheme (see ``repro.transport``) so data is only *readable* once the
protocol has legitimately delivered it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_packet_ids = itertools.count(1)
_next_packet_id = _packet_ids.__next__  # bound method: no lambda per packet

IP_HEADER = 20


@dataclass(slots=True)
class Packet:
    """One simulated IP datagram (slotted: one per wire transmission)."""

    src: str
    dst: str
    proto: str  # "tcp" | "sctp" (plus anything tests register)
    payload: Any
    wire_size: int  # total on-wire bytes including IP + transport headers
    pkt_id: int = field(default_factory=_next_packet_id)
    # set by the Corrupt impairment (repro.faults): the datagram still
    # occupies the wire, but the receiving transport's integrity check
    # (SCTP CRC32c, TCP checksum) must reject it on arrival
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.wire_size <= 0:
            raise ValueError(f"packet must occupy wire bytes, got {self.wire_size}")

    def describe(self) -> str:
        """Short human-readable trace line for logging/tests."""
        flag = " CORRUPT" if self.corrupted else ""
        return (
            f"#{self.pkt_id} {self.proto} {self.src}->{self.dst} "
            f"{self.wire_size}B{flag} {self.payload!r}"
        )
