"""The simulator's datagram.

A :class:`Packet` stands for one IP datagram on the wire.  Its ``payload``
is the transport protocol's PDU object (a TCP segment or an SCTP packet of
chunks); ``wire_size`` is the number of bytes the datagram would occupy on
the link including all headers, which is what links/queues/loss act on.
Actual user bytes are never stored in packets — transports use a ledger
scheme (see ``repro.transport``) so data is only *readable* once the
protocol has legitimately delivered it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..analyze.sanitize import POOL_POISON, sanitizers_enabled

_packet_ids = itertools.count(1)
_next_packet_id = _packet_ids.__next__  # bound method: no lambda per packet

IP_HEADER = 20


@dataclass(slots=True)
class Packet:
    """One simulated IP datagram (slotted: one per wire transmission).

    Transports create packets via :meth:`acquire` and the network layer
    returns them to a free-list pool via :meth:`release` at each point a
    datagram leaves the simulation (delivered to a transport, dropped by
    a queue, admin-down link, or unroutable address), so steady-state
    traffic recycles a handful of Packet objects instead of allocating
    one per wire transmission.  Direct construction still works — tests
    and the fault injector build packets by hand — and such packets are
    simply never pooled (``release`` on them is a no-op).
    """

    src: str
    dst: str
    proto: str  # "tcp" | "sctp" (plus anything tests register)
    payload: Any
    wire_size: int  # total on-wire bytes including IP + transport headers
    pkt_id: int = field(default_factory=_next_packet_id)
    # set by the Corrupt impairment (repro.faults): the datagram still
    # occupies the wire, but the receiving transport's integrity check
    # (SCTP CRC32c, TCP checksum) must reject it on arrival
    corrupted: bool = False
    # True only for acquire()d packets currently out of the pool; guards
    # against pooling hand-built packets and against double release
    _pooled: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.wire_size <= 0:
            raise ValueError(f"packet must occupy wire bytes, got {self.wire_size}")

    @classmethod
    def acquire(
        cls, src: str, dst: str, proto: str, payload: Any, wire_size: int
    ) -> "Packet":
        """A pooled packet: recycled if the free list has one, else new.

        Draws a fresh ``pkt_id`` either way, so ids stay unique over a
        run and independent of pool hits (they are not part of any
        metrics output, which is what lets serial and sharded runs of
        one world produce identical metrics despite different pooling).
        """
        pool = _pool
        if pool:
            pkt = pool.pop()
            payload_slot = pkt.payload
            # None is the non-sanitized release sentinel: the pool is
            # process-global, so entries released before sanitizers were
            # switched on legitimately carry it instead of the poison
            if (
                payload_slot is not None
                and payload_slot is not POOL_POISON
                and sanitizers_enabled()
            ):
                raise AssertionError(
                    f"[network] pool use-after-recycle: pooled {pkt!r} was "
                    "touched while on the free list"
                )
            pkt.src = src
            pkt.dst = dst
            pkt.proto = proto
            pkt.payload = payload
            pkt.wire_size = wire_size
            pkt.pkt_id = _next_packet_id()
            pkt.corrupted = False
            pkt._pooled = True
            return pkt
        pkt = cls(src, dst, proto, payload, wire_size)
        pkt._pooled = True
        return pkt

    def release(self) -> None:
        """Return this packet to the pool (no-op for hand-built packets).

        Call only at a point where the datagram is finished — delivered,
        dropped, or rejected — and no reference is retained.  Safe to
        call twice (the second call is a no-op) and safe on packets that
        were constructed directly rather than acquired.
        """
        if not self._pooled:
            return
        self._pooled = False
        # drop the payload reference so pooled packets don't pin PDUs;
        # under sanitizers, poison it to catch use-after-release
        self.payload = POOL_POISON if sanitizers_enabled() else None
        _pool.append(self)

    def describe(self) -> str:
        """Short human-readable trace line for logging/tests."""
        flag = " CORRUPT" if self.corrupted else ""
        return (
            f"#{self.pkt_id} {self.proto} {self.src}->{self.dst} "
            f"{self.wire_size}B{flag} {self.payload!r}"
        )


# module-level free list shared by every world in the process (packets
# carry no kernel reference, so cross-world reuse is harmless)
_pool: list = []
