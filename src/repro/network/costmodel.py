"""Host CPU cost model.

The paper's no-loss ping-pong result (Fig. 8) — TCP faster below ~22 KiB,
SCTP faster above — is a *host CPU* effect, not a wire effect: both
protocols share the same gigabit link.  The paper attributes the gap to the
young KAME SCTP stack's higher per-operation cost (bundling logic, §3.6) on
one side, and on the other to LAM-TCP middleware costs that scale with
bytes and sockets (boundary scanning in a byte stream, ``select()`` over N
descriptors, an extra copy) which SCTP's message framing and one-to-many
socket avoid.

We model those explicitly.  All values are nanoseconds (fixed) or
nanoseconds-per-KiB (size-dependent); they are calibrated so that the
simulated crossover lands near the paper's ~22 KiB and documented here
rather than hidden inside protocol code.  ``crc32c_per_kib_ns`` defaults to
0 because the paper disabled CRC32c in the kernel for all experiments
(§4 setup item 5); tests re-enable it to check the documented overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-host CPU charges, applied by transports and RPIs."""

    # --- generic IP / driver path, charged per packet -------------------
    ip_send_ns: int = 1_000
    ip_recv_ns: int = 1_000

    # --- TCP stack: mature, cheap per segment ---------------------------
    tcp_segment_send_ns: int = 1_200
    tcp_segment_recv_ns: int = 1_200

    # --- SCTP stack: chunk handling/bundling costs more per packet ------
    sctp_packet_send_ns: int = 3_000
    sctp_packet_recv_ns: int = 3_000
    # CRC32c (disabled by default, matching the paper's modified kernel).
    crc32c_per_kib_ns: int = 0
    # What the checksum costs when enabled (used by tests/ablations).
    CRC32C_ENABLED_PER_KIB_NS = 2_400

    # --- middleware syscall-ish costs, charged per call by the RPIs -----
    tcp_syscall_ns: int = 1_500      # mature read/write path
    # sctp_sendmsg/recvmsg on the 2005 KAME stack: per-call chunk set-up,
    # ancillary-data (sndrcvinfo) handling, and generally unoptimised code
    # ("optimization of the SCTP stack is still in its early stages",
    # paper §3.6) make each call far dearer than a TCP read/write.  This
    # fixed per-call cost is what gives TCP its small-message edge in
    # Fig. 8; the value is calibrated so the throughput crossover lands
    # near the paper's ~22 KiB.
    sctp_syscall_ns: int = 40_000
    select_base_ns: int = 2_000      # select() entry cost (TCP RPI only)
    select_per_socket_ns: int = 450  # linear growth with descriptor count [20]
    # Per-byte middleware work: LAM-TCP scans the byte stream for message
    # boundaries and copies through user-space staging buffers, while
    # SCTP's message framing hands the middleware whole messages (§3.2.4),
    # so TCP's per-KiB cost is higher.  The pair is calibrated (together
    # with the per-call costs above) against Fig. 8: TCP wins below the
    # crossover, SCTP wins above by ~10-25%.
    tcp_middleware_per_kib_ns: int = 11_000
    sctp_middleware_per_kib_ns: int = 5_200

    def packet_send_cost(self, proto: str, wire_size: int) -> int:
        """CPU ns to push one packet of ``wire_size`` bytes into the NIC."""
        cost = self.ip_send_ns
        if proto == "tcp":
            cost += self.tcp_segment_send_ns
        elif proto == "sctp":
            cost += self.sctp_packet_send_ns
            cost += self.crc32c_per_kib_ns * wire_size // 1024
        return cost

    def packet_recv_cost(self, proto: str, wire_size: int) -> int:
        """CPU ns to take one packet from the NIC up to the transport."""
        cost = self.ip_recv_ns
        if proto == "tcp":
            cost += self.tcp_segment_recv_ns
        elif proto == "sctp":
            cost += self.sctp_packet_recv_ns
            cost += self.crc32c_per_kib_ns * wire_size // 1024
        return cost

    def middleware_io_cost(self, proto: str, nbytes: int) -> int:
        """CPU ns the MPI middleware spends moving ``nbytes`` through one
        socket call (copy + framing work)."""
        if proto == "tcp":
            return self.tcp_syscall_ns + self.tcp_middleware_per_kib_ns * nbytes // 1024
        return self.sctp_syscall_ns + self.sctp_middleware_per_kib_ns * nbytes // 1024

    def select_cost(self, nsockets: int) -> int:
        """CPU ns for one ``select()`` over ``nsockets`` descriptors."""
        return self.select_base_ns + self.select_per_socket_ns * nsockets

    def with_crc32c(self) -> "CostModel":
        """Variant with the CRC32c checksum charged (ablation/tests)."""
        return replace(self, crc32c_per_kib_ns=self.CRC32C_ENABLED_PER_KIB_NS)
