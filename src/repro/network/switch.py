"""Layer-2 switch with static forwarding.

The paper's cluster hangs all eight nodes off one gigabit switch (one per
subnet when multihomed).  We model store-and-forward switching: the ingress
side is instantaneous (the input link already paid serialisation), and each
output port owns a :class:`~repro.network.link.Link` whose serialisation
models output-port contention.
"""

from __future__ import annotations

from typing import Callable, Dict

from .link import Link
from .packet import Packet


class Switch:
    """Static-table L2 switch: destination address -> output link."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._ports: Dict[str, Link] = {}
        self.forwarded = 0
        self.unroutable = 0
        self.up = True

    def attach(self, addr: str, out_link: Link) -> None:
        """Bind ``addr`` to the link leading to that address's NIC."""
        if addr in self._ports:
            raise ValueError(f"switch {self.name}: {addr} already attached")
        self._ports[addr] = out_link

    def ingress(self) -> Callable[[Packet], None]:
        """The sink to hand to every host->switch link."""
        return self._forward

    def _forward(self, packet: Packet) -> None:
        if not self.up:
            packet.release()
            return
        out = self._ports.get(packet.dst)
        if out is None:
            self.unroutable += 1
            packet.release()
            return
        self.forwarded += 1
        out.send(packet)

    def set_up(self, up: bool) -> None:
        """Kill/revive the whole switch (multihoming failover scenarios)."""
        self.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={len(self._ports)}>"
