"""Unidirectional link: serialisation + propagation + drop-tail FIFO.

A transmitter can only push one packet onto the wire at a time; packets
that arrive while the transmitter is busy wait in a byte-bounded queue and
are dropped (tail drop) when it overflows.  Propagation is a pure delay, so
multiple packets can be in flight simultaneously.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simkernel import Kernel
from .packet import Packet

Sink = Callable[[Packet], None]

# queue-occupancy buckets in bytes: one MTU up to the default 512 KiB cap
QUEUE_OCCUPANCY_EDGES = (1500, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 2 * 1024 * 1024)


class Link:
    """One direction of a cable; create two for full duplex."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        bandwidth_bps: int,
        prop_delay_ns: int,
        queue_bytes: int = 512 * 1024,
        sink: Optional[Sink] = None,
    ) -> None:
        if prop_delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        if bandwidth_bps <= 0:
            raise ValueError(f"non-positive bandwidth: {bandwidth_bps}")
        self.kernel = kernel
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay_ns = prop_delay_ns
        self.queue_bytes = queue_bytes
        self.sink = sink
        self._ready_at = 0  # virtual time the transmitter becomes idle
        self._queued_bytes = 0
        # prebound completion callback: one bound-method allocation per
        # link instead of one per transmitted packet
        self._tx_complete_cb = self._tx_complete
        self.up = True  # administrative state (repro.faults link: targets)
        # PDES hook: when set, transmission completions hand
        # ``(link, packet)`` here instead of scheduling local propagation
        # — the packet is leaving this shard and will be delivered by the
        # peer shard that owns the receiving end (see repro.simkernel.pdes)
        self.divert: Optional[Callable[["Link", Packet], None]] = None
        # statistics
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.admin_down_drops = 0
        scope = kernel.metrics.scope(f"net.link.{name}")
        scope.probe("tx_packets", lambda: self.tx_packets)
        scope.probe("tx_bytes", lambda: self.tx_bytes)
        scope.probe("dropped_packets", lambda: self.dropped_packets)
        scope.probe("dropped_bytes", lambda: self.dropped_bytes)
        scope.probe("admin_down_drops", lambda: self.admin_down_drops)
        scope.probe("queued_bytes", lambda: self._queued_bytes)
        self._occupancy_hist = (
            scope.histogram("queue_occupancy_bytes", QUEUE_OCCUPANCY_EDGES)
            if kernel.metrics.enabled
            else None
        )

    def connect(self, sink: Sink) -> None:
        """Attach the receiving end (host NIC ingress or switch port)."""
        self.sink = sink

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the link (cable pull)."""
        self.up = up

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting for (or occupying) the transmitter."""
        return self._queued_bytes

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False if tail-dropped."""
        if self.sink is None:
            raise RuntimeError(f"link {self.name} has no sink connected")
        if not self.up:
            self.admin_down_drops += 1
            packet.release()
            return False
        size = packet.wire_size
        queued = self._queued_bytes + size
        if queued > self.queue_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += size
            packet.release()
            return False
        self._queued_bytes = queued
        if self._occupancy_hist is not None:
            self._occupancy_hist.observe(queued)
        # hot path: serialisation delay inlined (identical arithmetic to
        # simkernel.units.tx_time_ns) and completion scheduled through the
        # fire-and-forget kernel path — a transmission is never cancelled
        kernel = self.kernel
        now = kernel._now
        start = self._ready_at
        if start < now:
            start = now
        bandwidth = self.bandwidth_bps
        tx_ns = (size * 8_000_000_000 + bandwidth - 1) // bandwidth
        done = start + (tx_ns if tx_ns > 0 else 1)
        self._ready_at = done
        self.tx_packets += 1
        self.tx_bytes += size
        kernel.post_at(done, self._tx_complete_cb, packet)
        return True

    def _tx_complete(self, packet: Packet) -> None:
        self._queued_bytes -= packet.wire_size
        divert = self.divert
        if divert is not None:
            divert(self, packet)
            return
        if self.prop_delay_ns:
            self.kernel.post_after(self.prop_delay_ns, self.sink, packet)
        else:
            self.sink(packet)
