"""Network interface card: one address, one egress path.

A multihomed host (paper §2.1) simply owns several NICs, each on its own
subnet/switch, so the end-to-end paths are genuinely independent — losing
one switch only kills the packets routed over that interface.
"""

from __future__ import annotations

from typing import Callable, Optional

from .packet import Packet

Sink = Callable[[Packet], None]


class NIC:
    """A host interface: an IP address plus an egress sink (pipe or link)."""

    def __init__(self, addr: str, egress: Optional[Sink] = None) -> None:
        self.addr = addr
        self.egress = egress
        self.host = None  # set by Host.add_interface
        self.up = True
        self.tx_packets = 0
        self.rx_packets = 0

    def connect(self, egress: Sink) -> None:
        """Attach the first element of the egress chain."""
        self.egress = egress

    def send(self, packet: Packet) -> None:
        """Transmit if the interface is up; silently drop otherwise."""
        if not self.up:
            packet.release()
            return
        if self.egress is None:
            raise RuntimeError(f"NIC {self.addr} has no egress connected")
        self.tx_packets += 1
        self.egress(packet)

    def receive(self, packet: Packet) -> None:
        """Ingress from the wire; hands the packet to the owning host."""
        if not self.up or self.host is None:
            packet.release()
            return
        self.rx_packets += 1
        self.host.deliver(packet)

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the interface (failover tests)."""
        self.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<NIC {self.addr} {state}>"
