"""Dummynet-style impairment pipe on every host egress.

The paper's testbed ran FreeBSD Dummynet on every node to inject a
configurable packet loss rate (0%, 1%, 2%) on the links between nodes.
:class:`DummynetPipe` reproduces the ``plr`` behaviour — an independent
Bernoulli drop per packet, drawn from a named, seeded RNG stream so
experiments are reproducible, plus an optional fixed extra delay — and,
since the fault-injection subsystem (:mod:`repro.faults`), doubles as
the arming point for scenario impairments: a pipe owns a chain of
:class:`~repro.faults.impairments.Impairment` objects (the base
Bernoulli loss first, armed impairments after, in arming order) that
each packet flows through.

Determinism: the base loss draws from the same ``dummynet:<name>``
stream (one draw per packet, only while ``loss_rate > 0``) as before
the refactor; every armed impairment draws from its own stream, so
arming a scenario never perturbs the base loss pattern.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..faults.impairments import BernoulliLoss, Impairment
from ..simkernel import Kernel
from .packet import Packet

Sink = Callable[[Packet], None]


class DummynetPipe:
    """Callable packet filter: base Bernoulli loss + armed impairments."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        loss_rate: float = 0.0,
        extra_delay_ns: int = 0,
        sink: Optional[Sink] = None,
    ) -> None:
        if extra_delay_ns < 0:
            raise ValueError("extra delay cannot be negative")
        self.kernel = kernel
        self.name = name
        self.extra_delay_ns = extra_delay_ns
        self.sink = sink
        # loss_rate validation happens in BernoulliLoss ([0, 1]; 1.0 is a
        # legitimate full blackhole, the degenerate link-down case)
        self._base = BernoulliLoss(loss_rate).bind(kernel, f"dummynet:{name}")
        self._armed: List[Impairment] = []
        # the per-packet chain is cached and rebuilt only when the armed
        # set or the base loss rate changes (hot-path: one tuple read
        # instead of a list construction per packet)
        self._chain: tuple = ()
        self._rebuild_chain()
        self.passed_packets = 0
        self.dropped_packets = 0
        self.duplicated_packets = 0
        self.corrupted_packets = 0
        scope = kernel.metrics.scope(f"net.dummynet.{name}")
        scope.probe("passed_packets", lambda: self.passed_packets)
        scope.probe("dropped_packets", lambda: self.dropped_packets)
        scope.probe("duplicated_packets", lambda: self.duplicated_packets)
        scope.probe("corrupted_packets", lambda: self.corrupted_packets)
        scope.probe("armed_impairments", lambda: len(self._armed))

    # -- configuration ----------------------------------------------------
    @property
    def loss_rate(self) -> float:
        """Base Bernoulli drop probability (Dummynet ``plr``)."""
        return self._base.rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {rate}")
        self._base.rate = rate
        self._rebuild_chain()

    def connect(self, sink: Sink) -> None:
        """Attach the downstream element (usually a Link)."""
        self.sink = sink

    # -- impairment chain --------------------------------------------------
    def _rebuild_chain(self) -> None:
        """Recompute the cached per-packet impairment chain."""
        if self._base.rate == 0.0:
            self._chain = tuple(self._armed)
        else:
            self._chain = (self._base, *self._armed)

    def arm(self, impairment: Impairment) -> Impairment:
        """Append an impairment to the chain (bound here if needed)."""
        if not impairment.bound:
            impairment.bind(
                self.kernel,
                f"dummynet:{self.name}:{impairment.kind}{len(self._armed)}",
            )
        self._armed.append(impairment)
        self._rebuild_chain()
        return impairment

    def disarm(self, impairment: Impairment) -> None:
        """Remove a previously armed impairment (no-op if absent)."""
        if impairment in self._armed:
            self._armed.remove(impairment)
            self._rebuild_chain()

    @property
    def armed_impairments(self) -> tuple:
        """The currently armed (non-base) impairments, in chain order."""
        return tuple(self._armed)

    # -- data path ---------------------------------------------------------
    def __call__(self, packet: Packet) -> None:
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"dummynet pipe {self.name} has no sink")
        chain = self._chain
        if not chain:
            # clean-pipe fast path: nothing armed, no base loss
            self.passed_packets += 1
            if packet.corrupted:
                self.corrupted_packets += 1
            if self.extra_delay_ns:
                self.kernel.post_after(self.extra_delay_ns, sink, packet)
            else:
                sink(packet)
            return
        entries = [(packet, 0)]
        for impairment in chain:
            nxt = []
            for pkt, delay in entries:
                for out, extra in impairment.process(pkt):
                    nxt.append((out, delay + extra))
            entries = nxt
            if not entries:
                break
        if not entries:
            self.dropped_packets += 1
            return
        self.duplicated_packets += len(entries) - 1
        for pkt, delay in entries:
            self.passed_packets += 1
            if pkt.corrupted:
                self.corrupted_packets += 1
            total_delay = delay + self.extra_delay_ns
            if total_delay:
                self.kernel.post_after(total_delay, sink, pkt)
            else:
                sink(pkt)
