"""Dummynet-style loss/delay pipe.

The paper's testbed ran FreeBSD Dummynet on every node to inject a
configurable packet loss rate (0%, 1%, 2%) on the links between nodes.
:class:`DummynetPipe` reproduces the ``plr`` behaviour: an independent
Bernoulli drop per packet, drawn from a named, seeded RNG stream so
experiments are reproducible, plus an optional fixed extra delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simkernel import Kernel
from .packet import Packet

Sink = Callable[[Packet], None]


class DummynetPipe:
    """Callable packet filter: drop with probability ``loss_rate``."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        loss_rate: float = 0.0,
        extra_delay_ns: int = 0,
        sink: Optional[Sink] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {loss_rate}")
        if extra_delay_ns < 0:
            raise ValueError("extra delay cannot be negative")
        self.kernel = kernel
        self.name = name
        self.loss_rate = loss_rate
        self.extra_delay_ns = extra_delay_ns
        self.sink = sink
        self._rng = kernel.rng(f"dummynet:{name}")
        self.passed_packets = 0
        self.dropped_packets = 0
        scope = kernel.metrics.scope(f"net.dummynet.{name}")
        scope.probe("passed_packets", lambda: self.passed_packets)
        scope.probe("dropped_packets", lambda: self.dropped_packets)

    def connect(self, sink: Sink) -> None:
        """Attach the downstream element (usually a Link)."""
        self.sink = sink

    def __call__(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError(f"dummynet pipe {self.name} has no sink")
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        if self.extra_delay_ns:
            self.kernel.call_after(self.extra_delay_ns, self.sink, packet)
        else:
            self.sink(packet)
