"""Hosts: NICs, a serialised CPU, and protocol demultiplexing.

A :class:`Host` is where the transport stacks live.  Transports register as
protocol handlers; inbound packets are charged receive CPU (via
:class:`HostCPU`, which serialises work like a real single core) and then
demultiplexed by protocol; outbound packets are charged send CPU and routed
out of the NIC owning the packet's source address.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..simkernel import Kernel
from .costmodel import CostModel
from .nic import NIC
from .packet import Packet


class HostCPU:
    """A single serialised execution resource.

    ``execute`` queues work FIFO behind whatever the CPU is already doing;
    this is what makes per-message stack costs visible as throughput (the
    ping-pong sender cannot push packet N+1 while still checksumming N).
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._busy_until = 0
        self.total_busy_ns = 0

    def execute(self, cost_ns: int, fn: Callable, *args: Any) -> int:
        """Run ``fn(*args)`` after ``cost_ns`` of CPU, FIFO-serialised.

        Returns the virtual time at which the work completes.
        """
        if cost_ns < 0:
            raise ValueError(f"negative CPU cost: {cost_ns}")
        start = max(self.kernel.now, self._busy_until)
        done = start + cost_ns
        self._busy_until = done
        self.total_busy_ns += cost_ns
        if done == self.kernel.now:
            fn(*args)
        else:
            self.kernel.call_at(done, fn, *args)
        return done

    def charge(self, cost_ns: int) -> int:
        """Account CPU time without attaching a callback."""
        return self.execute(cost_ns, _noop)


def _noop() -> None:
    return None


class Host:
    """A cluster node: interfaces + CPU + registered transport handlers."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.cost_model = cost_model or CostModel()
        self.cpu = HostCPU(kernel)
        self.interfaces: List[NIC] = []
        self._handlers: Dict[str, Any] = {}
        self.rx_packets = 0
        self.tx_packets = 0
        # observability taps: fn(direction, host, packet); consumers are
        # PacketTap subclasses (repro.metrics.taps, repro.util.trace)
        self.taps: List[Callable[[str, "Host", Packet], None]] = []
        scope = kernel.metrics.scope(f"host.{name}")
        scope.probe("rx_packets", lambda: self.rx_packets)
        scope.probe("tx_packets", lambda: self.tx_packets)
        scope.probe("cpu_busy_ns", lambda: self.cpu.total_busy_ns)

    # -- interfaces ------------------------------------------------------
    def add_interface(self, nic: NIC) -> NIC:
        """Attach a NIC; the first attached NIC is the primary address."""
        nic.host = self
        self.interfaces.append(nic)
        return nic

    def addresses(self) -> List[str]:
        """All local addresses, primary first."""
        return [nic.addr for nic in self.interfaces]

    @property
    def primary_address(self) -> str:
        """The address of the first (primary) interface."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        return self.interfaces[0].addr

    def nic_for(self, addr: str) -> NIC:
        """The NIC bound to ``addr`` (falls back to the primary NIC)."""
        for nic in self.interfaces:
            if nic.addr == addr:
                return nic
        return self.interfaces[0]

    # -- protocol handlers -------------------------------------------------
    def register_protocol(self, proto: str, handler: Any) -> None:
        """Install the object whose ``.receive(packet)`` gets ``proto`` input."""
        if proto in self._handlers:
            raise ValueError(f"host {self.name}: protocol {proto} already registered")
        self._handlers[proto] = handler

    def protocol_handler(self, proto: str) -> Any:
        """Look up a previously registered handler."""
        return self._handlers[proto]

    # -- data path ---------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` out of the NIC owning ``packet.src``,
        charging the protocol's per-packet send CPU first."""
        nic = self.nic_for(packet.src)
        cost = self.cost_model.packet_send_cost(packet.proto, packet.wire_size)
        self.tx_packets += 1
        for tap in self.taps:
            tap("tx", self, packet)
        self.cpu.execute(cost, nic.send, packet)

    def deliver(self, packet: Packet) -> None:
        """Ingress path: charge receive CPU, then demux to the transport."""
        handler = self._handlers.get(packet.proto)
        if handler is None:
            return  # no listener: silently dropped, like an unhandled proto
        self.rx_packets += 1
        for tap in self.taps:
            tap("rx", self, packet)
        cost = self.cost_model.packet_recv_cost(packet.proto, packet.wire_size)
        self.cpu.execute(cost, handler.receive, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} {self.addresses()}>"
