"""Hosts: NICs, a serialised CPU, and protocol demultiplexing.

A :class:`Host` is where the transport stacks live.  Transports register as
protocol handlers; inbound packets are charged receive CPU (via
:class:`HostCPU`, which serialises work like a real single core) and then
demultiplexed by protocol; outbound packets are charged send CPU and routed
out of the NIC owning the packet's source address.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..simkernel import Kernel
from .costmodel import CostModel
from .nic import NIC
from .packet import Packet


class HostCPU:
    """A single serialised execution resource.

    ``execute`` queues work FIFO behind whatever the CPU is already doing;
    this is what makes per-message stack costs visible as throughput (the
    ping-pong sender cannot push packet N+1 while still checksumming N).
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._busy_until = 0
        self.total_busy_ns = 0

    def execute(self, cost_ns: int, fn: Callable, *args: Any) -> int:
        """Run ``fn(*args)`` after ``cost_ns`` of CPU, FIFO-serialised.

        Returns the virtual time at which the work completes.
        """
        if cost_ns < 0:
            raise ValueError(f"negative CPU cost: {cost_ns}")
        # per-packet hot path: avoid max()/property overhead, and schedule
        # through the fire-and-forget kernel path (CPU work is never
        # cancelled, so no Timer handle is needed)
        kernel = self.kernel
        now = kernel._now
        start = self._busy_until
        if start < now:
            start = now
        done = start + cost_ns
        self._busy_until = done
        self.total_busy_ns += cost_ns
        if done == now:
            fn(*args)
        else:
            kernel.post_at(done, fn, *args)
        return done

    def charge(self, cost_ns: int) -> int:
        """Account CPU time without attaching a callback.

        Same serialisation as ``execute(cost_ns, _noop)`` — the no-op
        completion event still lands on the heap so clock advance and
        deadlock detection are unchanged — minus one call frame.
        """
        if cost_ns < 0:
            raise ValueError(f"negative CPU cost: {cost_ns}")
        kernel = self.kernel
        now = kernel._now
        start = self._busy_until
        if start < now:
            start = now
        done = start + cost_ns
        self._busy_until = done
        self.total_busy_ns += cost_ns
        if done != now:
            kernel.post_at(done, _noop)
        return done


def _noop() -> None:
    return None


class Host:
    """A cluster node: interfaces + CPU + registered transport handlers."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.cost_model = cost_model or CostModel()
        self.cpu = HostCPU(kernel)
        self.interfaces: List[NIC] = []
        self._nic_by_addr: Dict[str, NIC] = {}
        # prebound per-address NIC.send / per-proto handler.receive: the
        # data path schedules these once per packet, and looking up a
        # stored bound method is cheaper than re-binding it each time
        self._nic_send_by_addr: Dict[str, Callable[[Packet], None]] = {}
        self._handler_recv: Dict[str, Callable[[Packet], None]] = {}
        # with CRC32c off (the paper's configuration) packet CPU costs are
        # size-independent, so they can be memoised per protocol
        self._packet_cost_cache: Optional[Dict[str, tuple]] = (
            {} if self.cost_model.crc32c_per_kib_ns == 0 else None
        )
        self._handlers: Dict[str, Any] = {}
        self.rx_packets = 0
        self.tx_packets = 0
        # observability taps: fn(direction, host, packet); consumers are
        # PacketTap subclasses (repro.metrics.taps, repro.util.trace)
        self.taps: List[Callable[[str, "Host", Packet], None]] = []
        scope = kernel.metrics.scope(f"host.{name}")
        scope.probe("rx_packets", lambda: self.rx_packets)
        scope.probe("tx_packets", lambda: self.tx_packets)
        scope.probe("cpu_busy_ns", lambda: self.cpu.total_busy_ns)

    # -- interfaces ------------------------------------------------------
    def add_interface(self, nic: NIC) -> NIC:
        """Attach a NIC; the first attached NIC is the primary address."""
        nic.host = self
        self.interfaces.append(nic)
        if nic.addr not in self._nic_by_addr:
            self._nic_by_addr[nic.addr] = nic
            self._nic_send_by_addr[nic.addr] = nic.send
        return nic

    def addresses(self) -> List[str]:
        """All local addresses, primary first."""
        return [nic.addr for nic in self.interfaces]

    @property
    def primary_address(self) -> str:
        """The address of the first (primary) interface."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        return self.interfaces[0].addr

    def nic_for(self, addr: str) -> NIC:
        """The NIC bound to ``addr`` (falls back to the primary NIC)."""
        nic = self._nic_by_addr.get(addr)
        if nic is not None:
            return nic
        return self.interfaces[0]

    # -- protocol handlers -------------------------------------------------
    def register_protocol(self, proto: str, handler: Any) -> None:
        """Install the object whose ``.receive(packet)`` gets ``proto`` input."""
        if proto in self._handlers:
            raise ValueError(f"host {self.name}: protocol {proto} already registered")
        self._handlers[proto] = handler
        self._handler_recv[proto] = handler.receive

    def protocol_handler(self, proto: str) -> Any:
        """Look up a previously registered handler."""
        return self._handlers[proto]

    # -- data path ---------------------------------------------------------
    def _packet_costs(self, proto: str, wire_size: int) -> tuple:
        """(send_cost, recv_cost) for one packet, memoised when constant."""
        cache = self._packet_cost_cache
        if cache is not None:
            costs = cache.get(proto)
            if costs is None:
                costs = cache[proto] = (
                    self.cost_model.packet_send_cost(proto, wire_size),
                    self.cost_model.packet_recv_cost(proto, wire_size),
                )
            return costs
        return (
            self.cost_model.packet_send_cost(proto, wire_size),
            self.cost_model.packet_recv_cost(proto, wire_size),
        )

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` out of the NIC owning ``packet.src``,
        charging the protocol's per-packet send CPU first."""
        nic_send = self._nic_send_by_addr.get(packet.src)
        if nic_send is None:
            nic_send = self.interfaces[0].send  # unknown src: primary NIC
        cost = self._packet_costs(packet.proto, packet.wire_size)[0]
        self.tx_packets += 1
        if self.taps:
            for tap in self.taps:
                tap("tx", self, packet)
        # per-packet hot path: HostCPU.execute inlined (the cost model
        # never returns a negative charge, so the guard is skipped)
        cpu = self.cpu
        kernel = cpu.kernel
        now = kernel._now
        start = cpu._busy_until
        if start < now:
            start = now
        done = start + cost
        cpu._busy_until = done
        cpu.total_busy_ns += cost
        if done == now:
            nic_send(packet)
        else:
            kernel.post_at(done, nic_send, packet)

    def deliver(self, packet: Packet) -> None:
        """Ingress path: charge receive CPU, then demux to the transport."""
        handler_recv = self._handler_recv.get(packet.proto)
        if handler_recv is None:
            packet.release()
            return  # no listener: silently dropped, like an unhandled proto
        self.rx_packets += 1
        if self.taps:
            for tap in self.taps:
                tap("rx", self, packet)
        cost = self._packet_costs(packet.proto, packet.wire_size)[1]
        cpu = self.cpu
        kernel = cpu.kernel
        now = kernel._now
        start = cpu._busy_until
        if start < now:
            start = now
        done = start + cost
        cpu._busy_until = done
        cpu.total_busy_ns += cost
        if done == now:
            handler_recv(packet)
        else:
            kernel.post_at(done, handler_recv, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} {self.addresses()}>"
