"""Packet-level network substrate.

Models the paper's testbed: eight hosts with one or more gigabit NICs,
connected through a layer-2 switch, with Dummynet-style seeded Bernoulli
loss pipes on host egress.  Everything is built from four small pieces:

* :class:`~repro.network.packet.Packet` — an IP-ish datagram whose payload
  is a transport PDU object (bytes are accounted, never materialised),
* :class:`~repro.network.link.Link` — unidirectional serialisation +
  propagation + FIFO drop-tail queue,
* :class:`~repro.network.switch.Switch` — static L2 forwarding,
* :class:`~repro.network.host.Host` — NICs, protocol demux, and a
  :class:`~repro.network.costmodel.CostModel`-driven CPU.

:func:`~repro.network.topology.build_cluster` assembles the whole testbed in
one call.
"""

from .costmodel import CostModel
from .dummynet import DummynetPipe
from .host import Host, HostCPU
from .link import Link
from .nic import NIC
from .packet import Packet
from .switch import Switch
from .topology import Cluster, ClusterConfig, build_cluster

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "DummynetPipe",
    "Host",
    "HostCPU",
    "Link",
    "NIC",
    "Packet",
    "Switch",
    "build_cluster",
]
