"""Machinery shared by both transports: RTT estimation and RTO policy.

The two protocols use the same Jacobson/Karels estimator (RFC 6298 /
RFC 4960 §6.3 use identical formulas) but different *timer personalities*:
2005-era BSD TCP ran its retransmission clock off a coarse 500 ms slow
timer with a high minimum, while KAME SCTP used fine-grained timers with
RTO.Min = 1 s.  The personality is exactly what makes timeout recovery so
much more expensive for TCP in the paper's loss experiments, so it is
modelled explicitly here rather than buried in each stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simkernel import MILLISECOND, SECOND


@dataclass(frozen=True)
class TimerPersonality:
    """RTO clamping/quantisation policy."""

    min_rto_ns: int
    max_rto_ns: int
    initial_rto_ns: int
    granularity_ns: int  # RTO rounded up to a multiple of this (0 = exact)

    def clamp(self, rto_ns: int) -> int:
        """Apply granularity quantisation and min/max clamping."""
        if self.granularity_ns:
            ticks = (rto_ns + self.granularity_ns - 1) // self.granularity_ns
            rto_ns = ticks * self.granularity_ns
        return max(self.min_rto_ns, min(self.max_rto_ns, rto_ns))


#: BSD 4.4-lineage TCP: 500 ms slow-timer ticks, min RTO two ticks.
BSD_TCP_TIMERS = TimerPersonality(
    min_rto_ns=1 * SECOND,
    max_rto_ns=64 * SECOND,
    initial_rto_ns=3 * SECOND,
    granularity_ns=500 * MILLISECOND,
)

#: KAME SCTP: RFC 4960 defaults (RTO.Min 1 s, RTO.Max 60 s), fine timers.
KAME_SCTP_TIMERS = TimerPersonality(
    min_rto_ns=1 * SECOND,
    max_rto_ns=60 * SECOND,
    initial_rto_ns=3 * SECOND,
    granularity_ns=10 * MILLISECOND,
)


class RTOEstimator:
    """Jacobson/Karels smoothed RTT -> RTO, with exponential backoff."""

    def __init__(self, personality: TimerPersonality) -> None:
        self.personality = personality
        self.srtt_ns: int | None = None
        self.rttvar_ns = 0
        self._base_rto_ns = personality.initial_rto_ns
        self.backoff_exponent = 0

    def observe(self, rtt_ns: int) -> None:
        """Feed one RTT sample (only from unretransmitted data — Karn)."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
        else:
            # alpha = 1/8, beta = 1/4, integer arithmetic
            err = rtt_ns - self.srtt_ns
            self.rttvar_ns += (abs(err) - self.rttvar_ns) // 4
            self.srtt_ns += err // 8
        self._base_rto_ns = self.srtt_ns + max(
            self.personality.granularity_ns or 1, 4 * self.rttvar_ns
        )
        self.backoff_exponent = 0

    @property
    def rto_ns(self) -> int:
        """Current retransmission timeout including backoff."""
        rto = self._base_rto_ns << self.backoff_exponent
        return self.personality.clamp(rto)

    def back_off(self) -> None:
        """Double the RTO after a timeout (capped by the personality max)."""
        if (self._base_rto_ns << self.backoff_exponent) < self.personality.max_rto_ns:
            self.backoff_exponent += 1

    def reset_backoff(self) -> None:
        """Clear backoff after successful delivery progress."""
        self.backoff_exponent = 0
