"""TCP send and receive buffers.

``SendBuffer`` maps absolute sequence numbers to application blobs so any
range can be (re)materialised for transmission or retransmission without
copying.  ``ReassemblyBuffer`` holds out-of-order segments, produces SACK
blocks, and releases in-order data to the application.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ...util.blobs import Blob, ChunkList


class SendBuffer:
    """Blobs queued for transmission, addressed by absolute sequence."""

    def __init__(self, start_seq: int, capacity: int) -> None:
        self.capacity = capacity
        self._head_seq = start_seq  # sequence of the first byte still stored
        self._tail_seq = start_seq  # sequence just past the last stored byte
        self._pieces: Deque[Tuple[int, Blob]] = deque()  # (start_seq, blob)

    @property
    def tail_seq(self) -> int:
        """Sequence just past the last byte the app has written."""
        return self._tail_seq

    @property
    def used(self) -> int:
        """Bytes currently buffered (unacknowledged + unsent)."""
        return self._tail_seq - self._head_seq

    @property
    def free(self) -> int:
        """Remaining buffer capacity in bytes."""
        return self.capacity - self.used

    def write(self, blob: Blob) -> int:
        """Append as much of ``blob`` as fits; returns bytes accepted."""
        accept = min(blob.nbytes, self.free)
        if accept <= 0:
            return 0
        piece = blob if accept == blob.nbytes else blob.slice(0, accept)
        self._pieces.append((self._tail_seq, piece))
        self._tail_seq += accept
        return accept

    def bytes_after(self, seq: int) -> int:
        """Unsent/unacked bytes at or above sequence ``seq``."""
        avail = self._tail_seq - seq
        return avail if avail > 0 else 0

    def read_range(self, seq: int, nbytes: int) -> ChunkList:
        """Materialise payload for [seq, seq+nbytes) — used for (re)sends."""
        if seq < self._head_seq or seq + nbytes > self._tail_seq:
            raise ValueError(
                f"range [{seq},{seq + nbytes}) outside buffered "
                f"[{self._head_seq},{self._tail_seq})"
            )
        out = ChunkList()
        end = seq + nbytes
        for start, blob in self._pieces:
            blob_end = start + blob.nbytes
            if blob_end <= seq:
                continue
            if start >= end:
                break
            lo = max(seq, start) - start
            hi = min(end, blob_end) - start
            out.append(blob.slice(lo, hi))
        return out

    def release_below(self, seq: int) -> int:
        """Drop fully acknowledged bytes below ``seq``; returns bytes freed."""
        seq = min(seq, self._tail_seq)
        freed = max(0, seq - self._head_seq)
        while self._pieces:
            start, blob = self._pieces[0]
            if start + blob.nbytes <= seq:
                self._pieces.popleft()
            elif start < seq:
                # partial ack inside a blob: trim its acked prefix
                self._pieces[0] = (seq, blob.slice(seq - start, blob.nbytes))
                break
            else:
                break
        self._head_seq = max(self._head_seq, seq)
        return freed


class ReassemblyBuffer:
    """Receiver-side sequencing: in-order release + SACK generation."""

    def __init__(self, rcv_nxt: int) -> None:
        self.rcv_nxt = rcv_nxt
        # out-of-order segments: sorted, non-overlapping (start, end, data)
        self._segments: List[Tuple[int, int, ChunkList]] = []
        self._recent_blocks: List[Tuple[int, int]] = []  # MRU SACK blocks

    @property
    def out_of_order_bytes(self) -> int:
        """Bytes parked above the in-order point (consume receive buffer)."""
        segments = self._segments
        if not segments:  # loss-free steady state: skip the genexp setup
            return 0
        return sum(end - start for start, end, _ in segments)

    def offer(self, seq: int, data: ChunkList) -> ChunkList:
        """Accept a segment; returns newly in-order data (possibly empty).

        Handles overlap trimming.  Data below ``rcv_nxt`` is discarded as
        duplicate; data overlapping queued segments keeps the first copy.
        """
        end = seq + data.nbytes
        rcv_nxt = self.rcv_nxt
        if end <= rcv_nxt:
            return ChunkList()  # entirely duplicate
        if seq < rcv_nxt:
            data = data.slice(rcv_nxt - seq, data.nbytes)
            seq = rcv_nxt

        if seq == rcv_nxt:
            self.rcv_nxt = end
            if not self._segments:
                # loss-free steady state: nothing parked to drain, so the
                # segment's own payload is exactly what gets delivered
                if self._recent_blocks:
                    self._note_block(seq, end, arrived_in_order=True)
                return data
            delivered = ChunkList()
            delivered.extend(data)
            self._drain_queue(delivered)
            self._note_block(seq, end, arrived_in_order=True)
            return delivered

        self._insert(seq, end, data)
        self._note_block(seq, end, arrived_in_order=False)
        return ChunkList()

    def _insert(self, seq: int, end: int, data: ChunkList) -> None:
        # trim against existing segments (first arrival wins)
        for start0, end0, _ in list(self._segments):
            if end <= start0 or seq >= end0:
                continue
            if seq >= start0 and end <= end0:
                return  # fully covered
            if seq < start0 < end <= end0:
                data = data.slice(0, start0 - seq)
                end = start0
            elif start0 <= seq < end0 < end:
                data = data.slice(end0 - seq, data.nbytes)
                seq = end0
            elif seq < start0 and end > end0:
                # split: keep the left piece, recurse on the right
                right = data.slice(end0 - seq, data.nbytes)
                data = data.slice(0, start0 - seq)
                self._insert(end0, end, right)
                end = start0
        if end > seq:
            self._segments.append((seq, end, data))
            self._segments.sort(key=lambda item: item[0])

    def _drain_queue(self, delivered: ChunkList) -> None:
        while self._segments and self._segments[0][0] <= self.rcv_nxt:
            start, end, data = self._segments.pop(0)
            if end <= self.rcv_nxt:
                continue  # stale duplicate
            if start < self.rcv_nxt:
                data = data.slice(self.rcv_nxt - start, data.nbytes)
            delivered.extend(data)
            self.rcv_nxt = end

    # -- SACK block generation --------------------------------------------
    def _note_block(self, seq: int, end: int, arrived_in_order: bool) -> None:
        if arrived_in_order:
            # in-order data invalidates blocks below rcv_nxt
            self._recent_blocks = [
                (s, e) for s, e in self._recent_blocks if e > self.rcv_nxt
            ]
            return
        merged = (seq, end)
        blocks = []
        for s, e in self._recent_blocks:
            if e < merged[0] or s > merged[1]:
                blocks.append((s, e))
            else:
                merged = (min(s, merged[0]), max(e, merged[1]))
        self._recent_blocks = [merged] + blocks

    def sack_blocks(self, max_blocks: int) -> Tuple[Tuple[int, int], ...]:
        """Most-recently-updated SACK blocks, capped at ``max_blocks``."""
        if not self._recent_blocks:  # loss-free steady state
            return ()
        live = [(s, e) for s, e in self._recent_blocks if e > self.rcv_nxt]
        return tuple(live[:max_blocks])

    @property
    def has_gaps(self) -> bool:
        """Whether any out-of-order data is parked."""
        return bool(self._segments)
