"""Non-blocking socket facade over :class:`TCPConnection`.

This is the API surface LAM's TCP RPI uses: non-blocking ``send``/``recv``
that return "would block" instead of waiting, plus a :class:`Selector`
mimicking ``select()`` — including its linear-in-descriptors CPU cost,
which the paper (citing [20]) identifies as a scalability liability of the
socket-per-peer design.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ...simkernel import Future
from ...util.blobs import Blob, ChunkList
from .connection import TCPConfig, TCPConnection
from .endpoint import ListenerHooks, TCPEndpoint


class TCPSocket:
    """One connected (or connecting) TCP socket, non-blocking semantics."""

    def __init__(self, conn: TCPConnection) -> None:
        self.conn = conn
        self._connect_future: Optional[Future] = None
        self._watchers: Set["Selector"] = set()
        self.closed_error: Optional[str] = None
        conn.on_established = self._on_established
        conn.on_readable = self._notify_watchers
        conn.on_writable = self._notify_watchers
        conn.on_closed = self._on_closed

    # -- establishment -----------------------------------------------------
    @classmethod
    def connect(
        cls,
        endpoint: TCPEndpoint,
        remote_addr: str,
        remote_port: int,
        config: Optional[TCPConfig] = None,
    ) -> "TCPSocket":
        """Start an active open; await :meth:`connected` for completion."""
        conn = endpoint.connect(remote_addr, remote_port, config=config)
        return cls(conn)

    def connected(self) -> Future:
        """Future resolving (to self) when the handshake completes."""
        fut = Future(name=f"connect:{self.conn.remote_addr}:{self.conn.remote_port}")
        if self.conn.state == "ESTABLISHED":
            fut.set_result(self)
        elif self.closed_error is not None:
            fut.set_exception(ConnectionError(self.closed_error))
        else:
            self._connect_future = fut
        return fut

    def _on_established(self) -> None:
        if self._connect_future is not None and not self._connect_future.done():
            self._connect_future.set_result(self)
        self._notify_watchers()

    def _on_closed(self, error: Optional[str]) -> None:
        self.closed_error = error
        if self._connect_future is not None and not self._connect_future.done():
            self._connect_future.set_exception(
                ConnectionError(error or "connection closed")
            )
        self._notify_watchers()

    # -- data ---------------------------------------------------------------
    def send(self, blob: Blob) -> int:
        """Queue bytes; returns bytes accepted, 0 when the call would block."""
        if self.closed_error is not None:
            raise BrokenPipeError(self.closed_error)
        return self.conn.app_write(blob)

    def recv(self, nbytes: int) -> Optional[ChunkList]:
        """Read up to ``nbytes``; None = would block; empty ChunkList = EOF."""
        conn = self.conn
        if conn._ready.nbytes > 0:  # == app_readable_bytes(), sans the call
            return conn.app_read(nbytes)
        if conn.eof_pending or self.closed_error is not None:
            return ChunkList()
        return None

    def close(self) -> None:
        """Half-close the sending direction (FIN after pending data)."""
        self.conn.app_close()

    def abort(self) -> None:
        """Hard reset."""
        self.conn.abort()

    # -- readiness ------------------------------------------------------------
    @property
    def readable(self) -> bool:
        """Data buffered, EOF reached, or connection dead."""
        conn = self.conn
        return (
            conn._ready.nbytes > 0  # == app_readable_bytes(), sans the call
            or conn.eof_pending
            or self.closed_error is not None
        )

    @property
    def writable(self) -> bool:
        """Send buffer has room (or the socket is dead: writes will raise)."""
        if self.closed_error is not None:
            return True
        return self.conn.state == "ESTABLISHED" and self.conn.writable_bytes() > 0

    def _attach(self, selector: "Selector") -> None:
        self._watchers.add(selector)

    def _detach(self, selector: "Selector") -> None:
        self._watchers.discard(selector)

    def _notify_watchers(self) -> None:
        if not self._watchers:  # common: nobody is selecting on this socket
            return
        for watcher in list(self._watchers):
            watcher._socket_event()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TCPSocket {self.conn!r}>"


class TCPListener:
    """Listening socket with an accept queue."""

    def __init__(
        self,
        endpoint: TCPEndpoint,
        port: int,
        config: Optional[TCPConfig] = None,
    ) -> None:
        self.endpoint = endpoint
        self.port = port
        self._backlog: List[TCPSocket] = []
        self._acceptors: List[Future] = []
        endpoint.listen(port, ListenerHooks(self._on_new_connection, config))

    def _on_new_connection(self, conn: TCPConnection) -> None:
        sock = TCPSocket(conn)

        def when_established() -> None:
            sock._notify_watchers()
            while self._acceptors:
                fut = self._acceptors.pop(0)
                if not fut.done():
                    fut.set_result(sock)
                    return
            self._backlog.append(sock)

        conn.on_established = when_established

    def accept(self) -> Future:
        """Future resolving to the next fully established TCPSocket."""
        fut = Future(name=f"accept:{self.port}")
        if self._backlog:
            fut.set_result(self._backlog.pop(0))
        else:
            self._acceptors.append(fut)
        return fut

    def close(self) -> None:
        """Stop listening (queued-but-unaccepted connections stay alive)."""
        self.endpoint.unlisten(self.port)


class Selector:
    """``select()``-alike over TCPSockets, with modelled CPU cost.

    ``wait`` resolves with (readable, writable) lists as soon as any
    watched socket is ready, charging the host CPU the documented
    linear-in-sockets cost per invocation (CostModel.select_cost).
    """

    def __init__(self, host) -> None:
        self.host = host
        self._pending: Optional[Future] = None
        self._read_set: List[TCPSocket] = []
        self._write_set: List[TCPSocket] = []
        self.calls = 0

    def wait(
        self,
        read_sockets: Iterable[TCPSocket],
        write_sockets: Iterable[TCPSocket] = (),
    ) -> Future:
        """Future of (readable_list, writable_list); charges select() cost."""
        if self._pending is not None and not self._pending.done():
            raise RuntimeError("selector already waiting")
        # per-select hot path: the watch sets are rebuilt on every wait
        # (copied — the caller's socket list can mutate while we watch);
        # callers never pass duplicates, so plain lists suffice
        read_set = list(read_sockets)
        write_set = list(write_sockets)
        self._read_set = read_set
        self._write_set = write_set
        self.calls += 1
        cm = self.host.cost_model
        self.host.cpu.charge(  # == select_cost(), sans the method call
            cm.select_base_ns + cm.select_per_socket_ns * (len(read_set) + len(write_set))
        )

        fut = Future(name="select")
        # already-ready fast path: resolve before attaching watchers, so a
        # select over a readable socket never pays attach/detach (the lists
        # are built exactly as _socket_event would build them)
        readable = [s for s in read_set if s.readable]
        writable = [s for s in write_set if s.writable]
        if readable or writable:
            fut.set_result((readable, writable))
            return fut
        self._pending = fut
        for sock in read_set:
            sock._attach(self)
        for sock in write_set:
            sock._attach(self)
        return fut

    def cancel_wait(self) -> None:
        """Abandon the current wait (resolves with empty ready sets)."""
        fut = self._pending
        if fut is None:
            return
        self._pending = None
        self._detach_all()
        if not fut.done():
            fut.set_result(([], []))

    def _detach_all(self) -> None:
        for sock in self._read_set:
            sock._detach(self)
        for sock in self._write_set:
            sock._detach(self)

    def _socket_event(self) -> None:
        fut = self._pending
        if fut is None or fut.done():
            return
        readable = [s for s in self._read_set if s.readable]
        writable = [s for s in self._write_set if s.writable]
        if not readable and not writable:
            return
        self._pending = None
        self._detach_all()
        fut.set_result((readable, writable))
