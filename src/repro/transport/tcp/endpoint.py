"""Per-host TCP endpoint: port table and segment demultiplexing.

Registered on a :class:`repro.network.Host` under protocol ``"tcp"``.
Owns every connection terminating at this host, hands SYNs to listeners,
and answers strays with RST.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...network.host import Host
from ...network.packet import IP_HEADER, Packet
from .connection import CONN_STAT_FIELDS, ConnStats, TCPConfig, TCPConnection
from .segment import ACK, RST, SYN, TCP_HEADER, TCPSegment

ConnKey = Tuple[int, str, int]  # (local_port, remote_addr, remote_port)


class TCPEndpoint:
    """The host's TCP stack entry point."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host: Host, default_config: Optional[TCPConfig] = None) -> None:
        self.host = host
        self.kernel = host.kernel
        self.default_config = default_config or TCPConfig()
        self._conns: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[int, "ListenerHooks"] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._iss_rng = host.kernel.rng(f"tcp.iss.{host.name}")
        self.checksum_drops = 0
        host.register_protocol("tcp", self)
        # per-host stat sums over every connection this endpoint ever made
        # (closed connections keep counting — teardown must not lose data)
        self._all_conn_stats: list[ConnStats] = []
        scope = self.kernel.metrics.scope(f"transport.tcp.{host.name}")
        for name in CONN_STAT_FIELDS:
            scope.probe(
                name,
                lambda n=name: sum(getattr(s, n) for s in self._all_conn_stats),
            )
        scope.probe("connections_total", lambda: len(self._all_conn_stats))
        scope.probe("connections_open", lambda: len(self._conns))
        scope.probe("checksum_drops", lambda: self.checksum_drops)

    def track_conn_stats(self, stats: ConnStats) -> None:
        """Include one connection's counters in the per-host sums."""
        self._all_conn_stats.append(stats)

    def total_stats(self) -> ConnStats:
        """Sum of every connection's counters (open and closed)."""
        total = ConnStats()
        for stats in self._all_conn_stats:
            for name in CONN_STAT_FIELDS:
                setattr(total, name, getattr(total, name) + getattr(stats, name))
        return total

    # -- connection management -------------------------------------------
    def pick_iss(self) -> int:
        """Random initial send sequence (keeps connections distinguishable)."""
        return self._iss_rng.randrange(1, 1 << 28)

    def allocate_port(self) -> int:
        """Next ephemeral local port."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def connect(
        self,
        remote_addr: str,
        remote_port: int,
        local_port: Optional[int] = None,
        config: Optional[TCPConfig] = None,
    ) -> TCPConnection:
        """Create and start an active-open connection."""
        lport = local_port if local_port is not None else self.allocate_port()
        conn = TCPConnection(
            self,
            local_addr=self.host.primary_address,
            local_port=lport,
            remote_addr=remote_addr,
            remote_port=remote_port,
            config=config or self.default_config,
        )
        key = (lport, remote_addr, remote_port)
        if key in self._conns:
            raise OSError(f"address in use: {key}")
        self._conns[key] = conn
        conn.open_active()
        return conn

    def listen(self, port: int, hooks: "ListenerHooks") -> None:
        """Install an accept handler on ``port``."""
        if port in self._listeners:
            raise OSError(f"port {port} already listening")
        self._listeners[port] = hooks

    def unlisten(self, port: int) -> None:
        """Remove a listener."""
        self._listeners.pop(port, None)

    def forget(self, conn: TCPConnection) -> None:
        """Remove a closed connection from the demux table."""
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._conns.get(key) is conn:
            del self._conns[key]

    # -- packet input -------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Demultiplex one inbound packet to its connection or listener."""
        if packet.corrupted:
            # Internet checksum failure: the segment never reaches the
            # connection (silently discarded, recovered by retransmission).
            self.checksum_drops += 1
            packet.release()
            return
        seg: TCPSegment = packet.payload
        key = (seg.dst_port, packet.src, seg.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            # the datagram terminates here: only the segment travels on
            packet.release()
            conn.on_segment(seg)
            return
        hooks = self._listeners.get(seg.dst_port)
        if hooks is not None and seg.has(SYN) and not seg.has(ACK):
            conn = TCPConnection(
                self,
                local_addr=packet.dst,
                local_port=seg.dst_port,
                remote_addr=packet.src,
                remote_port=seg.src_port,
                config=hooks.config or self.default_config,
            )
            self._conns[key] = conn
            packet.release()
            hooks.on_new_connection(conn)
            conn.open_passive(seg)
            return
        if not seg.has(RST):
            self._send_rst(packet, seg)
        packet.release()

    def _send_rst(self, packet: Packet, seg: TCPSegment) -> None:
        rst = TCPSegment(
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            seq=seg.ack,
            ack=seg.end_seq,
            flags=RST | ACK,
            window=0,
        )
        self.host.send(
            Packet.acquire(
                packet.dst, packet.src, "tcp", rst, IP_HEADER + TCP_HEADER
            )
        )


class ListenerHooks:
    """What a listening socket gives the endpoint: a connection callback."""

    def __init__(self, on_new_connection, config: Optional[TCPConfig] = None) -> None:
        self.on_new_connection = on_new_connection
        self.config = config
