"""TCP segment PDU and wire-size accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ...network.packet import IP_HEADER
from ...util.blobs import ChunkList

TCP_HEADER = 20
TIMESTAMP_OPTION = 12  # RFC 1323 timestamps, on by default in 2005 stacks

# Flag bits
FIN = 0x01
SYN = 0x02
RST = 0x04
ACK = 0x10


SackBlock = Tuple[int, int]  # [start, end) sequence range


@dataclass(slots=True)
class TCPSegment:
    """One TCP segment; ``data`` is a ChunkList of payload blobs."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    data: Optional[ChunkList] = None
    sack_blocks: Tuple[SackBlock, ...] = ()
    ts_echo: int = 0  # echoed send timestamp (ns) for RTT sampling

    data_len: int = field(init=False)

    def __post_init__(self) -> None:
        self.data_len = self.data.nbytes if self.data is not None else 0

    # -- helpers -----------------------------------------------------------
    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload (+SYN/FIN)."""
        length = self.data_len
        if self.flags & SYN:
            length += 1
        if self.flags & FIN:
            length += 1
        return self.seq + length

    def has(self, flag: int) -> bool:
        """Test a control flag."""
        return bool(self.flags & flag)

    def wire_size(self) -> int:
        """On-the-wire bytes including IP and TCP headers + options."""
        options = TIMESTAMP_OPTION
        if self.sack_blocks:
            # 2 bytes kind/len + 8 per block, padded to a 4-byte boundary
            raw = 2 + 8 * len(self.sack_blocks)
            options += (raw + 3) // 4 * 4
        return IP_HEADER + TCP_HEADER + options + self.data_len

    def flag_names(self) -> str:
        """Human-readable flags for traces."""
        names = []
        for bit, name in ((SYN, "SYN"), (FIN, "FIN"), (RST, "RST"), (ACK, "ACK")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TCP {self.src_port}->{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack} len={self.data_len} "
            f"win={self.window} sack={list(self.sack_blocks)}>"
        )
