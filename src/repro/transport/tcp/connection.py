"""TCP connection state machine.

One :class:`TCPConnection` is one direction-pair of a TCP conversation:
handshake, sliding-window byte stream, loss recovery (fast retransmit /
NewReno fast recovery with a SACK scoreboard / retransmission timeout with
exponential backoff), flow control with persist probes, delayed ACKs and
connection teardown including TCP's half-closed state (which SCTP lacks —
paper §3.5.2).

The FreeBSD-5.3 personality the paper measured comes from
:data:`repro.transport.base.BSD_TCP_TIMERS` (coarse 500 ms timer ticks,
1 s minimum RTO): in a request/response workload a tail drop can only be
repaired by this timer, which is precisely why LAM-TCP collapses under
loss in the paper's Table 1/Fig. 10 while SCTP's SACK-everything recovery
does not.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, List, Optional, Tuple

from ...analyze.sanitize import tcp_sanitizer
from ...network.packet import Packet
from ...simkernel import MILLISECOND, Timer
from ...util.blobs import Blob, ChunkList
from ..base import BSD_TCP_TIMERS, RTOEstimator, TimerPersonality
from .buffers import ReassemblyBuffer, SendBuffer
from .congestion import NewRenoState
from .segment import ACK, FIN, RST, SYN, TCPSegment

# connection states
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


@dataclass(frozen=True)
class TCPConfig:
    """Tunables; defaults match the paper's experimental settings (§4)."""

    mss: int = 1448
    sndbuf: int = 220 * 1024  # paper sets both buffers to 220 KiB
    rcvbuf: int = 220 * 1024
    nagle: bool = False  # LAM-TCP disables Nagle by default
    sack_enabled: bool = True  # enabled on all nodes per the paper
    max_sack_blocks: int = 3  # IP option space limits reporting (§4.1.1)
    dupack_threshold: int = 3
    delayed_ack_ns: int = 100 * MILLISECOND
    timers: TimerPersonality = BSD_TCP_TIMERS
    max_syn_retries: int = 5
    time_wait_ns: int = 1_000 * MILLISECOND  # shortened 2MSL for simulation


@dataclass
class ConnStats:
    """Counters exposed for tests and benchmark diagnostics.

    Every field is also registered into the kernel's
    :class:`~repro.metrics.MetricsRegistry` (per-connection probes plus
    per-host sums kept by the endpoint), so ``--metrics-json`` snapshots
    carry them without the hot path paying for metric objects.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    segments_sent: int = 0
    segments_received: int = 0
    retransmitted_segments: int = 0
    rto_events: int = 0
    fast_retransmits: int = 0
    dupacks_received: int = 0
    sacked_ranges: int = 0
    persist_probes: int = 0


CONN_STAT_FIELDS = tuple(f.name for f in fields(ConnStats))

# cwnd sample buckets: MSS doublings from 2 up past the 220 KiB buffers
CWND_SAMPLE_EDGES = tuple(1448 * 2**k for k in range(1, 9))


class TCPConnection:
    """One endpoint of a TCP connection."""

    def __init__(
        self,
        endpoint,
        local_addr: str,
        local_port: int,
        remote_addr: str,
        remote_port: int,
        config: Optional[TCPConfig] = None,
    ) -> None:
        self.endpoint = endpoint
        self.kernel = endpoint.kernel
        self.host = endpoint.host
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.config = config or TCPConfig()

        self.state = CLOSED
        self.stats = ConnStats()
        metrics = self.kernel.metrics
        conn_scope = metrics.scope(
            f"transport.tcp.{self.host.name}.conn"
            f".{local_port}-{remote_addr}:{remote_port}"
        )
        for name in CONN_STAT_FIELDS:
            conn_scope.probe(name, lambda n=name: getattr(self.stats, n))
        conn_scope.probe("state", lambda: self.state)
        # cwnd samples share one per-host histogram across connections
        self._cwnd_hist = (
            metrics.histogram(
                f"transport.tcp.{self.host.name}.cwnd_bytes", CWND_SAMPLE_EDGES
            )
            if metrics.enabled
            else None
        )
        endpoint.track_conn_stats(self.stats)

        # sender state (initialised at handshake)
        self.iss = endpoint.pick_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = self.config.rcvbuf  # peer advertised window
        self.send_buffer = SendBuffer(self.iss + 1, self.config.sndbuf)
        self.cc = NewRenoState(self.config.mss)
        self.rto = RTOEstimator(self.config.timers)
        self._dupacks = 0
        self._sacked: List[Tuple[int, int]] = []  # sender scoreboard
        self._fin_queued = False
        self._fin_seq: Optional[int] = None

        # receiver state
        self.irs = 0
        self.reassembly: Optional[ReassemblyBuffer] = None
        self._ready = ChunkList()  # in-order data the app hasn't read
        self._eof = False
        self._last_advertised_wnd = self.config.rcvbuf
        self._rcv_adv = 0  # highest advertised right edge (never retreats)
        self._segs_since_ack = 0

        # RTT timing (one sample in flight, Karn's rule)
        self._rtt_seq: Optional[int] = None
        self._rtt_sent_at = 0

        # timers
        self._rtx_timer: Optional[Timer] = None
        self._delack_timer: Optional[Timer] = None
        self._persist_timer: Optional[Timer] = None
        self._persist_backoff = 0
        self._syn_retries = 0

        # notification hooks (socket layer installs these)
        self.on_established: Callable[[], None] = _noop
        self.on_readable: Callable[[], None] = _noop
        self.on_writable: Callable[[], None] = _noop
        self.on_closed: Callable[[Optional[str]], None] = _noop1

        # protocol-invariant sanitizer; None unless REPRO_SANITIZE is on
        self._san = tcp_sanitizer()

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Begin an active open (client side of the handshake)."""
        if self.state != CLOSED:
            raise RuntimeError(f"open_active in state {self.state}")
        self.state = SYN_SENT
        self._send_control(SYN, seq=self.iss)
        self.snd_nxt = self.iss + 1
        self._arm_rtx()

    def open_passive(self, syn: TCPSegment) -> None:
        """Respond to a received SYN (server side, via the endpoint)."""
        self.state = SYN_RCVD
        self._init_receiver(syn)
        self._send_control(SYN | ACK, seq=self.iss, ack=self.reassembly.rcv_nxt)
        self.snd_nxt = self.iss + 1
        self._arm_rtx()

    def app_write(self, blob: Blob) -> int:
        """Queue bytes for sending; returns bytes accepted (0 = would block)."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise BrokenPipeError(f"write in state {self.state}")
        if self._fin_queued:
            raise BrokenPipeError("write after shutdown")
        accepted = self.send_buffer.write(blob)
        if accepted:
            self._try_send()
        return accepted

    def app_readable_bytes(self) -> int:
        """Bytes ready for the application to read."""
        return self._ready.nbytes

    @property
    def eof_pending(self) -> bool:
        """True when the peer's FIN has been consumed up to the stream end."""
        return self._eof and self._ready.nbytes == 0

    def app_read(self, nbytes: int) -> ChunkList:
        """Consume up to ``nbytes`` of in-order data (empty at EOF)."""
        take = min(nbytes, self._ready.nbytes)
        data, self._ready = self._ready.split(take)
        if take:
            self.stats.bytes_received += take
            self._maybe_send_window_update()
        return data

    def writable_bytes(self) -> int:
        """Free space in the send buffer."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT) or self._fin_queued:
            return 0
        return self.send_buffer.free

    def app_close(self) -> None:
        """Close the sending direction (queue a FIN after pending data)."""
        if self._fin_queued or self.state in (CLOSED, TIME_WAIT, LAST_ACK):
            return
        self._fin_queued = True
        if self.state == ESTABLISHED:
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        elif self.state in (SYN_SENT,):
            self._teardown(None)
            return
        self._try_send()

    def abort(self) -> None:
        """Send RST and drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            self._send_control(RST | ACK, seq=self.snd_nxt, ack=self._rcv_nxt())
        self._teardown("connection aborted")

    # ------------------------------------------------------------------
    # segment input
    # ------------------------------------------------------------------
    def on_segment(self, seg: TCPSegment) -> None:
        """Main receive entry, called by the endpoint demux."""
        self.stats.segments_received += 1
        flags = seg.flags  # tested up to five times below: read the slot once
        if flags & RST:
            if self.state != CLOSED:
                self._teardown("connection reset by peer")
            return

        if self.state == SYN_SENT:
            self._on_segment_syn_sent(seg)
            return
        if self.state == SYN_RCVD:
            if flags & ACK and seg.ack == self.snd_nxt:
                self.state = ESTABLISHED
                self.snd_una = seg.ack
                self._cancel_rtx()
                self.on_established()
                # fall through: the ACK may carry data
            elif flags & SYN:
                # duplicate SYN: re-send SYN|ACK
                self._send_control(
                    SYN | ACK, seq=self.iss, ack=self.reassembly.rcv_nxt
                )
                return
        if self.state == CLOSED:
            return
        if flags & SYN and self.state == ESTABLISHED:
            # duplicate SYN|ACK: our handshake ACK was lost — re-ACK it
            self._send_ack_now()
            return

        if flags & ACK:
            self._process_ack(seg)
            if self._san is not None:
                self._san.on_ack_processed(self)
        if seg.data_len > 0:
            self._process_data(seg)
            if self._san is not None:
                self._san.on_delivery(self)
        if flags & FIN:
            self._process_fin(seg)
        self._try_send()

    def _on_segment_syn_sent(self, seg: TCPSegment) -> None:
        if seg.has(SYN) and seg.has(ACK) and seg.ack == self.snd_nxt:
            self.snd_una = seg.ack
            self._init_receiver(seg)
            self.state = ESTABLISHED
            self._cancel_rtx()
            self._syn_retries = 0
            self._send_ack_now()
            self.on_established()
            self.on_writable()
        # (simultaneous open not modelled: LAM's init is strictly ordered)

    def _init_receiver(self, seg: TCPSegment) -> None:
        self.irs = seg.seq
        self.reassembly = ReassemblyBuffer(self.irs + 1)
        self.snd_wnd = seg.window

    # -- ACK processing -------------------------------------------------
    def _process_ack(self, seg: TCPSegment) -> None:
        ack = seg.ack
        prev_wnd = self.snd_wnd
        self.snd_wnd = seg.window
        if self._persist_timer is not None and self.snd_wnd > 0:
            self._cancel_persist()

        if seg.sack_blocks:
            self._merge_sack(seg.sack_blocks)

        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        if ack > self.snd_una:
            self._on_new_ack(seg, ack)
        elif (
            ack == self.snd_una
            and self.snd_nxt > self.snd_una  # flight size > 0
            and seg.data_len == 0
            # the classic BSD test: window updates are not dupacks (the
            # no-shrink right-edge rule keeps real dupack windows equal)
            and seg.window == prev_wnd
            and not seg.flags & (SYN | FIN)
        ):
            self._on_dupack()

    def _on_new_ack(self, seg: TCPSegment, ack: int) -> None:
        acked = ack - self.snd_una
        self.snd_una = ack
        freed = self.send_buffer.release_below(min(ack, self.send_buffer.tail_seq))
        if self._sacked:  # loss-free steady state: nothing to trim
            self._sacked = [(s, e) for s, e in self._sacked if e > ack]
        self._dupacks = 0

        # RTT sample (Karn: only if the timed range was never retransmitted)
        if self._rtt_seq is not None and ack >= self._rtt_seq:
            self.rto.observe(self.kernel._now - self._rtt_sent_at)
            self._rtt_seq = None
        self.rto.reset_backoff()

        if self.cc.in_recovery:
            if ack > self.cc.recover:
                self.cc.exit_recovery()
            else:
                self.cc.on_partial_ack(acked)
                self._retransmit_hole(self.snd_una)
        else:
            self.cc.on_new_ack(acked)
        if self._cwnd_hist is not None:
            self._cwnd_hist.observe(self.cc.cwnd)

        # FIN acknowledgement / state advance
        if self._fin_seq is not None and ack >= self._fin_seq + 1:
            self._on_fin_acked()

        if self._flight_size() > 0:
            self._arm_rtx(restart=True)
        else:
            self._cancel_rtx()

        if freed > 0 and self.writable_bytes() > 0:
            self.on_writable()

    def _on_dupack(self) -> None:
        self._dupacks += 1
        self.stats.dupacks_received += 1
        if self.cc.in_recovery:
            self.cc.on_dupack_in_recovery()
            return
        if self._dupacks == self.config.dupack_threshold:
            self.cc.enter_fast_recovery(self._flight_size(), self.snd_nxt)
            self.stats.fast_retransmits += 1
            self._retransmit_hole(self.snd_una)

    def _merge_sack(self, blocks: Tuple[Tuple[int, int], ...]) -> None:
        if not self.config.sack_enabled:
            return
        for start, end in blocks:
            if end <= self.snd_una:
                continue
            self.stats.sacked_ranges += 1
            merged = (max(start, self.snd_una), end)
            keep = []
            for s, e in self._sacked:
                if e < merged[0] or s > merged[1]:
                    keep.append((s, e))
                else:
                    merged = (min(s, merged[0]), max(e, merged[1]))
            keep.append(merged)
            keep.sort()
            self._sacked = keep

    def _is_sacked(self, seq: int) -> bool:
        return any(s <= seq < e for s, e in self._sacked)

    def _retransmit_hole(self, from_seq: int) -> None:
        """Retransmit the first unsacked segment at/above ``from_seq``."""
        seq = from_seq
        limit = self.snd_nxt
        while seq < limit and self._is_sacked(seq):
            for s, e in self._sacked:
                if s <= seq < e:
                    seq = e
                    break
        if seq >= limit:
            return
        if self._fin_seq is not None and seq == self._fin_seq:
            self._send_fin_segment()
            return
        end = min(seq + self.config.mss, self.send_buffer.tail_seq, limit)
        for s, _e in self._sacked:
            if seq < s < end:
                end = s
                break
        if end <= seq:
            return
        self._emit_data(seq, end - seq, retransmit=True)
        self._arm_rtx(restart=True)

    # -- data reception ---------------------------------------------------
    def _process_data(self, seg: TCPSegment) -> None:
        if self.reassembly is None:
            return
        before_nxt = self.reassembly.rcv_nxt
        had_gaps = self.reassembly.has_gaps
        delivered = self.reassembly.offer(seg.seq, seg.data)
        if delivered.nbytes:
            self._ready.extend(delivered)
        in_order = self.reassembly.rcv_nxt > before_nxt

        if not in_order or (had_gaps and self.reassembly.has_gaps):
            # out-of-order or still-gapped: immediate (duplicate) ACK w/ SACK
            self._send_ack_now()
        elif had_gaps and not self.reassembly.has_gaps:
            self._send_ack_now()  # gap just filled: ack immediately
        else:
            self._segs_since_ack += 1
            if self._segs_since_ack >= 2:
                self._send_ack_now()
            else:
                self._arm_delack()
        if delivered.nbytes:
            self.on_readable()

    def _process_fin(self, seg: TCPSegment) -> None:
        if self.reassembly is None:
            return  # receive direction never initialised; nothing to close
        if self._eof:
            # retransmitted FIN (our ACK was lost or crossed it): re-ACK so
            # the peer stops retransmitting, but never re-count the FIN —
            # rcv_nxt already covers it, and advancing again would ack a
            # sequence number the peer never sent.
            self._send_ack_now()
            return
        if seg.end_seq - 1 != self.reassembly.rcv_nxt:
            # FIN not yet in order (data missing before it): ignore; peer
            # will retransmit.
            return
        self.reassembly.rcv_nxt += 1
        self._eof = True
        if self._san is not None:
            self._san.on_fin_accepted(self)
        self._send_ack_now()
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        self.on_readable()  # wake readers so they observe EOF

    def _on_fin_acked(self) -> None:
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._teardown(None)

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self._cancel_rtx()
        self.kernel.call_after(self.config.time_wait_ns, self._teardown, None)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def _flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def _usable_window(self) -> int:
        return min(self.cc.cwnd, self.snd_wnd) - self._flight_size()

    def _try_send(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, LAST_ACK, CLOSING):
            return
        send_buffer = self.send_buffer
        while True:
            avail = send_buffer._tail_seq - self.snd_nxt  # == bytes_after()
            if avail <= 0:
                break
            # usable window, _usable_window()/_flight_size() inlined
            usable = min(self.cc.cwnd, self.snd_wnd) - (self.snd_nxt - self.snd_una)
            if usable <= 0:
                if self.snd_wnd == 0 and self.snd_nxt == self.snd_una:
                    self._arm_persist()
                break
            seg_len = min(self.config.mss, avail, usable)
            if (
                self.config.nagle
                and seg_len < self.config.mss
                and self._flight_size() > 0
            ):
                break  # Nagle: hold sub-MSS data until everything is acked
            self._emit_data(self.snd_nxt, seg_len, retransmit=False)
            self.snd_nxt += seg_len
            self._arm_rtx()
        # FIN goes out once all buffered data has been sent
        if (
            self._fin_queued
            and self._fin_seq is None
            and self.send_buffer.bytes_after(self.snd_nxt) == 0
        ):
            self._fin_seq = self.snd_nxt
            self._send_fin_segment()
            self.snd_nxt += 1
            self._arm_rtx()

    def _emit_data(self, seq: int, length: int, retransmit: bool) -> None:
        data = self.send_buffer.read_range(seq, length)
        seg = self._make_segment(ACK, seq=seq, ack=self._rcv_nxt(), data=data)
        if retransmit:
            self.stats.retransmitted_segments += 1
            # Karn: a retransmitted range must not produce an RTT sample
            if self._rtt_seq is not None and seq < self._rtt_seq:
                self._rtt_seq = None
        else:
            self.stats.bytes_sent += length
            if self._rtt_seq is None:
                self._rtt_seq = seq + length
                self._rtt_sent_at = self.kernel._now
        self._transmit(seg)
        self._ack_sent()

    def _send_fin_segment(self) -> None:
        seg = self._make_segment(FIN | ACK, seq=self._fin_seq, ack=self._rcv_nxt())
        self._transmit(seg)
        self._ack_sent()

    def _send_control(self, flags: int, seq: int, ack: int = 0) -> None:
        seg = self._make_segment(flags, seq=seq, ack=ack)
        self._transmit(seg)

    def _send_ack_now(self) -> None:
        self._cancel_delack()
        self._segs_since_ack = 0
        seg = self._make_segment(ACK, seq=self.snd_nxt, ack=self._rcv_nxt())
        self._transmit(seg)
        self._last_advertised_wnd = seg.window

    def _ack_sent(self) -> None:
        # data segments carry the current ack: cancel any delayed ACK
        self._cancel_delack()
        self._segs_since_ack = 0

    def _rcv_nxt(self) -> int:
        return self.reassembly.rcv_nxt if self.reassembly is not None else 0

    def _recv_window(self) -> int:
        """Advertised window, honouring RFC 793's no-shrink rule.

        The right edge (rcv_nxt + window) may never move left, so
        out-of-order arrivals do not change the window carried by the
        duplicate ACKs they trigger — which is what lets the classic BSD
        "window unchanged" duplicate-ACK test work during loss recovery.
        """
        reassembly = self.reassembly
        if reassembly is None:
            return self.config.rcvbuf
        window = self.config.rcvbuf - self._ready.nbytes - reassembly.out_of_order_bytes
        if window < 0:
            window = 0
        right_edge = reassembly.rcv_nxt + window
        if right_edge < self._rcv_adv:
            window = self._rcv_adv - reassembly.rcv_nxt
        else:
            self._rcv_adv = right_edge
        return window

    def _maybe_send_window_update(self) -> None:
        """After the app reads, re-open the window if it grew meaningfully."""
        wnd = self._recv_window()
        grew = wnd - self._last_advertised_wnd
        if grew >= 2 * self.config.mss or grew >= self.config.rcvbuf // 2:
            self._send_ack_now()

    def _make_segment(
        self, flags: int, seq: int, ack: int, data: Optional[ChunkList] = None
    ) -> TCPSegment:
        sack = ()
        if self.config.sack_enabled and self.reassembly is not None:
            sack = self.reassembly.sack_blocks(self.config.max_sack_blocks)
        return TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=self._recv_window(),
            data=data,
            sack_blocks=sack,
        )

    def _transmit(self, seg: TCPSegment) -> None:
        self.stats.segments_sent += 1
        packet = Packet.acquire(
            self.local_addr, self.remote_addr, "tcp", seg, seg.wire_size()
        )
        self.host.send(packet)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _arm_rtx(self, restart: bool = False) -> None:
        if restart:
            self._cancel_rtx()
        if self._rtx_timer is None:
            self._rtx_timer = self.kernel.call_after(self.rto.rto_ns, self._on_rtx_timeout)

    def _cancel_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_timer = None
        if self.state == SYN_SENT:
            self._syn_retries += 1
            if self._syn_retries > self.config.max_syn_retries:
                self._teardown("connection timed out")
                return
            self.rto.back_off()
            self.stats.rto_events += 1
            self._send_control(SYN, seq=self.iss)
            self._arm_rtx()
            return
        if self.state == SYN_RCVD:
            self.rto.back_off()
            self.stats.rto_events += 1
            self._send_control(SYN | ACK, seq=self.iss, ack=self._rcv_nxt())
            self._arm_rtx()
            return
        if self._flight_size() <= 0:
            return
        # data (or FIN) retransmission timeout
        self.stats.rto_events += 1
        self.cc.on_timeout(self._flight_size())
        if self._cwnd_hist is not None:
            self._cwnd_hist.observe(self.cc.cwnd)
        self.rto.back_off()
        self._dupacks = 0
        self._rtt_seq = None  # Karn
        if self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send_fin_segment()
        else:
            end = min(self.snd_una + self.config.mss, self.send_buffer.tail_seq)
            if end > self.snd_una:
                self._emit_data(self.snd_una, end - self.snd_una, retransmit=True)
            elif self._fin_seq is not None:
                self._send_fin_segment()
        self._arm_rtx()

    def _arm_delack(self) -> None:
        if self._delack_timer is None:
            self._delack_timer = self.kernel.call_after(
                self.config.delayed_ack_ns, self._on_delack
            )

    def _cancel_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def _on_delack(self) -> None:
        self._delack_timer = None
        if self.state != CLOSED:
            self._send_ack_now()

    def _arm_persist(self) -> None:
        if self._persist_timer is not None:
            return
        interval = self.rto.rto_ns << min(self._persist_backoff, 4)
        self._persist_timer = self.kernel.call_after(interval, self._on_persist)

    def _cancel_persist(self) -> None:
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
        self._persist_backoff = 0
        self._try_send()

    def _on_persist(self) -> None:
        self._persist_timer = None
        if self.snd_wnd > 0 or self.state == CLOSED:
            return
        # window probe: one byte past the right window edge
        if self.send_buffer.bytes_after(self.snd_nxt) > 0:
            self.stats.persist_probes += 1
            self._emit_data(self.snd_nxt, 1, retransmit=False)
            self.snd_nxt += 1
            self._arm_rtx()
        self._persist_backoff += 1
        self._arm_persist()

    # ------------------------------------------------------------------
    def _teardown(self, error: Optional[str]) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self._cancel_rtx()
        self._cancel_delack()
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
        self.endpoint.forget(self)
        self.on_closed(error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TCPConnection {self.local_addr}:{self.local_port} -> "
            f"{self.remote_addr}:{self.remote_port} {self.state}>"
        )


def _noop() -> None:
    return None


def _noop1(_arg) -> None:
    return None
