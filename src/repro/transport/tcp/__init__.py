"""From-scratch TCP (FreeBSD 5.3 personality).

Implements everything the paper's TCP discussion touches: 3-way handshake,
byte-stream sequencing, cumulative + selective acknowledgements (3 SACK
blocks, as IP option space allowed in 2005 stacks — §4.1.1), NewReno
slow-start / congestion-avoidance / fast-retransmit / fast-recovery, BSD
coarse-grained retransmission timers with exponential backoff, delayed
ACKs, advertised-window flow control with persist probes, Nagle (disabled
by default, matching LAM-TCP), and half-close (§3.5.2).
"""

from .congestion import NewRenoState
from .connection import TCPConfig, TCPConnection
from .endpoint import TCPEndpoint
from .segment import SackBlock, TCPSegment
from .socket import Selector, TCPListener, TCPSocket

__all__ = [
    "NewRenoState",
    "SackBlock",
    "Selector",
    "TCPConfig",
    "TCPConnection",
    "TCPEndpoint",
    "TCPListener",
    "TCPSegment",
    "TCPSocket",
]
