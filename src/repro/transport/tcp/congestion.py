"""NewReno congestion state (RFC 5681/6582 arithmetic).

Kept as a plain arithmetic holder: the connection drives it with events
(new ack / duplicate ack threshold / partial ack / timeout) and reads
``cwnd`` back.  ACK-counted growth — TCP grows cwnd per *acknowledgement*,
one of the asymmetries versus SCTP's byte-counted growth that the paper
cites (§4.1.1) — falls out of calling :meth:`on_new_ack` once per ACK.
"""

from __future__ import annotations


class NewRenoState:
    """cwnd/ssthresh arithmetic for a NewReno sender."""

    def __init__(self, mss: int, initial_cwnd_segments: int = 3) -> None:
        self.mss = mss
        self.cwnd = initial_cwnd_segments * mss
        self.ssthresh = 1 << 30  # "infinite" until the first loss
        self.in_recovery = False
        self.recover = 0  # highest seq outstanding when loss was detected
        # statistics
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        """Exponential-growth phase."""
        return self.cwnd < self.ssthresh

    def on_new_ack(self, acked_bytes: int) -> None:
        """Cumulative ACK advancing snd_una outside fast recovery."""
        if self.in_slow_start:
            # classic: one MSS per ACK (capped by what was acked)
            self.cwnd += min(self.mss, acked_bytes)
        else:
            # congestion avoidance: ~one MSS per RTT
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def enter_fast_recovery(self, flight_size: int, highest_out: int) -> None:
        """Third duplicate ACK: halve, inflate by the three dupacks."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self.recover = highest_out
        self.fast_retransmits += 1

    def on_dupack_in_recovery(self) -> None:
        """Each further dupack inflates cwnd by one MSS."""
        self.cwnd += self.mss

    def on_partial_ack(self, acked_bytes: int) -> None:
        """NewReno partial ACK: deflate by the amount acked, re-inflate 1 MSS."""
        self.cwnd = max(self.mss, self.cwnd - acked_bytes + self.mss)

    def exit_recovery(self) -> None:
        """Full ACK: deflate to ssthresh."""
        self.cwnd = self.ssthresh
        self.in_recovery = False

    def on_timeout(self, flight_size: int) -> None:
        """RTO: collapse to one segment and restart slow start."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.timeouts += 1
