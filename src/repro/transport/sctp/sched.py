"""Sender-side stream schedulers (RFC 8260 §3 / RFC 8261 terminology).

The association send path used to be a plain FIFO of pre-fragmented DATA
chunks: whoever called ``send_message`` first owned the wire until every
fragment of that message was out.  This module replaces the FIFO with a
pluggable :class:`StreamScheduler`: user messages queue *unfragmented*
(as :class:`QueuedMessage`) and the scheduler — not send order — decides
which stream's message supplies the next fragment.

Key design points, all load-bearing for determinism and byte-identity:

* **Lazy fragmentation.**  Fragments are cut at dequeue time by the
  association (``_dequeue_for_bundle``), which also assigns the TSN and,
  on a message's *first* fragment, its SSN or MID.  Every scheduler
  serves the messages of one stream in FIFO order, so dequeue-time
  per-stream sequence numbers equal the values eager assignment would
  have produced — and for :class:`FCFSScheduler` the whole wire schedule
  is bit-for-bit the pre-scheduler behaviour.
* **Message stickiness.**  Without negotiated interleaving (RFC 8260
  I-DATA), fragments of one message must occupy contiguous TSNs, so the
  scheduler holds its choice (``_current``) until the message completes.
  With interleaving active the decision is re-made at every fragment
  boundary — that is the whole point of I-DATA.
* **No set iteration, no unseeded ties.**  All per-stream state lives in
  lists indexed by stream id; ties break on the lowest sid / the
  round-robin cursor, never on hash order (AN103-clean by construction).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ...util.blobs import Blob

#: DRR quantum per unit of weight: one full PMTU payload's worth, so a
#: weight-1 stream sends at least one full fragment per round.
WFQ_QUANTUM = 1452

SCHEDULER_NAMES: Tuple[str, ...] = ("fcfs", "rr", "wfq", "prio")


class QueuedMessage:
    """One user message queued for transmission, not yet fragmented.

    ``seq`` is the SSN (legacy DATA) or MID (I-DATA); it is -1 until the
    first fragment is dequeued.  ``fsn`` counts fragments already cut
    (the next fragment's FSN under I-DATA).  ``idata`` records which
    encoding the first fragment used so a message never switches wire
    format mid-flight.
    """

    __slots__ = ("sid", "payload", "unordered", "ppid", "nbytes", "offset",
                 "seq", "fsn", "idata")

    def __init__(self, sid: int, payload: Blob, unordered: bool, ppid: int) -> None:
        self.sid = sid
        self.payload = payload
        self.unordered = unordered
        self.ppid = ppid
        self.nbytes = payload.nbytes
        self.offset = 0
        self.seq = -1
        self.fsn = 0
        self.idata = False


class StreamScheduler:
    """Strategy interface: which queued message fragments next?

    The association drives it with a peek/consume protocol::

        head = sched.peek()          # the chosen message (None when idle)
        ...cut one fragment of `take` payload bytes from head...
        sched.consume(take)          # advance; True when head completed

    Subclasses implement ``_enqueue`` / ``_choose`` / ``_serve``.
    ``_choose`` must be deterministic and must return a message whenever
    one is queued (a None with pending data would stall the association).
    """

    name = "base"

    def __init__(self, n_streams: int) -> None:
        self.n_streams = n_streams
        self.interleave = False
        self._current: Optional[QueuedMessage] = None
        self._n_pending = 0
        # observability: every consume() is one scheduler decision; an
        # "interleave switch" is consuming message X immediately after
        # leaving a different message Y unfinished (only possible with
        # interleaving active).
        self.decisions = 0
        self.interleave_switches = 0
        self._last_msg: Optional[QueuedMessage] = None
        self._last_unfinished = False

    def set_interleaving(self, on: bool) -> None:
        """Called once at association establishment with the negotiated
        I-DATA result; before that the scheduler stays message-sticky."""
        self.interleave = bool(on)

    def has_pending(self) -> bool:
        return self._n_pending > 0

    def push(self, msg: QueuedMessage) -> None:
        self._n_pending += 1
        self._enqueue(msg)

    def peek(self) -> Optional[QueuedMessage]:
        cur = self._current
        if cur is None:
            cur = self._current = self._choose()
        return cur

    def consume(self, take: int) -> bool:
        """The association encoded ``take`` payload bytes of the peeked
        message into one fragment; returns True when the message is done."""
        msg = self._current
        msg.offset += take
        msg.fsn += 1
        done = msg.offset >= msg.nbytes
        self.decisions += 1
        if self._last_unfinished and self._last_msg is not msg:
            self.interleave_switches += 1
        self._last_msg = msg
        self._last_unfinished = not done
        self._serve(msg, take, done)
        if done:
            self._n_pending -= 1
            self._current = None
        elif self.interleave:
            self._current = None  # re-decide at the next fragment boundary
        return done

    # -- policy hooks ------------------------------------------------------
    def _enqueue(self, msg: QueuedMessage) -> None:
        raise NotImplementedError

    def _choose(self) -> Optional[QueuedMessage]:
        raise NotImplementedError

    def _serve(self, msg: QueuedMessage, take: int, done: bool) -> None:
        raise NotImplementedError


class FCFSScheduler(StreamScheduler):
    """First-come-first-served: exactly the pre-scheduler send order.

    A single FIFO over messages; the head message owns the wire until it
    completes (even with interleaving active, FCFS never preempts — there
    is never a reason to revisit the choice before the head is done).
    """

    name = "fcfs"

    def __init__(self, n_streams: int) -> None:
        super().__init__(n_streams)
        self._q: Deque[QueuedMessage] = deque()

    def _enqueue(self, msg: QueuedMessage) -> None:
        self._q.append(msg)

    def _choose(self) -> Optional[QueuedMessage]:
        return self._q[0] if self._q else None

    def _serve(self, msg: QueuedMessage, take: int, done: bool) -> None:
        if done:
            self._q.popleft()


class RoundRobinScheduler(StreamScheduler):
    """Cycle over streams with queued messages, lowest sid first.

    Message-granular without interleaving (the cursor advances when a
    message completes); fragment-granular with it (the cursor advances
    after every fragment, so a bulk message on one stream yields the wire
    to every other backlogged stream between fragments).
    """

    name = "rr"

    def __init__(self, n_streams: int) -> None:
        super().__init__(n_streams)
        self._queues: List[Deque[QueuedMessage]] = [deque() for _ in range(n_streams)]
        self._cursor = 0

    def _enqueue(self, msg: QueuedMessage) -> None:
        self._queues[msg.sid].append(msg)

    def _choose(self) -> Optional[QueuedMessage]:
        n = self.n_streams
        for i in range(n):
            q = self._queues[(self._cursor + i) % n]
            if q:
                return q[0]
        return None

    def _serve(self, msg: QueuedMessage, take: int, done: bool) -> None:
        if done:
            self._queues[msg.sid].popleft()
        if done or self.interleave:
            self._cursor = (msg.sid + 1) % self.n_streams


class WeightedFairScheduler(StreamScheduler):
    """Deficit-round-robin weighted fairness (RFC 8260's "weighted fair
    queueing" scheduler, realised as byte-deficit DRR).

    Each stream holds a byte deficit; a visit tops it up by
    ``weight * WFQ_QUANTUM`` and the stream may transmit while the
    deficit is positive.  With interleaving active and equal fragment
    sizes, long-run served bytes converge to the weight ratios; without
    interleaving, fairness is message-granular (a message once started
    runs to completion and may overdraw its deficit).
    """

    name = "wfq"

    def __init__(self, n_streams: int, weights: Sequence[int] = ()) -> None:
        super().__init__(n_streams)
        w = [int(x) for x in weights[:n_streams]]
        w += [1] * (n_streams - len(w))
        if any(x < 1 for x in w):
            raise ValueError(f"wfq stream weights must be >= 1, got {w}")
        self.weights = w
        self._queues: List[Deque[QueuedMessage]] = [deque() for _ in range(n_streams)]
        self._quantum = [x * WFQ_QUANTUM for x in w]
        self._deficit = [0] * n_streams
        self._cursor = 0

    def _enqueue(self, msg: QueuedMessage) -> None:
        self._queues[msg.sid].append(msg)

    def _choose(self) -> Optional[QueuedMessage]:
        n = self.n_streams
        queues = self._queues
        deficit = self._deficit
        nonempty = [sid for sid in range(n) if queues[sid]]
        if not nonempty:
            return None
        # every refill pass adds >= one quantum per backlogged stream, so
        # this terminates even when a sticky bulk message overdrew badly
        while True:
            for i in range(n):
                sid = (self._cursor + i) % n
                if queues[sid] and deficit[sid] > 0:
                    return queues[sid][0]
            for sid in nonempty:
                deficit[sid] += self._quantum[sid]

    def _serve(self, msg: QueuedMessage, take: int, done: bool) -> None:
        sid = msg.sid
        # zero-byte messages still spend one token so they cannot spin
        self._deficit[sid] -= take if take > 0 else 1
        if done:
            self._queues[sid].popleft()
            if not self._queues[sid]:
                self._deficit[sid] = 0  # DRR: idle streams bank no credit
        if (done or self.interleave) and self._deficit[sid] <= 0:
            self._cursor = (sid + 1) % self.n_streams


class PriorityScheduler(StreamScheduler):
    """Strict priority: lowest priority value wins, sid breaks ties.

    With interleaving active a newly queued high-priority message
    preempts a lower-priority bulk transfer at the next fragment
    boundary; without it, at the next message boundary.
    """

    name = "prio"

    def __init__(self, n_streams: int, priorities: Sequence[int] = ()) -> None:
        super().__init__(n_streams)
        p = [int(x) for x in priorities[:n_streams]]
        p += [0] * (n_streams - len(p))
        self.priorities = p
        self._queues: List[Deque[QueuedMessage]] = [deque() for _ in range(n_streams)]

    def _enqueue(self, msg: QueuedMessage) -> None:
        self._queues[msg.sid].append(msg)

    def _choose(self) -> Optional[QueuedMessage]:
        best_sid = -1
        best_prio = 0
        for sid in range(self.n_streams):
            if self._queues[sid]:
                prio = self.priorities[sid]
                if best_sid < 0 or prio < best_prio:
                    best_sid = sid
                    best_prio = prio
        return self._queues[best_sid][0] if best_sid >= 0 else None

    def _serve(self, msg: QueuedMessage, take: int, done: bool) -> None:
        if done:
            self._queues[msg.sid].popleft()


def make_scheduler(
    name: str,
    n_streams: int,
    weights: Sequence[int] = (),
    priorities: Sequence[int] = (),
) -> StreamScheduler:
    """Build the named scheduler sized for ``n_streams`` outbound streams."""
    if name == "fcfs":
        return FCFSScheduler(n_streams)
    if name == "rr":
        return RoundRobinScheduler(n_streams)
    if name == "wfq":
        return WeightedFairScheduler(n_streams, weights)
    if name == "prio":
        return PriorityScheduler(n_streams, priorities)
    raise ValueError(
        f"unknown scheduler {name!r} (choices: {', '.join(SCHEDULER_NAMES)})"
    )
