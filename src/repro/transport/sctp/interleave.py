"""RFC 8260 user-message interleaving: MID allocation and reassembly.

Legacy SCTP reassembly (``InboundStreams``) identifies the fragments of
one message by *contiguous TSNs* between the B and E bits — which is
exactly why a large message monopolises the association: its fragments
must stay contiguous, so nothing else may transmit in between.  I-DATA
chunks instead carry an explicit per-stream Message ID (MID) and a
Fragment Sequence Number (FSN), so fragments of different messages can
interleave freely on the wire and reassembly is keyed by
``(sid, mid, unordered)``.

Ordered delivery then follows the per-stream MID succession (0, 1, 2,
... mod 2**32) the way legacy delivery follows the SSN; unordered
messages deliver the moment they are complete.  Both MID spaces — the
sender's allocator and the receiver's expectations — wrap at 32 bits.

:class:`InterleavedReassembly` deliberately *mutates its owning*
``InboundStreams``'s counters (buffered bytes, per-stream delivery and
HOL-stall accounting, parked-message peak) so the association's metrics
probes keep one unified view over both reassembly paths.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...util.blobs import ChunkList
from .chunks import IDataChunk

MID_MASK = 0xFFFFFFFF  # MIDs (and FSNs) are 32-bit, wrapping


class OutboundInterleave:
    """Per-stream MID allocators for the sending side.

    Ordered and unordered messages draw from *separate* MID spaces
    (RFC 8260 §2.1: the U bit is part of the message identity).
    """

    __slots__ = ("n_streams", "_next_mid", "_next_mid_unordered")

    def __init__(self, n_streams: int) -> None:
        self.n_streams = n_streams
        self._next_mid = [0] * n_streams
        self._next_mid_unordered = [0] * n_streams

    def next_mid(self, sid: int, unordered: bool) -> int:
        """Claim the next message id on ``sid`` (wraps mod 2**32)."""
        if not 0 <= sid < self.n_streams:
            raise ValueError(f"stream {sid} out of range (have {self.n_streams})")
        counters = self._next_mid_unordered if unordered else self._next_mid
        mid = counters[sid]
        counters[sid] = (mid + 1) & MID_MASK
        return mid

    def seed_mid(self, sid: int, value: int, unordered: bool = False) -> None:
        """Start ``sid``'s MID space at ``value`` (wraparound testing)."""
        counters = self._next_mid_unordered if unordered else self._next_mid
        counters[sid] = value & MID_MASK


class InterleavedReassembly:
    """I-DATA receive side, owned by (and accounting through) an
    ``InboundStreams``."""

    __slots__ = ("owner", "_partial", "_pending", "_next_mid", "_parked_at")

    def __init__(self, owner) -> None:
        self.owner = owner
        # (sid, mid, unordered) -> [fragments by FSN, E-fragment FSN or None]
        self._partial: Dict[Tuple[int, int, bool], list] = {}
        # complete but out-of-MID-order ordered messages, per stream
        self._pending: Dict[int, Dict[int, object]] = {}
        self._next_mid = [0] * owner.n_streams
        self._parked_at: Dict[Tuple[int, int], int] = {}  # (sid, mid) -> t_ns

    def seed_mid(self, sid: int, value: int) -> None:
        """Set the next expected ordered MID on ``sid`` (wraparound tests)."""
        self._next_mid[sid] = value & MID_MASK

    def on_idata(self, chunk: IDataChunk) -> List:
        """Ingest one I-DATA chunk; returns messages now deliverable."""
        from .streams import AssembledMessage

        owner = self.owner
        if not 0 <= chunk.sid < owner.n_streams:
            raise ValueError(
                f"inbound stream {chunk.sid} out of range (negotiated "
                f"{owner.n_streams})"
            )
        owner.buffered_bytes += chunk.payload.nbytes
        if chunk.begin and chunk.end:
            message = AssembledMessage(
                sid=chunk.sid,
                ssn=0,
                unordered=chunk.unordered,
                ppid=chunk.ppid,
                data=ChunkList([chunk.payload]),
                first_tsn=chunk.tsn,
                last_tsn=chunk.tsn,
                mid=chunk.mid,
            )
            return self._offer_complete(message)

        key = (chunk.sid, chunk.mid, chunk.unordered)
        entry = self._partial.get(key)
        if entry is None:
            # [fragments by FSN, FSN of the E fragment]
            entry = self._partial[key] = [{}, None]
        frags = entry[0]
        frags[chunk.fsn] = chunk
        if chunk.end:
            entry[1] = chunk.fsn
        # complete once every FSN 0..E has arrived: the sender numbers
        # fragments consecutively from 0 and the association dedupes by
        # TSN, so a count detects completion without rescanning
        e_fsn = entry[1]
        if e_fsn is None or len(frags) != e_fsn + 1:
            return []
        san = owner._san_idata
        if san is not None:
            san.on_assembled(chunk.sid, chunk.mid, frags, e_fsn)
        data = ChunkList()
        first_tsn = last_tsn = frags[0].tsn
        for fsn in range(e_fsn + 1):
            frag = frags[fsn]
            data.append(frag.payload)
            if frag.tsn < first_tsn:
                first_tsn = frag.tsn
            if frag.tsn > last_tsn:
                last_tsn = frag.tsn
        head = frags[0]
        del self._partial[key]
        message = AssembledMessage(
            sid=head.sid,
            ssn=0,
            unordered=head.unordered,
            ppid=head.ppid,
            data=data,
            first_tsn=first_tsn,
            last_tsn=last_tsn,
            mid=head.mid,
        )
        return self._offer_complete(message)

    def _offer_complete(self, message) -> List:
        owner = self.owner
        sid = message.sid
        if message.unordered:
            owner.buffered_bytes -= message.nbytes
            owner.delivered_per_stream[sid] += 1
            out = [message]
            san = owner._san_idata
            if san is not None:
                san.on_deliver(out)
            return out
        pending = self._pending.setdefault(sid, {})
        pending[message.mid] = message
        clock = owner._clock
        if clock is not None:
            self._parked_at[(sid, message.mid)] = clock()
            backlog = sum(len(p) for p in self._pending.values())
            backlog += sum(len(p) for p in owner._pending.values())
            if backlog > owner.parked_messages_max:
                owner.parked_messages_max = backlog
        out: List = []
        nxt = self._next_mid[sid]
        while nxt in pending:
            msg = pending.pop(nxt)
            nxt = (nxt + 1) & MID_MASK
            owner.buffered_bytes -= msg.nbytes
            owner.delivered_per_stream[sid] += 1
            if clock is not None:
                parked = self._parked_at.pop((sid, msg.mid), None)
                if parked is not None:
                    stall = clock() - parked
                    owner.hol_stall_ns += stall
                    owner.hol_stall_ns_per_stream[sid] += stall
            out.append(msg)
        self._next_mid[sid] = nxt
        san = owner._san_idata
        if san is not None:
            san.on_deliver(out)
        return out

    @property
    def has_undelivered(self) -> bool:
        """I-DATA parked waiting for fragments or earlier MIDs."""
        return bool(self._partial) or any(self._pending.values())
