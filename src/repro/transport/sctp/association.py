"""The SCTP association state machine.

One :class:`Association` is one end of an SCTP conversation: handshake
(client legs; the server side is constructed from a validated cookie by
the endpoint), TSN-based reliable transfer with SACK/gap-ack recovery,
per-path congestion control and T3 retransmission timers, multihomed
failover with heartbeats, graceful shutdown and abort.

Design choices that matter for the paper's results:

* **Unlimited gap-ack blocks** — the receiver reports every hole; the
  sender's fast retransmit therefore repairs multi-loss windows without
  waiting for timeouts (Table 1's loss results).
* **Retransmissions prefer an alternate active path** when one exists
  (§4.1.1, final bullet), falling back to the same path when single-homed.
* **Stream-independent delivery** — see :mod:`.streams`.
* **Timeout personality** — KAME fine-grained timers (RTO.Min = 1 s), vs
  the BSD TCP 500 ms tick quantisation in :mod:`repro.transport.tcp`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from ...analyze.sanitize import sctp_sanitizer
from ...network.packet import IP_HEADER, Packet
from ...simkernel import MILLISECOND, SECOND, Timer
from ...util.blobs import Blob
from ..base import KAME_SCTP_TIMERS, TimerPersonality
from .chunks import (
    AbortChunk,
    Chunk,
    CookieAckChunk,
    CookieEchoChunk,
    COMMON_HEADER,
    DATA_CHUNK_HEADER,
    DataChunk,
    HeartbeatAckChunk,
    HeartbeatChunk,
    IDATA_CHUNK_HEADER,
    IDataChunk,
    InitAckChunk,
    InitChunk,
    SackChunk,
    SCTPPacket,
    ShutdownAckChunk,
    ShutdownChunk,
    ShutdownCompleteChunk,
    StateCookie,
    _pad4,
)
from .interleave import OutboundInterleave
from .paths import ACTIVE, PathState
from .sched import QueuedMessage, make_scheduler
from .streams import InboundStreams, OutboundStreams

# association states
CLOSED = "CLOSED"
COOKIE_WAIT = "COOKIE_WAIT"
COOKIE_ECHOED = "COOKIE_ECHOED"
ESTABLISHED = "ESTABLISHED"
SHUTDOWN_PENDING = "SHUTDOWN_PENDING"
SHUTDOWN_SENT = "SHUTDOWN_SENT"
SHUTDOWN_RECEIVED = "SHUTDOWN_RECEIVED"
SHUTDOWN_ACK_SENT = "SHUTDOWN_ACK_SENT"


@dataclass(frozen=True)
class SCTPConfig:
    """Tunables; defaults match the paper's setup (220 KiB buffers, 10
    streams, SACK, KAME timer behaviour)."""

    pmtu: int = 1500
    sndbuf: int = 220 * 1024
    rcvbuf: int = 220 * 1024
    n_out_streams: int = 10
    n_in_streams: int = 10
    sack_delay_ns: int = 200 * MILLISECOND
    sack_every_packets: int = 2
    dupthresh: int = 3  # missing reports before fast retransmit
    timers: TimerPersonality = KAME_SCTP_TIMERS
    path_max_retrans: int = 5
    assoc_max_retrans: int = 10
    max_init_retrans: int = 8
    cookie_lifetime_ns: int = 60 * SECOND
    heartbeat_interval_ns: int = 30 * SECOND
    autoclose_ns: int = 0  # 0 disables (the paper's autoclose option)
    retransmit_to_alternate: bool = True
    # Concurrent Multipath Transfer (the paper's §5 future work, after
    # Iyengar et al. [13,14]): stripe *new* data across every ACTIVE path
    # concurrently.  Striking then uses per-path highest-TSN-newly-acked
    # ("split fast retransmit"), since cross-path reordering would
    # otherwise trigger constant spurious fast retransmits.
    cmt: bool = False
    # RFC 8260: offer user-message interleaving (I-DATA).  Active only
    # when *both* sides offer it; otherwise the association falls back to
    # legacy DATA/SSN transparently.
    interleaving: bool = False
    # sender-side stream scheduler: fcfs | rr | wfq | prio (repro.
    # transport.sctp.sched).  fcfs reproduces pre-scheduler behaviour
    # bit-for-bit.
    scheduler: str = "fcfs"
    # per-stream weights (wfq) / priorities (prio); short tuples are
    # padded with weight 1 / priority 0
    stream_weights: Tuple[int, ...] = ()
    stream_priorities: Tuple[int, ...] = ()

    @property
    def chunk_payload_budget(self) -> int:
        """Max user bytes in a single DATA chunk of a full packet."""
        return self.pmtu - IP_HEADER - COMMON_HEADER - 16

    @property
    def idata_payload_budget(self) -> int:
        """Max user bytes in a single I-DATA chunk (20-byte header)."""
        return self.pmtu - IP_HEADER - COMMON_HEADER - 20

    @property
    def packet_chunk_budget(self) -> int:
        """Chunk bytes (headers included) that fit in one packet."""
        return self.pmtu - IP_HEADER - COMMON_HEADER

    @property
    def max_message_size(self) -> int:
        """sctp_sendmsg limit: one message must fit the send buffer
        (paper §3.4/§3.6 — this is why the middleware re-fragments)."""
        return self.sndbuf


@dataclass(slots=True)
class TxRecord:
    """Book-keeping for one outstanding DATA chunk (slotted: one per
    in-flight chunk, rebuilt on every transmission)."""

    chunk: DataChunk
    path_addr: str
    sent_at_ns: int
    transmit_count: int = 1
    gap_acked: bool = False
    missing_reports: int = 0
    marked_for_rtx: bool = False


@dataclass
class AssocStats:
    """Counters for tests and benchmark diagnostics."""

    data_chunks_sent: int = 0
    data_chunks_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    retransmitted_chunks: int = 0
    fast_retransmits: int = 0
    rto_events: int = 0
    sacks_sent: int = 0
    sacks_received: int = 0
    duplicate_tsns: int = 0
    packets_sent: int = 0
    messages_delivered: int = 0
    failovers: int = 0
    gap_blocks_sent: int = 0  # holes we reported to the peer
    gap_blocks_received: int = 0  # holes the peer reported to us
    heartbeats_sent: int = 0
    heartbeat_acks_received: int = 0
    path_failures: int = 0  # paths declared INACTIVE (error limit hit)
    idata_chunks_sent: int = 0  # RFC 8260 I-DATA encodings chosen
    idata_chunks_received: int = 0
    scheduler_decisions: int = 0  # fragments dequeued by the scheduler
    messages_interleaved: int = 0  # mid-message preemptions (I-DATA only)


ASSOC_STAT_FIELDS = tuple(f.name for f in fields(AssocStats))

# cwnd histogram edges: powers of two of the chunk budget, like TCP's
# CWND_SAMPLE_EDGES but anchored at the SCTP initial cwnd (2 MTU)
CWND_SAMPLE_EDGES = tuple(1452 * 2**k for k in range(1, 9))


class Association:
    """One end of an SCTP association."""

    def __init__(
        self,
        endpoint,
        local_port: int,
        peer_addr: str,
        peer_port: int,
        config: Optional[SCTPConfig] = None,
        assoc_id: int = 0,
    ) -> None:
        self.endpoint = endpoint
        self.kernel = endpoint.kernel
        self.host = endpoint.host
        self.local_port = local_port
        self.peer_port = peer_port
        self.config = config or SCTPConfig()
        self.assoc_id = assoc_id
        self.state = CLOSED
        self.stats = AssocStats()

        rng = endpoint.tag_rng
        self.my_vtag = rng.randrange(1, 1 << 32)  # peer puts this in packets to us
        self.peer_vtag = 0  # learned from INIT/INIT-ACK
        self.my_initial_tsn = rng.randrange(1, 1 << 30)

        # paths: peer primary first; more learned during handshake
        self.paths: "OrderedDict[str, PathState]" = OrderedDict()
        self.primary_addr = peer_addr
        self._add_path(peer_addr)

        # sender: user messages queue *unfragmented* in the scheduler;
        # fragments (and their TSN/SSN/MID) are cut at dequeue time
        self.next_tsn = self.my_initial_tsn
        self.outbound = OutboundStreams(self.config.n_out_streams)
        self.scheduler = make_scheduler(
            self.config.scheduler,
            self.config.n_out_streams,
            self.config.stream_weights,
            self.config.stream_priorities,
        )
        self.out_interleave = OutboundInterleave(self.config.n_out_streams)
        self.interleaving_active = False  # negotiated at establishment
        self.queued_bytes = 0
        self.outstanding: "OrderedDict[int, TxRecord]" = OrderedDict()
        self.outstanding_bytes = 0
        self.peer_rwnd = self.config.rcvbuf  # replaced at handshake
        self.cum_tsn_acked = self.my_initial_tsn - 1
        self._t3_timers: Dict[str, Timer] = {}
        self._rtt_probe: Dict[str, Tuple[int, int]] = {}  # addr -> (tsn, sent_at)
        self._source_cache: Dict[str, str] = {}  # dest addr -> local addr
        self._next_window_probe_ns = 0  # zero-window probes are RTO-paced
        # conservative "any chunk marked for retransmit" flag: lets the
        # per-SACK _flush_marked skip scanning outstanding in the
        # loss-free steady state (stale True just falls back to the scan)
        self._any_marked = False
        self._assoc_error_count = 0
        self._init_retries = 0
        self._t1_timer: Optional[Timer] = None

        # receiver
        self.peer_initial_tsn = 0
        self.rcv_cum_tsn = 0
        self._received_above_cum: set = set()
        self.inbound: Optional[InboundStreams] = None
        self._owner_buffered = 0  # delivered to socket, not yet read by app
        self._packets_since_sack = 0
        self._sack_timer: Optional[Timer] = None
        self._dups_since_sack = 0
        # RFC 4960 §6.4: replies go to the source of the packet that
        # triggered them, so SACKs keep flowing after a path failure
        self._last_data_src: Optional[str] = None

        # other timers
        self._t2_timer: Optional[Timer] = None
        self._hb_timers: Dict[str, Timer] = {}
        self._hb_pending: Dict[str, int] = {}  # addr -> nonce awaiting ack
        self._autoclose_timer: Optional[Timer] = None
        self._nonce = 0
        self._shutdown_requested = False
        self._cookie: Optional[StateCookie] = None

        # owner (socket) hooks
        self.on_established = _noop
        self.on_message = _noop1  # fn(AssembledMessage)
        self.on_writable = _noop
        self.on_closed = _noop1  # fn(error | None)

        # protocol-invariant sanitizer; None unless REPRO_SANITIZE is on
        self._san = sctp_sanitizer()

        # metrics: per-assoc probes over the stats dataclass plus stream
        # delivery/HOL observability; cwnd histogram is shared per host
        metrics = self.kernel.metrics
        scope = metrics.scope(
            f"transport.sctp.{self.host.name}.assoc{assoc_id}"
        )
        for name in ASSOC_STAT_FIELDS:
            scope.probe(name, lambda n=name: getattr(self.stats, n))
        scope.probe("state", lambda: self.state)
        scope.probe("peer_rwnd", lambda: self.peer_rwnd)
        scope.probe(
            "active_paths",
            lambda: sum(1 for p in self.paths.values() if p.state == ACTIVE),
        )
        scope.probe(
            "hol_stall_ns",
            lambda: self.inbound.hol_stall_ns if self.inbound else 0,
        )
        scope.probe("interleaving_active", lambda: self.interleaving_active)
        scope.probe("scheduler", lambda: self.scheduler.name)
        scope.probe(
            "parked_messages_max",
            lambda: self.inbound.parked_messages_max if self.inbound else 0,
        )
        scope.probe(
            "inbound_buffered_bytes",
            lambda: self.inbound.buffered_bytes if self.inbound else 0,
        )
        for sid in range(self.config.n_in_streams):
            scope.probe(
                f"stream{sid}.delivered",
                lambda s=sid: (
                    self.inbound.delivered_per_stream[s]
                    if self.inbound and s < self.inbound.n_streams
                    else 0
                ),
            )
            scope.probe(
                f"stream{sid}.hol_stall_ns",
                lambda s=sid: (
                    self.inbound.hol_stall_ns_per_stream[s]
                    if self.inbound and s < self.inbound.n_streams
                    else 0
                ),
            )
        self._cwnd_hist = (
            metrics.histogram(
                f"transport.sctp.{self.host.name}.cwnd_bytes", CWND_SAMPLE_EDGES
            )
            if metrics.enabled
            else None
        )
        endpoint.track_assoc_stats(self.stats)

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Client-side active open: send INIT, await the 4-way handshake."""
        if self.state != CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = COOKIE_WAIT
        self._send_init()

    def _send_init(self) -> None:
        init = InitChunk(
            init_tag=self.my_vtag,
            a_rwnd=self.config.rcvbuf,
            n_out_streams=self.config.n_out_streams,
            n_in_streams=self.config.n_in_streams,
            initial_tsn=self.my_initial_tsn,
            addresses=tuple(self.host.addresses()),
            idata=self.config.interleaving,
        )
        # INIT goes with vtag 0: the peer has no tag for us yet
        self._transmit_chunks([init], self.primary_addr, vtag=0)
        self._arm_t1()

    def _establish_from_init_ack(self, chunk: InitAckChunk, src_addr: str) -> None:
        self.peer_vtag = chunk.init_tag
        self.peer_rwnd = chunk.a_rwnd
        self.peer_initial_tsn = chunk.initial_tsn
        self.rcv_cum_tsn = chunk.initial_tsn - 1
        n_out = min(self.config.n_out_streams, chunk.n_in_streams)
        n_in = min(self.config.n_in_streams, chunk.n_out_streams)
        self.outbound = OutboundStreams(max(1, n_out))
        self.inbound = self._make_inbound(n_in)
        # RFC 8260 negotiation: interleave only when both sides offered
        # I-DATA; otherwise fall back to legacy DATA/SSN.  The scheduler
        # itself is kept (it may already hold queued messages) — only its
        # granularity switches.
        self.interleaving_active = bool(self.config.interleaving and chunk.idata)
        self.scheduler.set_interleaving(self.interleaving_active)
        for addr in chunk.addresses:
            self._add_path(addr)
        self.endpoint.register_association(self, chunk.addresses)
        self.state = COOKIE_ECHOED
        self._cancel_t1()
        self._cookie = chunk.cookie
        self._send_cookie_echo()

    def _send_cookie_echo(self) -> None:
        chunks: List[Chunk] = [CookieEchoChunk(self._cookie)]
        # user data may ride legs 3 and 4 of the handshake (§3.5.2)
        budget = self.config.packet_chunk_budget - chunks[0].wire_size()
        chunks.extend(self._dequeue_for_bundle(budget, self.primary_addr))
        self._transmit_chunks(chunks, self.primary_addr)
        self._arm_t1()

    @classmethod
    def from_cookie(
        cls,
        endpoint,
        cookie: StateCookie,
        config: Optional[SCTPConfig] = None,
        assoc_id: int = 0,
    ) -> "Association":
        """Server-side TCB creation from a validated COOKIE-ECHO."""
        assoc = cls(
            endpoint,
            local_port=cookie.local_port,
            peer_addr=cookie.peer_addr,
            peer_port=cookie.peer_port,
            config=config,
            assoc_id=assoc_id,
        )
        assoc.my_vtag = cookie.my_init_tag
        assoc.peer_vtag = cookie.peer_init_tag
        assoc.my_initial_tsn = cookie.my_initial_tsn
        assoc.next_tsn = cookie.my_initial_tsn
        assoc.cum_tsn_acked = cookie.my_initial_tsn - 1
        assoc.peer_initial_tsn = cookie.peer_initial_tsn
        assoc.rcv_cum_tsn = cookie.peer_initial_tsn - 1
        assoc.peer_rwnd = cookie.peer_a_rwnd
        assoc.outbound = OutboundStreams(max(1, cookie.n_out_streams))
        assoc.inbound = assoc._make_inbound(cookie.n_in_streams)
        # the signed cookie carries the negotiated I-DATA result (the
        # endpoint computed it from both sides' offers at INIT time)
        assoc.interleaving_active = bool(cookie.idata)
        assoc.scheduler.set_interleaving(assoc.interleaving_active)
        for addr in cookie.peer_addresses:
            assoc._add_path(addr)
        assoc.state = ESTABLISHED
        assoc._start_heartbeats()
        return assoc

    def _make_inbound(self, n_streams: int) -> InboundStreams:
        """Inbound stream machinery wired to the virtual clock so it can
        measure head-of-line stall time."""
        return InboundStreams(max(1, n_streams), clock=lambda: self.kernel.now)

    def _add_path(self, addr: str) -> None:
        if addr in self.paths:
            return
        self.paths[addr] = PathState(
            addr,
            mtu_payload=self.config.chunk_payload_budget,
            initial_peer_rwnd=self.config.rcvbuf,
            timers=self.config.timers,
            path_max_retrans=self.config.path_max_retrans,
        )

    # ------------------------------------------------------------------
    # application sending
    # ------------------------------------------------------------------
    def send_message(
        self, sid: int, payload: Blob, unordered: bool = False, ppid: int = 0
    ) -> bool:
        """Queue one user message; False when the send buffer is full.

        Raises ``ValueError`` for messages above the sctp_sendmsg limit
        (the send buffer size) — middleware must split those itself.
        """
        if self.state in (
            SHUTDOWN_PENDING,
            SHUTDOWN_SENT,
            SHUTDOWN_RECEIVED,
            SHUTDOWN_ACK_SENT,
        ):
            raise BrokenPipeError(f"send in state {self.state}")
        if payload.nbytes > self.config.max_message_size:
            raise ValueError(
                f"message of {payload.nbytes} bytes exceeds the sctp_sendmsg "
                f"limit of {self.config.max_message_size} (the send buffer)"
            )
        if self.queued_bytes + self.outstanding_bytes + payload.nbytes > self.config.sndbuf:
            return False
        if not unordered and not 0 <= sid < self.outbound.n_streams:
            raise ValueError(
                f"stream {sid} out of range (have {self.outbound.n_streams})"
            )
        # messages queue unfragmented; the scheduler decides which one
        # supplies the next fragment, and _dequeue_for_bundle cuts it
        # (assigning the TSN, and the SSN/MID on the first fragment)
        self.scheduler.push(QueuedMessage(sid, payload, unordered, ppid))
        self.queued_bytes += payload.nbytes
        self._touch_autoclose()
        if self.state == ESTABLISHED:
            self._try_send()
        return True

    def sndbuf_free(self) -> int:
        """Free send-buffer space in bytes."""
        return max(0, self.config.sndbuf - self.queued_bytes - self.outstanding_bytes)

    def credit_receive_buffer(self, nbytes: int) -> None:
        """The socket read ``nbytes`` of delivered data; re-open the rwnd."""
        before = self._a_rwnd()
        self._owner_buffered -= nbytes
        if self._owner_buffered < 0:
            raise RuntimeError("receive-buffer credit underflow")
        # window-update SACK: if the window was essentially closed and has
        # now meaningfully re-opened, tell the peer (it may be stalled)
        budget = self.config.chunk_payload_budget
        if (
            self.state == ESTABLISHED
            and before < budget
            and self._a_rwnd() >= 2 * budget
        ):
            self._send_sack()

    # ------------------------------------------------------------------
    # transmission machinery
    # ------------------------------------------------------------------
    def _active_path(self) -> Optional[PathState]:
        primary = self.paths.get(self.primary_addr)
        if primary is not None and primary.state == ACTIVE:
            return primary
        for path in self.paths.values():
            if path.state == ACTIVE:
                return path
        return primary  # nothing active: keep trying the primary

    def _alternate_path(self, avoid_addr: str) -> Optional[PathState]:
        for addr, path in self.paths.items():
            if addr != avoid_addr and path.state == ACTIVE:
                return path
        return None

    def _dequeue_for_bundle(self, budget: int, path_addr: str) -> List[DataChunk]:
        """Cut DATA/I-DATA fragments from scheduler-chosen messages that
        fit ``budget`` bytes, registering them as outstanding on
        ``path_addr``.

        Fragmentation is lazy: the scheduler holds whole messages and
        this loop slices one fragment at a time, assigning the TSN here
        and the SSN/MID at a message's first fragment.  Because every
        scheduler serves one stream's messages FIFO, the sequence numbers
        equal eager assignment's — and under fcfs the entire schedule is
        bit-for-bit the old FIFO-of-chunks behaviour.
        """
        chunks: List[DataChunk] = []
        path = self.paths[path_addr]
        now = self.kernel._now
        sched = self.scheduler
        outstanding = self.outstanding
        stats = self.stats
        # the encoding is fixed per message at its first fragment; every
        # dequeue happens after INIT-ACK processing, so the negotiated
        # result is always known here
        idata = self.interleaving_active
        if idata:
            frag_budget = self.config.idata_payload_budget
            header = IDATA_CHUNK_HEADER
        else:
            frag_budget = self.config.chunk_payload_budget
            header = DATA_CHUNK_HEADER
        while True:
            head = sched.peek()
            if head is None:
                break
            remaining = head.nbytes - head.offset
            take = frag_budget if frag_budget < remaining else remaining
            wire = _pad4(header + take)
            if wire > budget:
                break
            if self.peer_rwnd < take:
                if self.outstanding_bytes > 0 or chunks:
                    break  # window closed: at most one probe chunk in flight
                if now < self._next_window_probe_ns:
                    # zero-window probes are paced by the RTO: retry later
                    self.kernel.call_at(
                        self._next_window_probe_ns, self._try_send
                    )
                    break
                self._next_window_probe_ns = now + path.rto.rto_ns
            begin = head.offset == 0
            end = take == remaining
            if begin:
                head.idata = idata
                if idata:
                    head.seq = self.out_interleave.next_mid(head.sid, head.unordered)
                else:
                    head.seq = 0 if head.unordered else self.outbound.next_ssn(head.sid)
            if begin and end:
                # single-fragment fast path: no slicing
                fragment = head.payload
            else:
                fragment = head.payload.slice(head.offset, head.offset + take)
            if head.idata:
                chunk = IDataChunk(
                    self.next_tsn, head.sid, 0, fragment, begin, end,
                    head.unordered, head.ppid, mid=head.seq, fsn=head.fsn,
                )
                stats.idata_chunks_sent += 1
            else:
                chunk = DataChunk(
                    self.next_tsn, head.sid, head.seq, fragment, begin, end,
                    head.unordered, head.ppid,
                )
            self.next_tsn += 1
            sched.consume(take)
            chunks.append(chunk)
            budget -= wire
            self.queued_bytes -= take
            outstanding[chunk.tsn] = TxRecord(chunk, path_addr, now)
            self.outstanding_bytes += take
            path.outstanding_bytes += take
            path.bytes_sent += take
            rwnd = self.peer_rwnd - take
            self.peer_rwnd = rwnd if rwnd > 0 else 0
            stats.data_chunks_sent += 1
            stats.bytes_sent += take
            if path.outstanding_bytes >= path.cwnd:
                break
        if chunks:
            if path_addr not in self._rtt_probe:
                self._rtt_probe[path_addr] = (chunks[-1].tsn, now)
            # scheduler observability: counters live on the scheduler,
            # the stats dataclass mirrors them for probes/summing
            stats.scheduler_decisions = sched.decisions
            stats.messages_interleaved = sched.interleave_switches
        return chunks

    def _active_paths(self) -> List[PathState]:
        """Every ACTIVE destination (CMT stripes new data over all)."""
        return [p for p in self.paths.values() if p.state == ACTIVE]

    def _try_send(self) -> None:
        if self.state not in (ESTABLISHED, SHUTDOWN_PENDING, SHUTDOWN_RECEIVED):
            return
        if self.config.cmt:
            self._try_send_cmt()
            self._maybe_send_shutdown()
            return
        path = self._active_path()
        if path is None:
            return
        while self.scheduler.has_pending() and path.can_send():
            if self.peer_rwnd <= 0 and self.outstanding_bytes > 0:
                break
            chunks: List[Chunk] = []
            budget = self.config.packet_chunk_budget
            if self._sack_is_pending():
                sack = self._build_sack()
                chunks.append(sack)
                budget -= sack.wire_size()
            data = self._dequeue_for_bundle(budget, path.addr)
            if not data:
                if chunks:
                    # a pending SACK left no room for a full-size chunk:
                    # send it alone and retry with the whole packet budget
                    self._transmit_chunks(chunks, path.addr)
                    continue
                break
            chunks.extend(data)
            self._transmit_chunks(chunks, path.addr)
            self._arm_t3(path.addr)
        self._maybe_send_shutdown()

    def _try_send_cmt(self) -> None:
        """CMT transmission: round-robin packets over every active path
        with congestion-window room."""
        progress = True
        while self.scheduler.has_pending() and progress:
            progress = False
            for path in self._active_paths():
                if not self.scheduler.has_pending():
                    break
                if not path.can_send():
                    continue
                if self.peer_rwnd <= 0 and self.outstanding_bytes > 0:
                    return
                chunks: List[Chunk] = []
                budget = self.config.packet_chunk_budget
                if self._sack_is_pending():
                    sack = self._build_sack()
                    chunks.append(sack)
                    budget -= sack.wire_size()
                data = self._dequeue_for_bundle(budget, path.addr)
                if not data:
                    if chunks:
                        self._transmit_chunks(chunks, path.addr)
                    continue
                chunks.extend(data)
                self._transmit_chunks(chunks, path.addr)
                self._arm_t3(path.addr)
                progress = True

    def _transmit_chunks(self, chunks: List[Chunk], dest_addr: str, vtag=None) -> None:
        pkt = SCTPPacket(
            src_port=self.local_port,
            dst_port=self.peer_port,
            vtag=self.peer_vtag if vtag is None else vtag,
            chunks=tuple(chunks),
        )
        src = self._source_for(dest_addr)
        self.stats.packets_sent += 1
        self.host.send(
            Packet.acquire(src, dest_addr, "sctp", pkt, pkt.wire_size())
        )

    def _source_for(self, dest_addr: str) -> str:
        """Pick the local address on the same subnet as the destination.

        Cached per destination: host interfaces are fixed before any
        association exists, and this runs once per transmitted packet.
        """
        src = self._source_cache.get(dest_addr)
        if src is None:
            dest_net = dest_addr.rsplit(".", 1)[0]
            for addr in self.host.addresses():
                if addr.rsplit(".", 1)[0] == dest_net:
                    src = addr
                    break
            else:
                src = self.host.primary_address
            self._source_cache[dest_addr] = src
        return src

    # ------------------------------------------------------------------
    # packet input (called by the endpoint after vtag validation)
    # ------------------------------------------------------------------
    def on_packet(self, pkt: SCTPPacket, src_addr: str) -> None:
        """Process every chunk of one inbound packet."""
        self._touch_autoclose()
        has_data = False
        for chunk in pkt.chunks:
            if isinstance(chunk, DataChunk):
                self._on_data(chunk)
                self._last_data_src = src_addr
                has_data = True
            elif isinstance(chunk, SackChunk):
                self._on_sack(chunk, src_addr)
            elif isinstance(chunk, InitAckChunk):
                if self.state == COOKIE_WAIT:
                    self._establish_from_init_ack(chunk, src_addr)
            elif isinstance(chunk, CookieEchoChunk):
                if self.state == ESTABLISHED:
                    # retransmitted COOKIE-ECHO: our COOKIE-ACK was lost
                    self._transmit_chunks([CookieAckChunk()], src_addr)
            elif isinstance(chunk, CookieAckChunk):
                if self.state == COOKIE_ECHOED:
                    self.state = ESTABLISHED
                    self._cancel_t1()
                    self._start_heartbeats()
                    self.on_established()
                    self._try_send()
            elif isinstance(chunk, HeartbeatChunk):
                self._transmit_chunks(
                    [HeartbeatAckChunk(chunk.dest_addr, chunk.sent_at_ns, chunk.nonce)],
                    src_addr,
                )
            elif isinstance(chunk, HeartbeatAckChunk):
                self._on_heartbeat_ack(chunk)
            elif isinstance(chunk, ShutdownChunk):
                self._on_shutdown(chunk, src_addr)
            elif isinstance(chunk, ShutdownAckChunk):
                self._on_shutdown_ack(src_addr)
            elif isinstance(chunk, ShutdownCompleteChunk):
                self._teardown(None)
            elif isinstance(chunk, AbortChunk):
                self._teardown(f"aborted by peer: {chunk.reason}")
                return
        if has_data:
            self._sack_policy()

    # -- receiver side ----------------------------------------------------
    def _on_data(self, chunk: DataChunk) -> None:
        if self.inbound is None:
            return
        tsn = chunk.tsn
        if tsn <= self.rcv_cum_tsn or tsn in self._received_above_cum:
            self.stats.duplicate_tsns += 1
            self._dups_since_sack += 1
            return
        self.stats.data_chunks_received += 1
        self.stats.bytes_received += chunk.payload.nbytes
        if chunk.is_idata:
            self.stats.idata_chunks_received += 1
        if tsn == self.rcv_cum_tsn + 1 and not self._received_above_cum:
            self.rcv_cum_tsn = tsn  # in-order, no gap: skip the set churn
        else:
            self._received_above_cum.add(tsn)
            while (self.rcv_cum_tsn + 1) in self._received_above_cum:
                self.rcv_cum_tsn += 1
                self._received_above_cum.discard(self.rcv_cum_tsn)
        if self._san is not None:
            self._san.on_data_received(self)
        for message in self.inbound.on_data(chunk):
            self._owner_buffered += message.nbytes
            self.stats.messages_delivered += 1
            self.on_message(message)

    def _sack_policy(self) -> None:
        self._packets_since_sack += 1
        out_of_order = bool(self._received_above_cum)
        if out_of_order or self._dups_since_sack:
            self._send_sack()  # report gaps/dups immediately (RFC 4960 §6.7)
        elif self._packets_since_sack >= self.config.sack_every_packets:
            self._send_sack()
        elif self._sack_timer is None:
            self._sack_timer = self.kernel.call_after(
                self.config.sack_delay_ns, self._on_sack_timer
            )

    def _on_sack_timer(self) -> None:
        self._sack_timer = None
        if self.state != CLOSED and self._packets_since_sack > 0:
            self._send_sack()

    def _sack_is_pending(self) -> bool:
        return self._packets_since_sack > 0

    def _gap_blocks(self) -> Tuple[Tuple[int, int], ...]:
        if not self._received_above_cum:
            return ()
        blocks: List[Tuple[int, int]] = []
        start = prev = None
        for tsn in sorted(self._received_above_cum):
            if start is None:
                start = prev = tsn
            elif tsn == prev + 1:
                prev = tsn
            else:
                blocks.append((start - self.rcv_cum_tsn, prev - self.rcv_cum_tsn))
                start = prev = tsn
        blocks.append((start - self.rcv_cum_tsn, prev - self.rcv_cum_tsn))
        return tuple(blocks)

    def _a_rwnd(self) -> int:
        buffered = (self.inbound.buffered_bytes if self.inbound else 0)
        return max(0, self.config.rcvbuf - buffered - self._owner_buffered)

    def _build_sack(self) -> SackChunk:
        sack = SackChunk(
            cum_tsn=self.rcv_cum_tsn,
            a_rwnd=self._a_rwnd(),
            gaps=self._gap_blocks(),
            n_dup_tsns=self._dups_since_sack,
        )
        self.stats.gap_blocks_sent += len(sack.gaps)
        self._packets_since_sack = 0
        self._dups_since_sack = 0
        if self._sack_timer is not None:
            self._sack_timer.cancel()
            self._sack_timer = None
        self.stats.sacks_sent += 1
        return sack

    def _send_sack(self) -> None:
        dest = self._last_data_src
        if dest is None:
            path = self._active_path()
            dest = path.addr if path is not None else self.primary_addr
        self._transmit_chunks([self._build_sack()], dest)

    # -- sender side: SACK processing -----------------------------------------
    def _on_sack(self, sack: SackChunk, src_addr: str) -> None:
        self.stats.sacks_received += 1
        self.stats.gap_blocks_received += len(sack.gaps)
        newly_acked: Dict[str, int] = {}
        # "cwnd fully utilized" = no room for another full chunk; an exact
        # >= test never fires because bursts stop one sub-MTU short
        cwnd_was_full = {
            addr: p.outstanding_bytes + p.mtu_payload > p.cwnd
            for addr, p in self.paths.items()
        }
        cum_advanced = sack.cum_tsn > self.cum_tsn_acked

        # cumulative acknowledgement — per-TSN hot loop, with the bodies
        # of _account_acked/_maybe_rtt_sample inlined (several chunks are
        # popped per SACK; the helper frames dominated the loop)
        highest_newly_acked = None  # HTNA, RFC 4960 §7.2.4
        htna_per_path: Dict[str, int] = {}  # CMT split fast retransmit
        outstanding = self.outstanding
        paths = self.paths
        rtt_probe = self._rtt_probe
        cum_tsn = sack.cum_tsn
        while outstanding:
            tsn = next(iter(outstanding))
            if tsn > cum_tsn:
                break
            record = outstanding.pop(tsn)
            addr = record.path_addr
            if not record.gap_acked:
                size = record.chunk.payload.nbytes
                self.outstanding_bytes -= size
                path = paths.get(addr)
                if path is not None:
                    left = path.outstanding_bytes - size
                    path.outstanding_bytes = left if left > 0 else 0
                newly_acked[addr] = newly_acked.get(addr, 0) + size
            probe = rtt_probe.get(addr)
            if probe is not None and record.chunk.tsn == probe[0]:
                del rtt_probe[addr]
                if record.transmit_count == 1:  # Karn's rule
                    paths[addr].rto.observe(self.kernel._now - probe[1])
            highest_newly_acked = tsn
            htna_per_path[addr] = tsn
        self.cum_tsn_acked = max(self.cum_tsn_acked, sack.cum_tsn)

        # gap acknowledgements (skip the set build entirely when the SACK
        # carries no gap blocks — the overwhelmingly common case)
        gap_acked_tsns = sack.acked_tsns() if sack.gaps else ()
        for tsn in gap_acked_tsns:
            record = self.outstanding.get(tsn)
            if record is not None and not record.gap_acked:
                record.gap_acked = True
                # a gap-acked chunk is no longer outstanding anywhere:
                # never retransmit it, even if a timeout marked it already
                record.marked_for_rtx = False
                self._account_acked(record, newly_acked, count_bytes=True)
                self._maybe_rtt_sample(record)
                if highest_newly_acked is None or tsn > highest_newly_acked:
                    highest_newly_acked = tsn
                htna_per_path[record.path_addr] = max(
                    htna_per_path.get(record.path_addr, 0), tsn
                )

        if cum_advanced:
            self._assoc_error_count = 0
        total_acked = sum(newly_acked.values())
        if total_acked > 0:
            for addr in newly_acked:
                self.paths[addr].note_success()
                self.paths[addr].rto.reset_backoff()

        # flow control: a_rwnd minus what is still in flight
        self.peer_rwnd = max(0, sack.a_rwnd - self.outstanding_bytes)

        # missing reports -> fast retransmit.  RFC 4960 §7.2.4 (HTNA): a
        # chunk is struck only when this SACK *newly* acknowledged a TSN
        # above it, and never after it has already been retransmitted
        # (retransmission loss is the timer's job) — without these rules a
        # single hole is struck by every later SACK and retransmitted over
        # and over, each event halving cwnd.
        to_fast_rtx: List[TxRecord] = []
        if highest_newly_acked is not None:
            for tsn, record in self.outstanding.items():
                if tsn >= highest_newly_acked:
                    break  # outstanding is TSN-ordered
                if (
                    record.gap_acked
                    or record.marked_for_rtx
                    or record.transmit_count > 1
                ):
                    continue
                if self.config.cmt:
                    # split fast retransmit: only same-path evidence counts
                    # (cross-path reordering is normal under CMT)
                    path_htna = htna_per_path.get(record.path_addr)
                    if path_htna is None or tsn >= path_htna:
                        continue
                record.missing_reports += 1
                if record.missing_reports >= self.config.dupthresh:
                    record.marked_for_rtx = True
                    self._any_marked = True
                    to_fast_rtx.append(record)
        if to_fast_rtx:
            # dict.fromkeys, not a set: strike order must follow strike
            # (TSN) order, not PYTHONHASHSEED string-hash order
            struck_paths = dict.fromkeys(r.path_addr for r in to_fast_rtx)
            highest_out = max(self.outstanding) if self.outstanding else self.cum_tsn_acked
            for addr in struck_paths:
                self.paths[addr].on_fast_retransmit(highest_out)
            self.stats.fast_retransmits += 1
            self._retransmit_marked()

        # congestion window growth
        for addr, acked in newly_acked.items():
            self.paths[addr].on_bytes_acked(acked, cwnd_was_full[addr])
            if self._cwnd_hist is not None:
                self._cwnd_hist.observe(self.paths[addr].cwnd)
        # per-path cum-advance bookkeeping + T3 timer management in one
        # pass (the two are independent per path; timer creation order
        # across paths is unchanged — same dict iteration order)
        for addr, path in self.paths.items():
            path.on_cum_advance(self.cum_tsn_acked)
            if path.outstanding_bytes <= 0:
                self._cancel_t3(addr)
            elif cum_advanced:
                self._arm_t3(addr, restart=True)

        if self._shutdown_requested:
            self._maybe_send_shutdown()
        # RFC 4960 §6.3.3 rule E4: chunks still marked from a timeout go
        # out as soon as cwnd allows — without this a failed-over message
        # trickles one packet per backed-off T3 expiry
        self._flush_marked()
        self._try_send()
        if self._san is not None:
            self._san.on_sack_processed(self)
        if total_acked > 0 and self.sndbuf_free() > 0:
            self.on_writable()

    def _account_acked(
        self, record: TxRecord, newly_acked: Dict[str, int], count_bytes: bool
    ) -> None:
        if not count_bytes:
            return
        size = record.chunk.payload.nbytes
        self.outstanding_bytes -= size
        path = self.paths.get(record.path_addr)
        if path is not None:
            path.outstanding_bytes = max(0, path.outstanding_bytes - size)
        newly_acked[record.path_addr] = newly_acked.get(record.path_addr, 0) + size

    def _maybe_rtt_sample(self, record: TxRecord) -> None:
        probe = self._rtt_probe.get(record.path_addr)
        if probe is None:
            return
        probe_tsn, sent_at = probe
        if record.chunk.tsn == probe_tsn:
            del self._rtt_probe[record.path_addr]
            if record.transmit_count == 1:  # Karn's rule
                self.paths[record.path_addr].rto.observe(self.kernel.now - sent_at)

    # -- retransmission -------------------------------------------------------
    def _flush_marked(self) -> None:
        """Retransmit remaining marked chunks while cwnd has room.

        :meth:`_retransmit_marked` sends one bundled packet per call (the
        RFC's timeout rule); after a SACK frees cwnd the rest must follow
        immediately rather than wait for further timer expiries.
        """
        if not self._any_marked:
            return  # loss-free steady state: skip the outstanding scan
        while True:
            marked = [r for r in self.outstanding.values() if r.marked_for_rtx]
            if not marked:
                self._any_marked = False
                return
            origin = marked[0].path_addr
            dest = None
            if self.config.retransmit_to_alternate:
                dest = self._alternate_path(origin)
            if dest is None:
                dest = self.paths.get(origin) or self._active_path()
            if dest is None or not dest.can_send():
                return
            self._retransmit_marked()
            still_marked = sum(
                1 for r in self.outstanding.values() if r.marked_for_rtx
            )
            if still_marked >= len(marked):
                return  # no progress (oversized chunk): leave it to T3

    def _retransmit_marked(self) -> None:
        """Send marked chunks, one bundled packet, preferring an alternate
        active path (paper §4.1.1: retransmissions use alternates)."""
        marked = [
            r
            for r in self.outstanding.values()
            if r.marked_for_rtx and not r.gap_acked
        ]
        if not marked:
            return
        origin = marked[0].path_addr
        dest_path = None
        if self.config.retransmit_to_alternate:
            dest_path = self._alternate_path(origin)
        if dest_path is None:
            dest_path = self.paths.get(origin) or self._active_path()
        if dest_path is None:
            return
        # no SACK bundling here: retransmissions must never be crowded out
        chunks: List[Chunk] = []
        sent_records: List[TxRecord] = []
        budget = self.config.packet_chunk_budget
        n_data = 0
        for record in marked:
            size = record.chunk.wire_size()
            if size > budget:
                break
            budget -= size
            chunks.append(record.chunk)
            sent_records.append(record)
            record.marked_for_rtx = False
            record.missing_reports = 0
            record.transmit_count += 1
            record.sent_at_ns = self.kernel.now
            # migrate outstanding accounting to the retransmission path
            old_path = self.paths.get(record.path_addr)
            if old_path is not None and old_path is not dest_path:
                old_path.outstanding_bytes = max(
                    0, old_path.outstanding_bytes - record.chunk.payload.nbytes
                )
                dest_path.outstanding_bytes += record.chunk.payload.nbytes
                if record.path_addr != dest_path.addr:
                    self.stats.failovers += 1
            record.path_addr = dest_path.addr
            # Karn: no RTT sample from anything retransmitted
            self._rtt_probe.pop(dest_path.addr, None)
            self.stats.retransmitted_chunks += 1
            n_data += 1
        if n_data > 0:
            if self._san is not None:
                self._san.on_retransmit(sent_records, "marked")
            self._transmit_chunks(chunks, dest_path.addr)
            self._arm_t3(dest_path.addr, restart=True)

    def _arm_t3(self, addr: str, restart: bool = False) -> None:
        timer = self._t3_timers.get(addr)
        if timer is not None:
            if not restart:
                return
            timer.cancel()
        path = self.paths[addr]
        self._t3_timers[addr] = self.kernel.call_after(
            path.rto.rto_ns, self._on_t3, addr
        )

    def _cancel_t3(self, addr: str) -> None:
        timer = self._t3_timers.pop(addr, None)
        if timer is not None:
            timer.cancel()

    def _on_t3(self, addr: str) -> None:
        self._t3_timers.pop(addr, None)
        path = self.paths.get(addr)
        if path is None or self.state == CLOSED:
            return
        # RFC 4960 §6.3.3 rule E3 excludes gap-acked chunks: they are not
        # outstanding on the path anymore (their bytes were credited on
        # gap-ack), so retransmitting them would corrupt path accounting
        on_path = [
            r
            for r in self.outstanding.values()
            if r.path_addr == addr and not r.gap_acked
        ]
        if not on_path:
            return
        self.stats.rto_events += 1
        path.on_timeout()
        if self._cwnd_hist is not None:
            self._cwnd_hist.observe(path.cwnd)
        path.rto.back_off()
        self._note_path_error(path)
        self._assoc_error_count += 1
        if self._assoc_error_count > self.config.assoc_max_retrans:
            self.abort("association retransmission limit exceeded")
            return
        for record in on_path:
            record.marked_for_rtx = True
            record.missing_reports = 0
        if on_path:
            self._any_marked = True
        self._retransmit_marked()

    # -- heartbeats / path supervision ---------------------------------------
    def _start_heartbeats(self) -> None:
        if self.config.heartbeat_interval_ns <= 0:
            return
        for addr in self.paths:
            self._arm_heartbeat(addr)

    def _arm_heartbeat(self, addr: str) -> None:
        old = self._hb_timers.get(addr)
        if old is not None:
            old.cancel()
        path = self.paths[addr]
        interval = self.config.heartbeat_interval_ns + path.rto.rto_ns
        self._hb_timers[addr] = self.kernel.call_after(
            interval, self._on_heartbeat_timer, addr
        )

    def _on_heartbeat_timer(self, addr: str) -> None:
        self._hb_timers.pop(addr, None)
        if self.state != ESTABLISHED:
            return
        path = self.paths.get(addr)
        if path is None:
            return
        if addr in self._hb_pending:
            # previous heartbeat never answered
            self._note_path_error(path)
            path.rto.back_off()
            del self._hb_pending[addr]
        if path.outstanding_bytes == 0:  # only probe idle paths
            self._nonce += 1
            self._hb_pending[addr] = self._nonce
            self.stats.heartbeats_sent += 1
            self._transmit_chunks(
                [HeartbeatChunk(addr, self.kernel.now, self._nonce)], addr
            )
        self._arm_heartbeat(addr)

    def _note_path_error(self, path: PathState) -> None:
        """note_error plus stats bookkeeping of ACTIVE->INACTIVE flips."""
        before = path.failures
        path.note_error()
        self.stats.path_failures += path.failures - before

    def _on_heartbeat_ack(self, chunk: HeartbeatAckChunk) -> None:
        pending = self._hb_pending.get(chunk.dest_addr)
        if pending != chunk.nonce:
            return
        del self._hb_pending[chunk.dest_addr]
        path = self.paths.get(chunk.dest_addr)
        if path is not None:
            self.stats.heartbeat_acks_received += 1
            path.note_success()
            path.rto.observe(self.kernel.now - chunk.sent_at_ns)

    def set_primary(self, addr: str) -> None:
        """SCTP_PRIMARY_ADDR-style override."""
        if addr not in self.paths:
            raise ValueError(f"{addr} is not a peer address of this association")
        self.primary_addr = addr

    # -- T1 (handshake) timer ---------------------------------------------------
    def _arm_t1(self) -> None:
        self._cancel_t1()
        rto = self.paths[self.primary_addr].rto
        self._t1_timer = self.kernel.call_after(rto.rto_ns, self._on_t1)

    def _cancel_t1(self) -> None:
        if self._t1_timer is not None:
            self._t1_timer.cancel()
            self._t1_timer = None

    def _on_t1(self) -> None:
        self._t1_timer = None
        self._init_retries += 1
        if self._init_retries > self.config.max_init_retrans:
            self._teardown("handshake timed out")
            return
        self.paths[self.primary_addr].rto.back_off()
        if self.state == COOKIE_WAIT:
            self._send_init()
        elif self.state == COOKIE_ECHOED:
            self._transmit_chunks([CookieEchoChunk(self._cookie)], self.primary_addr)
            self._arm_t1()

    # -- shutdown / teardown -----------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown; completes once all data is delivered.

        Note SCTP has no half-closed state: after close() neither side may
        send new data (paper §3.5.2).
        """
        if self.state in (CLOSED, SHUTDOWN_SENT, SHUTDOWN_ACK_SENT):
            return
        self._shutdown_requested = True
        if self.state == ESTABLISHED:
            self.state = SHUTDOWN_PENDING
        self._maybe_send_shutdown()

    def _maybe_send_shutdown(self) -> None:
        if not self._shutdown_requested:
            return
        if self.scheduler.has_pending() or self.outstanding:
            return
        if self.state == SHUTDOWN_PENDING:
            self.state = SHUTDOWN_SENT
            self._transmit_chunks([ShutdownChunk(self.rcv_cum_tsn)], self.primary_addr)
            self._arm_t2()
        elif self.state == SHUTDOWN_RECEIVED:
            self.state = SHUTDOWN_ACK_SENT
            self._transmit_chunks([ShutdownAckChunk()], self.primary_addr)
            self._arm_t2()

    def _on_shutdown(self, chunk: ShutdownChunk, src_addr: str) -> None:
        if self.state in (ESTABLISHED, SHUTDOWN_PENDING):
            self.state = SHUTDOWN_RECEIVED
            self._shutdown_requested = True
        self._maybe_send_shutdown()

    def _on_shutdown_ack(self, src_addr: str) -> None:
        self._transmit_chunks([ShutdownCompleteChunk()], src_addr)
        self._teardown(None)

    def _arm_t2(self) -> None:
        if self._t2_timer is not None:
            self._t2_timer.cancel()
        rto = self.paths[self.primary_addr].rto
        self._t2_timer = self.kernel.call_after(rto.rto_ns, self._on_t2)

    def _on_t2(self) -> None:
        self._t2_timer = None
        if self.state == SHUTDOWN_SENT:
            self._transmit_chunks([ShutdownChunk(self.rcv_cum_tsn)], self.primary_addr)
            self._arm_t2()
        elif self.state == SHUTDOWN_ACK_SENT:
            self._transmit_chunks([ShutdownAckChunk()], self.primary_addr)
            self._arm_t2()

    def abort(self, reason: str) -> None:
        """Send ABORT and tear down immediately."""
        if self.state != CLOSED:
            self._transmit_chunks([AbortChunk(reason)], self.primary_addr)
        self._teardown(reason)

    def _touch_autoclose(self) -> None:
        if self.config.autoclose_ns <= 0:
            return
        if self._autoclose_timer is not None:
            self._autoclose_timer.cancel()
        self._autoclose_timer = self.kernel.call_after(
            self.config.autoclose_ns, self._on_autoclose
        )

    def _on_autoclose(self) -> None:
        self._autoclose_timer = None
        if self.state == ESTABLISHED and not self.outstanding and not self.scheduler.has_pending():
            self.close()

    def _teardown(self, error: Optional[str]) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        for timer in (
            self._t1_timer,
            self._t2_timer,
            self._sack_timer,
            self._autoclose_timer,
        ):
            if timer is not None:
                timer.cancel()
        for timer in list(self._t3_timers.values()) + list(self._hb_timers.values()):
            timer.cancel()
        self._t3_timers.clear()
        self._hb_timers.clear()
        self.endpoint.forget(self)
        self.on_closed(error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Association id={self.assoc_id} {self.local_port}->"
            f"{self.primary_addr}:{self.peer_port} {self.state}>"
        )


def _noop() -> None:
    return None


def _noop1(_arg) -> None:
    return None
