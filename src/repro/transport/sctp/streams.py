"""Stream machinery: reassembly and per-stream ordered delivery.

This module is where SCTP's head-of-line-blocking cure lives.  Inbound
DATA chunks are first *reassembled* into whole user messages (fragments of
one message occupy consecutive TSNs between the B and E bits) and then
*ordered* — but only against other messages of the same stream, via the
SSN.  A complete message on stream 2 is delivered even while stream 1
still has holes; contrast the TCP receive path, which cannot release
anything past a missing byte (paper Fig. 4/5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...analyze.sanitize import idata_sanitizer, stream_sanitizer
from ...util.blobs import ChunkList
from .chunks import DataChunk


@dataclass(slots=True)
class AssembledMessage:
    """A whole user message ready for (or awaiting) stream delivery.

    ``mid`` is None for legacy DATA messages (identity/order via ``ssn``)
    and the RFC 8260 Message ID for I-DATA ones (``ssn`` is then 0 and
    carries no ordering information).
    """

    sid: int
    ssn: int
    unordered: bool
    ppid: int
    data: ChunkList
    first_tsn: int
    last_tsn: int
    mid: Optional[int] = None

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


class OutboundStreams:
    """Per-stream SSN counters for the sending side."""

    def __init__(self, n_streams: int) -> None:
        self.n_streams = n_streams
        self._next_ssn = [0] * n_streams

    def next_ssn(self, sid: int) -> int:
        """Claim the next stream sequence number on ``sid``."""
        if not 0 <= sid < self.n_streams:
            raise ValueError(f"stream {sid} out of range (have {self.n_streams})")
        ssn = self._next_ssn[sid]
        self._next_ssn[sid] = ssn + 1
        return ssn


class InboundStreams:
    """Reassembly + per-stream ordering for the receiving side.

    When given a ``clock`` (virtual-time callable), it also measures
    head-of-line stall time: the nanoseconds each *complete* message
    spends parked behind a missing earlier SSN of its own stream.  This
    is the counter that explains the paper's Fig. 12 — with one stream
    every loss stalls everything behind it; with ten, only one stream's
    messages wait.
    """

    def __init__(self, n_streams: int, clock: Optional[Callable[[], int]] = None) -> None:
        self.n_streams = n_streams
        # fragments of incomplete messages, grouped by message identity:
        # key -> [fragments by TSN, B-fragment TSN or None, E-TSN or None]
        self._partial: Dict[Tuple[int, int, bool], list] = {}
        # complete but out-of-SSN-order messages, per stream
        self._pending: Dict[int, Dict[int, AssembledMessage]] = {}
        self._next_ssn = [0] * n_streams
        self.buffered_bytes = 0  # fragments + undeliverable messages
        self._clock = clock
        self._parked_at: Dict[Tuple[int, int], int] = {}  # (sid, ssn) -> t_ns
        self.hol_stall_ns = 0  # total time complete messages waited for order
        self.hol_stall_ns_per_stream = [0] * n_streams  # same, by stream
        self.parked_messages_max = 0  # peak complete-but-undeliverable backlog
        self.delivered_per_stream = [0] * n_streams
        # per-stream SSN-order sanitizer; None unless REPRO_SANITIZE is on
        self._san = stream_sanitizer()
        # RFC 8260 legality sanitizer, shared with the I-DATA path
        self._san_idata = idata_sanitizer()
        # I-DATA reassembly rides alongside (lazy import: interleave.py
        # needs AssembledMessage from this module)
        from .interleave import InterleavedReassembly

        self.interleaved = InterleavedReassembly(self)

    def _key(self, chunk: DataChunk) -> Tuple[int, int, bool]:
        return (chunk.sid, chunk.ssn, chunk.unordered)

    def on_data(self, chunk: DataChunk) -> List[AssembledMessage]:
        """Ingest one DATA chunk; returns messages now deliverable, in order."""
        if self._san_idata is not None:
            self._san_idata.on_chunk(chunk)
        if chunk.is_idata:
            return self.interleaved.on_idata(chunk)
        if not 0 <= chunk.sid < self.n_streams:
            raise ValueError(
                f"inbound stream {chunk.sid} out of range (negotiated "
                f"{self.n_streams})"
            )
        self.buffered_bytes += chunk.payload.nbytes
        if chunk.begin and chunk.end:
            message = AssembledMessage(
                sid=chunk.sid,
                ssn=chunk.ssn,
                unordered=chunk.unordered,
                ppid=chunk.ppid,
                data=ChunkList([chunk.payload]),
                first_tsn=chunk.tsn,
                last_tsn=chunk.tsn,
            )
            return self._offer_complete(message)

        key = self._key(chunk)
        entry = self._partial.get(key)
        if entry is None:
            # [fragments by TSN, TSN of the B fragment, TSN of the E one]
            entry = self._partial[key] = [{}, None, None]
        frags = entry[0]
        frags[chunk.tsn] = chunk
        if chunk.begin:
            entry[1] = chunk.tsn
        if chunk.end:
            entry[2] = chunk.tsn
        # assemble only once every fragment between B and E has arrived:
        # fragment TSNs are contiguous and each is delivered at most once
        # (the association dedupes), so a simple count detects completion
        # without rescanning the fragment set on every arrival
        first = entry[1]
        last = entry[2]
        if first is None or last is None or last < first:
            return []
        if len(frags) != last - first + 1:
            return []
        message = self._assemble(frags, first, last)
        del self._partial[key]
        return self._offer_complete(message)

    def _assemble(
        self, frags: Dict[int, DataChunk], first: int, last: int
    ) -> AssembledMessage:
        data = ChunkList()
        for tsn in range(first, last + 1):
            data.append(frags[tsn].payload)
        head = frags[first]
        return AssembledMessage(
            sid=head.sid,
            ssn=head.ssn,
            unordered=head.unordered,
            ppid=head.ppid,
            data=data,
            first_tsn=first,
            last_tsn=last,
        )

    def _offer_complete(self, message: AssembledMessage) -> List[AssembledMessage]:
        if message.unordered:
            self.buffered_bytes -= message.nbytes
            self.delivered_per_stream[message.sid] += 1
            return [message]
        sid = message.sid
        pending = self._pending.setdefault(sid, {})
        pending[message.ssn] = message
        if self._clock is not None:
            self._parked_at[(sid, message.ssn)] = self._clock()
            backlog = sum(len(p) for p in self._pending.values())
            if backlog > self.parked_messages_max:
                self.parked_messages_max = backlog
        out: List[AssembledMessage] = []
        while self._next_ssn[sid] in pending:
            msg = pending.pop(self._next_ssn[sid])
            self._next_ssn[sid] += 1
            self.buffered_bytes -= msg.nbytes
            self.delivered_per_stream[sid] += 1
            if self._clock is not None:
                parked = self._parked_at.pop((sid, msg.ssn), None)
                if parked is not None:
                    stall = self._clock() - parked
                    self.hol_stall_ns += stall
                    self.hol_stall_ns_per_stream[sid] += stall
            out.append(msg)
        if self._san is not None:
            self._san.on_deliver(out)
        return out

    @property
    def has_undelivered(self) -> bool:
        """Data parked waiting for fragments or earlier SSNs/MIDs."""
        return (
            bool(self._partial)
            or any(self._pending.values())
            or self.interleaved.has_undelivered
        )
