"""Per-host SCTP endpoint: demultiplexing, cookies, verification tags.

The endpoint implements the parts of SCTP that exist *before* an
association does: the stateless INIT -> INIT-ACK reply whose signed
cookie carries all the would-be TCB state (SYN-flood immunity), cookie
validation (signature + staleness) on COOKIE-ECHO, and verification-tag
checking that makes blind injection/reset attacks fail (paper §3.5.2 —
tested in ``tests/transport/test_sctp_security.py``).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional, Tuple

from ...network.host import Host
from ...network.packet import Packet
from .association import ASSOC_STAT_FIELDS, AssocStats, Association, SCTPConfig
from .chunks import (
    AbortChunk,
    CookieEchoChunk,
    InitAckChunk,
    InitChunk,
    SCTPPacket,
    StateCookie,
)

ConnKey = Tuple[int, str, int]  # (local_port, peer_addr, peer_port)


class ListenerHooks:
    """What a listening one-to-many socket registers with the endpoint."""

    def __init__(
        self,
        on_new_association: Callable[[Association], None],
        config: Optional[SCTPConfig] = None,
    ) -> None:
        self.on_new_association = on_new_association
        self.config = config


class SCTPEndpoint:
    """The host's SCTP stack entry point."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host: Host, default_config: Optional[SCTPConfig] = None) -> None:
        self.host = host
        self.kernel = host.kernel
        self.default_config = default_config or SCTPConfig()
        self.tag_rng = host.kernel.rng(f"sctp.tags.{host.name}")
        self._secret = self.tag_rng.randrange(1, 1 << 63)
        self._assocs: Dict[ConnKey, Association] = {}
        self._listeners: Dict[int, ListenerHooks] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._next_assoc_id = 1
        self.bad_vtag_drops = 0
        self.crc32c_drops = 0
        self.stale_cookies = 0
        self.bad_signature_cookies = 0
        self.ootb_packets = 0
        host.register_protocol("sctp", self)
        # per-host stat sums over every association this endpoint ever made
        # (closed associations keep counting — teardown must not lose data)
        self._all_assoc_stats: list[AssocStats] = []
        scope = self.kernel.metrics.scope(f"transport.sctp.{host.name}")
        for name in ASSOC_STAT_FIELDS:
            scope.probe(
                name,
                lambda n=name: sum(getattr(s, n) for s in self._all_assoc_stats),
            )
        scope.probe("associations_total", lambda: len(self._all_assoc_stats))
        scope.probe(
            "associations_open",
            lambda: len({id(a) for a in self._assocs.values()}),
        )
        scope.probe("bad_vtag_drops", lambda: self.bad_vtag_drops)
        scope.probe("crc32c_drops", lambda: self.crc32c_drops)
        scope.probe("stale_cookies", lambda: self.stale_cookies)
        scope.probe("bad_signature_cookies", lambda: self.bad_signature_cookies)
        scope.probe("ootb_packets", lambda: self.ootb_packets)

    def track_assoc_stats(self, stats: AssocStats) -> None:
        """Include one association's counters in the per-host sums."""
        self._all_assoc_stats.append(stats)

    def total_stats(self) -> AssocStats:
        """Sum of every association's counters (open and closed)."""
        total = AssocStats()
        for stats in self._all_assoc_stats:
            for name in ASSOC_STAT_FIELDS:
                setattr(total, name, getattr(total, name) + getattr(stats, name))
        return total

    # -- registration -------------------------------------------------------
    def allocate_port(self) -> int:
        """Next ephemeral local port."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def next_assoc_id(self) -> int:
        """Monotonic association identifier (socket API handle)."""
        assoc_id = self._next_assoc_id
        self._next_assoc_id += 1
        return assoc_id

    def listen(self, port: int, hooks: ListenerHooks) -> None:
        """Accept INIT/COOKIE-ECHO on ``port``."""
        if port in self._listeners:
            raise OSError(f"SCTP port {port} already listening")
        self._listeners[port] = hooks

    def unlisten(self, port: int) -> None:
        """Stop accepting new associations on ``port``."""
        self._listeners.pop(port, None)

    def register_association(self, assoc: Association, peer_addrs) -> None:
        """Index an association under every known peer address."""
        for addr in peer_addrs:
            key = (assoc.local_port, addr, assoc.peer_port)
            self._assocs.setdefault(key, assoc)

    def forget(self, assoc: Association) -> None:
        """Drop all demux entries of a closed association."""
        for key in [k for k, a in self._assocs.items() if a is assoc]:
            del self._assocs[key]

    def create_association(
        self,
        peer_addr: str,
        peer_port: int,
        local_port: Optional[int] = None,
        config: Optional[SCTPConfig] = None,
    ) -> Association:
        """Client-side association (connect() must be called by the owner)."""
        lport = local_port if local_port is not None else self.allocate_port()
        assoc = Association(
            self,
            local_port=lport,
            peer_addr=peer_addr,
            peer_port=peer_port,
            config=config or self.default_config,
            assoc_id=self.next_assoc_id(),
        )
        self.register_association(assoc, [peer_addr])
        return assoc

    # -- cookies ---------------------------------------------------------------
    def _sign(self, cookie: StateCookie) -> int:
        payload = repr((self._secret,) + cookie.body()).encode()
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    def make_cookie(self, init: InitChunk, pkt: SCTPPacket, src_addr: str,
                    config: SCTPConfig) -> StateCookie:
        """Build the signed state cookie for a received INIT."""
        cookie = StateCookie(
            peer_addr=src_addr,
            peer_port=pkt.src_port,
            local_port=pkt.dst_port,
            peer_init_tag=init.init_tag,
            peer_initial_tsn=init.initial_tsn,
            peer_a_rwnd=init.a_rwnd,
            peer_addresses=tuple(init.addresses) or (src_addr,),
            my_init_tag=self.tag_rng.randrange(1, 1 << 32),
            my_initial_tsn=self.tag_rng.randrange(1, 1 << 30),
            n_out_streams=min(config.n_out_streams, init.n_in_streams),
            n_in_streams=min(config.n_in_streams, init.n_out_streams),
            created_at_ns=self.kernel.now,
            # RFC 8260 negotiation: interleave only if both sides offer it
            idata=bool(config.interleaving and init.idata),
        )
        cookie.signature = self._sign(cookie)
        return cookie

    def validate_cookie(self, cookie: StateCookie, config: SCTPConfig) -> Optional[str]:
        """Returns an error string, or None when the cookie is good."""
        unsigned = StateCookie(*cookie.body())
        if self._sign(unsigned) != cookie.signature:
            self.bad_signature_cookies += 1
            return "invalid cookie signature"
        if self.kernel.now - cookie.created_at_ns > config.cookie_lifetime_ns:
            self.stale_cookies += 1
            return "stale cookie"
        return None

    # -- packet input -------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Demultiplex one inbound SCTP packet."""
        if packet.corrupted:
            # The mandatory CRC32c over the whole packet fails; RFC 4960
            # §6.8 says discard silently (paper §3.5.2 robustness claim).
            self.crc32c_drops += 1
            packet.release()
            return
        pkt: SCTPPacket = packet.payload
        key = (pkt.dst_port, packet.src, pkt.src_port)
        assoc = self._assocs.get(key)
        if assoc is not None:
            # Every packet must carry our verification tag; anything else
            # (blind injection, packets from a dead incarnation) is dropped.
            if pkt.vtag != assoc.my_vtag:
                self.bad_vtag_drops += 1
                packet.release()
                return
            # the datagram terminates here: only the SCTP packet travels on
            src = packet.src
            packet.release()
            assoc.on_packet(pkt, src)
            return

        # no association: only handshake chunks are acceptable
        for chunk in pkt.chunks:
            if isinstance(chunk, InitChunk):
                self._on_ootb_init(chunk, pkt, packet)
                packet.release()
                return
            if isinstance(chunk, CookieEchoChunk):
                self._on_ootb_cookie_echo(chunk, pkt, packet)
                packet.release()
                return
            if isinstance(chunk, AbortChunk):
                packet.release()
                return  # never respond to an OOTB abort
        self.ootb_packets += 1
        packet.release()

    def _on_ootb_init(self, init: InitChunk, pkt: SCTPPacket, packet: Packet) -> None:
        hooks = self._listeners.get(pkt.dst_port)
        if hooks is None:
            self.ootb_packets += 1
            return
        config = hooks.config or self.default_config
        cookie = self.make_cookie(init, pkt, packet.src, config)
        # Stateless reply: no TCB is allocated until the cookie comes back.
        reply = SCTPPacket(
            src_port=pkt.dst_port,
            dst_port=pkt.src_port,
            vtag=init.init_tag,
            chunks=(
                InitAckChunk(
                    init_tag=cookie.my_init_tag,
                    a_rwnd=config.rcvbuf,
                    n_out_streams=cookie.n_out_streams,
                    n_in_streams=cookie.n_in_streams,
                    initial_tsn=cookie.my_initial_tsn,
                    cookie=cookie,
                    addresses=tuple(self.host.addresses()),
                    idata=cookie.idata,
                ),
            ),
        )
        self.host.send(
            Packet.acquire(packet.dst, packet.src, "sctp", reply, reply.wire_size())
        )

    def _on_ootb_cookie_echo(
        self, echo: CookieEchoChunk, pkt: SCTPPacket, packet: Packet
    ) -> None:
        hooks = self._listeners.get(pkt.dst_port)
        if hooks is None:
            self.ootb_packets += 1
            return
        config = hooks.config or self.default_config
        error = self.validate_cookie(echo.cookie, config)
        if error is not None:
            abort = SCTPPacket(
                src_port=pkt.dst_port,
                dst_port=pkt.src_port,
                vtag=echo.cookie.peer_init_tag,
                chunks=(AbortChunk(error),),
            )
            self.host.send(
                Packet.acquire(packet.dst, packet.src, "sctp", abort, abort.wire_size())
            )
            return
        assoc = Association.from_cookie(
            self, echo.cookie, config=config, assoc_id=self.next_assoc_id()
        )
        self.register_association(assoc, echo.cookie.peer_addresses)
        hooks.on_new_association(assoc)
        # Processing the packet answers the COOKIE-ECHO with COOKIE-ACK
        # (leg 4) and delivers any DATA bundled on leg 3.
        assoc.on_packet(pkt, packet.src)
        assoc.on_established()
