"""Per-destination path state: congestion control, RTO, reachability.

SCTP keeps a *separate* congestion window and RTT estimator per peer
transport address (paper §4.1.1, last bullet).  The cwnd arithmetic here
implements the specific behaviours the paper credits for SCTP's superior
loss recovery:

* growth counts **bytes acknowledged**, not ACKs received,
* slow start whenever ``cwnd <= ssthresh`` (boundary included),
* a sender with **one byte** of cwnd space may send a full PMTU,
* fast-retransmit halving happens once per loss event (recovery point).
"""

from __future__ import annotations

from ..base import KAME_SCTP_TIMERS, RTOEstimator, TimerPersonality

ACTIVE = "ACTIVE"
INACTIVE = "INACTIVE"


class PathState:
    """One peer destination address and its transmission state."""

    def __init__(
        self,
        addr: str,
        mtu_payload: int,
        initial_peer_rwnd: int,
        timers: TimerPersonality = KAME_SCTP_TIMERS,
        path_max_retrans: int = 5,
    ) -> None:
        self.addr = addr
        self.mtu_payload = mtu_payload  # PMTU minus headers (data budget)
        # RFC 4960 initial cwnd: min(4*MTU, max(2*MTU, 4380))
        self.cwnd = min(4 * mtu_payload, max(2 * mtu_payload, 4380))
        self.ssthresh = initial_peer_rwnd
        self.partial_bytes_acked = 0
        self.rto = RTOEstimator(timers)
        self.path_max_retrans = path_max_retrans
        self.error_count = 0
        self.state = ACTIVE
        self.outstanding_bytes = 0
        # once-per-loss-event guard for fast retransmit halving
        self.fast_recovery_exit_tsn: int | None = None
        # statistics
        self.fast_retransmits = 0
        self.timeouts = 0
        self.bytes_sent = 0
        self.failures = 0  # ACTIVE -> INACTIVE transitions

    # -- congestion window -------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        """RFC 4960 enters slow start when cwnd <= ssthresh (paper §4.1.1)."""
        return self.cwnd <= self.ssthresh

    def can_send(self) -> bool:
        """The 1-byte rule: any cwnd space at all admits a full PMTU."""
        return self.state == ACTIVE and self.outstanding_bytes < self.cwnd

    def on_bytes_acked(self, acked: int, cwnd_was_full: bool) -> None:
        """Grow cwnd per RFC 4960 §7.2.1/7.2.2 (byte counting)."""
        if acked <= 0:
            return
        if self.in_slow_start:
            if cwnd_was_full:
                self.cwnd += min(acked, self.mtu_payload)
        else:
            self.partial_bytes_acked += acked
            if self.partial_bytes_acked >= self.cwnd and cwnd_was_full:
                self.partial_bytes_acked -= self.cwnd
                self.cwnd += self.mtu_payload

    def on_fast_retransmit(self, highest_outstanding_tsn: int) -> None:
        """Halve once per loss event; further strikes in the same window
        of data do not halve again (NewReno-SCTP behaviour, [15])."""
        if (
            self.fast_recovery_exit_tsn is not None
        ):  # still recovering from a previous event
            return
        self.ssthresh = max(self.cwnd // 2, 4 * self.mtu_payload)
        self.cwnd = self.ssthresh
        self.partial_bytes_acked = 0
        self.fast_recovery_exit_tsn = highest_outstanding_tsn
        self.fast_retransmits += 1

    def on_cum_advance(self, cum_tsn: int) -> None:
        """Exit fast recovery once the loss event's data is all acked."""
        if (
            self.fast_recovery_exit_tsn is not None
            and cum_tsn >= self.fast_recovery_exit_tsn
        ):
            self.fast_recovery_exit_tsn = None

    def on_timeout(self) -> None:
        """T3-rtx expiry: collapse to one PMTU (RFC 4960 §7.2.3)."""
        self.ssthresh = max(self.cwnd // 2, 4 * self.mtu_payload)
        self.cwnd = self.mtu_payload
        self.partial_bytes_acked = 0
        self.fast_recovery_exit_tsn = None
        self.timeouts += 1

    # -- reachability --------------------------------------------------------
    def note_error(self) -> None:
        """Count a timeout/heartbeat miss; mark INACTIVE past the limit."""
        self.error_count += 1
        if self.error_count > self.path_max_retrans and self.state == ACTIVE:
            self.state = INACTIVE
            self.failures += 1

    def note_success(self) -> None:
        """Any ack/heartbeat-ack proves reachability again."""
        self.error_count = 0
        if self.state == INACTIVE:
            self.state = ACTIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Path {self.addr} {self.state} cwnd={self.cwnd} "
            f"ssthresh={self.ssthresh} out={self.outstanding_bytes} "
            f"err={self.error_count}>"
        )
