"""SCTP socket styles: one-to-many (UDP-like) and one-to-one (TCP-like).

The one-to-many socket is the heart of the paper's scalability story
(§3.1/§3.3): a *single* descriptor receives whole, framed messages from
every association; the application learns the association id and stream
number only after reading — exactly the two-level demultiplexing the
SCTP RPI performs.  No ``select()`` over N descriptors, no per-peer
socket state.

``recvmsg`` is non-blocking and returns ``None`` when nothing is queued
(the RPI's EAGAIN); ``sendmsg`` returns False when the association's send
buffer cannot take the whole message.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, Optional

from ...simkernel import Future
from ...util.blobs import Blob, ChunkList
from .association import Association, SCTPConfig
from .endpoint import ListenerHooks, SCTPEndpoint
from .streams import AssembledMessage


class MessageTooBig(ValueError):
    """Message exceeds the sctp_sendmsg limit (the send buffer size)."""


def _apply_options(
    config: SCTPConfig,
    interleaving: Optional[bool],
    scheduler: Optional[str],
) -> SCTPConfig:
    """Overlay the socket-level options onto a base config."""
    overrides = {}
    if interleaving is not None:
        overrides["interleaving"] = interleaving
    if scheduler is not None:
        overrides["scheduler"] = scheduler
    return replace(config, **overrides) if overrides else config


class ReceivedMessage:
    """What ``recvmsg`` hands the application (sctp_recvmsg's out-params)."""

    __slots__ = ("assoc_id", "stream", "ssn", "ppid", "data", "unordered")

    def __init__(self, assoc_id: int, message: AssembledMessage) -> None:
        self.assoc_id = assoc_id
        self.stream = message.sid
        self.ssn = message.ssn
        self.ppid = message.ppid
        self.data: ChunkList = message.data
        self.unordered = message.unordered

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReceivedMessage assoc={self.assoc_id} sid={self.stream} "
            f"ssn={self.ssn} {self.nbytes}B>"
        )


class OneToManySocket:
    """SOCK_SEQPACKET-style socket: one descriptor, many associations."""

    def __init__(
        self,
        endpoint: SCTPEndpoint,
        port: Optional[int] = None,
        config: Optional[SCTPConfig] = None,
        *,
        interleaving: Optional[bool] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        self.endpoint = endpoint
        self.kernel = endpoint.kernel
        self.config = _apply_options(
            config or endpoint.default_config, interleaving, scheduler
        )
        self.port = port if port is not None else endpoint.allocate_port()
        self._assocs: Dict[int, Association] = {}
        self._by_peer: Dict[tuple, int] = {}  # (addr, port) -> assoc_id
        # delivered messages in arrival order (the paper: "messages are
        # received by the application in the order they arrive")
        self._inbox: Deque[ReceivedMessage] = deque()
        self._readers: Deque[Future] = deque()
        self.closed = False
        # notification hooks
        self.on_readable: Callable[[], None] = _noop
        self.on_writable: Callable[[int], None] = _noop1
        self.on_assoc_up: Callable[[int], None] = _noop1
        self.on_assoc_down: Callable[[int, Optional[str]], None] = _noop2
        endpoint.listen(self.port, ListenerHooks(self._adopt, self.config))

    # -- association management ----------------------------------------------
    def _adopt(self, assoc: Association) -> None:
        """Install hooks on an association (inbound or locally created)."""
        self._assocs[assoc.assoc_id] = assoc
        self._by_peer[(assoc.primary_addr, assoc.peer_port)] = assoc.assoc_id
        assoc.on_message = lambda msg, a=assoc: self._deliver(a, msg)
        assoc.on_writable = lambda a=assoc: self.on_writable(a.assoc_id)
        assoc.on_established = lambda a=assoc: self.on_assoc_up(a.assoc_id)
        assoc.on_closed = lambda err, a=assoc: self._assoc_closed(a, err)

    def connect(self, peer_addr: str, peer_port: int) -> Future:
        """Explicitly set up an association; future resolves to assoc_id.

        (One-to-many sockets also connect implicitly on sendmsg, but the
        MPI middleware connects explicitly during MPI_Init — §3.4.)
        """
        existing = self._by_peer.get((peer_addr, peer_port))
        fut = Future(name=f"sctp-connect:{peer_addr}:{peer_port}")
        if existing is not None:
            fut.set_result(existing)
            return fut
        assoc = self.endpoint.create_association(
            peer_addr, peer_port, local_port=self.port, config=self.config
        )
        self._adopt(assoc)

        prev_up = self.on_assoc_up

        def once_up(assoc_id: int) -> None:
            if assoc_id == assoc.assoc_id and not fut.done():
                fut.set_result(assoc_id)
            prev_up(assoc_id)

        def once_down(assoc_id: int, err: Optional[str]) -> None:
            if assoc_id == assoc.assoc_id and not fut.done():
                fut.set_exception(ConnectionError(err or "association failed"))

        assoc.on_established = lambda: once_up(assoc.assoc_id)
        prev_closed = assoc.on_closed
        assoc.on_closed = lambda err: (once_down(assoc.assoc_id, err), prev_closed(err))[-1]
        assoc.connect()
        return fut

    def association(self, assoc_id: int) -> Association:
        """Look up an owned association by id."""
        return self._assocs[assoc_id]

    def assoc_id_for(self, peer_addr: str, peer_port: int) -> Optional[int]:
        """Reverse lookup: peer address/port -> association id."""
        return self._by_peer.get((peer_addr, peer_port))

    def _assoc_closed(self, assoc: Association, error: Optional[str]) -> None:
        self._assocs.pop(assoc.assoc_id, None)
        self._by_peer.pop((assoc.primary_addr, assoc.peer_port), None)
        self.on_assoc_down(assoc.assoc_id, error)

    # -- data ----------------------------------------------------------------------
    def sendmsg(
        self,
        assoc_id: int,
        stream: int,
        payload: Blob,
        unordered: bool = False,
        ppid: int = 0,
    ) -> bool:
        """Queue one whole message; False = would block (EAGAIN)."""
        if self.closed:
            raise OSError("socket closed")
        assoc = self._assocs[assoc_id]
        try:
            return assoc.send_message(stream, payload, unordered=unordered, ppid=ppid)
        except ValueError as err:
            raise MessageTooBig(str(err)) from err

    def sndbuf_free(self, assoc_id: int) -> int:
        """Free send-buffer space on one association."""
        return self._assocs[assoc_id].sndbuf_free()

    def recvmsg(self) -> Optional[ReceivedMessage]:
        """Next whole message in arrival order, or None (would block)."""
        if not self._inbox:
            return None
        msg = self._inbox.popleft()
        # the application has taken the data: re-open the peer's window
        assoc = self._assocs.get(msg.assoc_id)
        if assoc is not None:
            assoc.credit_receive_buffer(msg.nbytes)
        return msg

    def recvmsg_wait(self) -> Future:
        """Future resolving to the next message (for coroutine consumers)."""
        fut = Future(name="sctp-recvmsg")
        if self._inbox:
            fut.set_result(self.recvmsg())
        else:
            self._readers.append(fut)
        return fut

    @property
    def readable(self) -> bool:
        """Whether recvmsg would return a message right now."""
        return bool(self._inbox)

    def _deliver(self, assoc: Association, message: AssembledMessage) -> None:
        received = ReceivedMessage(assoc.assoc_id, message)
        while self._readers:
            fut = self._readers.popleft()
            if not fut.done():
                assoc.credit_receive_buffer(received.nbytes)
                fut.set_result(received)
                return
        self._inbox.append(received)
        self.on_readable()

    # -- teardown ---------------------------------------------------------------
    def close(self) -> None:
        """Gracefully shut down every association and stop listening."""
        self.closed = True
        self.endpoint.unlisten(self.port)
        for assoc in list(self._assocs.values()):
            assoc.close()

    def abort_all(self, reason: str = "socket aborted") -> None:
        """Hard-abort every association."""
        self.closed = True
        self.endpoint.unlisten(self.port)
        for assoc in list(self._assocs.values()):
            assoc.abort(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OneToManySocket port={self.port} assocs={len(self._assocs)}>"


class OneToOneSocket:
    """TCP-style SCTP socket: exactly one association.

    Exists because SCTP defined it for easy porting of TCP applications
    (§2.1); our tests use it to exercise associations in isolation.
    """

    def __init__(
        self,
        endpoint: SCTPEndpoint,
        config: Optional[SCTPConfig] = None,
        *,
        interleaving: Optional[bool] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        self.endpoint = endpoint
        self.config = _apply_options(
            config or endpoint.default_config, interleaving, scheduler
        )
        self.assoc: Optional[Association] = None
        self._inbox: Deque[ReceivedMessage] = deque()
        self._readers: Deque[Future] = deque()

    def connect(self, peer_addr: str, peer_port: int) -> Future:
        """Active open; future resolves to self when established."""
        assoc = self.endpoint.create_association(
            peer_addr, peer_port, config=self.config
        )
        self._install(assoc)
        fut = Future(name=f"sctp-1to1-connect:{peer_addr}")
        assoc.on_established = lambda: fut.done() or fut.set_result(self)
        prev_closed = assoc.on_closed
        assoc.on_closed = lambda err: (
            None if fut.done() else fut.set_exception(ConnectionError(err or "failed")),
            prev_closed(err),
        )[-1]
        assoc.connect()
        return fut

    def _install(self, assoc: Association) -> None:
        self.assoc = assoc
        assoc.on_message = self._deliver

    def adopt(self, assoc: Association) -> None:
        """Server side: wrap an association accepted elsewhere."""
        self._install(assoc)

    def _deliver(self, message: AssembledMessage) -> None:
        received = ReceivedMessage(self.assoc.assoc_id, message)
        while self._readers:
            fut = self._readers.popleft()
            if not fut.done():
                self.assoc.credit_receive_buffer(received.nbytes)
                fut.set_result(received)
                return
        self._inbox.append(received)

    def sendmsg(self, stream: int, payload: Blob, unordered: bool = False) -> bool:
        """Queue a message on the single association."""
        if self.assoc is None:
            raise OSError("socket not connected")
        return self.assoc.send_message(stream, payload, unordered=unordered)

    def recvmsg(self) -> Optional[ReceivedMessage]:
        """Non-blocking receive."""
        if not self._inbox:
            return None
        msg = self._inbox.popleft()
        self.assoc.credit_receive_buffer(msg.nbytes)
        return msg

    def recvmsg_wait(self) -> Future:
        """Blocking (future-based) receive."""
        fut = Future(name="sctp-1to1-recvmsg")
        if self._inbox:
            fut.set_result(self.recvmsg())
        else:
            self._readers.append(fut)
        return fut

    def close(self) -> None:
        """Graceful shutdown."""
        if self.assoc is not None:
            self.assoc.close()


def _noop() -> None:
    return None


def _noop1(_a) -> None:
    return None


def _noop2(_a, _b) -> None:
    return None
