"""SCTP chunk and packet PDUs with wire-size accounting.

Sizes follow RFC 4960: a 12-byte common header carries the ports and the
32-bit verification tag; each chunk pads to a 4-byte boundary.  The SACK
chunk's gap-ack blocks are *not* capped — unlike TCP, whose SACK option
competes for ~40 bytes of option space, SCTP gap reporting is limited only
by the PMTU (paper §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Tuple

from ...network.packet import IP_HEADER
from ...util.blobs import Blob

COMMON_HEADER = 12
DATA_CHUNK_HEADER = 16
IDATA_CHUNK_HEADER = 20  # RFC 8260 §2.1: DATA + 32-bit MID + 32-bit FSN/PPID
SACK_CHUNK_BASE = 16
CONTROL_CHUNK_BASE = 20


def _pad4(n: int) -> int:
    return (n + 3) // 4 * 4


class Chunk:
    """Base class: every chunk knows its padded wire size."""

    __slots__ = ()

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass(slots=True)
class DataChunk(Chunk):
    """One (possibly fragmentary) piece of a user message."""

    # class flag, not a field: lets the association/stream hot paths
    # branch DATA vs I-DATA without isinstance checks
    is_idata: ClassVar[bool] = False

    tsn: int
    sid: int  # stream identifier (SNo in the paper's Fig. 1)
    ssn: int  # stream sequence number
    payload: Blob
    begin: bool = True  # B bit: first fragment of the message
    end: bool = True  # E bit: last fragment
    unordered: bool = False  # U bit
    ppid: int = 0  # payload protocol identifier (§2.3's PID mapping)
    # cached: DATA wire size is queried on every bundle/budget decision
    # and on every (re)transmission, and the payload never changes
    _wire: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._wire = _pad4(DATA_CHUNK_HEADER + self.payload.nbytes)

    def wire_size(self) -> int:
        return self._wire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        frag = ("B" if self.begin else "") + ("E" if self.end else "")
        return (
            f"<DATA tsn={self.tsn} sid={self.sid} ssn={self.ssn} "
            f"len={self.payload.nbytes} {frag or 'M'}>"
        )


@dataclass(slots=True)
class IDataChunk(DataChunk):
    """RFC 8260 I-DATA: a DATA chunk whose fragments are keyed by
    (stream, Message ID, Fragment Sequence Number) instead of contiguous
    TSNs, so fragments of different user messages may interleave on the
    wire.  ``ssn`` is unused (always 0): ordered delivery follows the
    per-stream MID succession.  Subclassing ``DataChunk`` keeps every
    dispatch site (association input, delivery observers,
    ``SCTPPacket.data_chunks``) working unchanged.
    """

    is_idata: ClassVar[bool] = True

    mid: int = 0  # 32-bit per-stream message identifier
    fsn: int = 0  # fragment sequence number; 0 on the B fragment

    def __post_init__(self) -> None:
        self._wire = _pad4(IDATA_CHUNK_HEADER + self.payload.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        frag = ("B" if self.begin else "") + ("E" if self.end else "")
        return (
            f"<I-DATA tsn={self.tsn} sid={self.sid} mid={self.mid} "
            f"fsn={self.fsn} len={self.payload.nbytes} {frag or 'M'}>"
        )


@dataclass(slots=True)
class IForwardTsnChunk(Chunk):
    """RFC 8260 §2.3 I-FORWARD-TSN.

    Wire format reserved for partial reliability (PR-SCTP) over I-DATA:
    each skip entry abandons one (stream, MID) up to the new cumulative
    TSN.  Nothing emits it yet — it exists so the chunk registry covers
    the full RFC 8260 surface and PR-SCTP can land without wire changes.
    """

    new_cum_tsn: int
    # (sid, unordered-flag, mid) per abandoned message
    skips: Tuple[Tuple[int, int, int], ...] = ()

    def wire_size(self) -> int:
        return _pad4(8 + 8 * len(self.skips))


@dataclass(slots=True)
class SackChunk(Chunk):
    """Selective acknowledgement: cumulative TSN + gap-ack blocks."""

    cum_tsn: int
    a_rwnd: int
    # gap blocks as (start, end) offsets relative to cum_tsn, RFC-style:
    # block (s, e) acknowledges TSNs cum_tsn+s .. cum_tsn+e inclusive.
    gaps: Tuple[Tuple[int, int], ...] = ()
    n_dup_tsns: int = 0

    def wire_size(self) -> int:
        return _pad4(SACK_CHUNK_BASE + 4 * len(self.gaps) + 4 * min(self.n_dup_tsns, 16))

    def acked_tsns(self) -> set:
        """Expand the gap blocks into the set of gap-acked TSNs."""
        out = set()
        for start, end in self.gaps:
            out.update(range(self.cum_tsn + start, self.cum_tsn + end + 1))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SACK cum={self.cum_tsn} rwnd={self.a_rwnd} gaps={list(self.gaps)}>"


@dataclass(slots=True)
class InitChunk(Chunk):
    """Association initiation (leg 1 of the four-way handshake)."""

    init_tag: int  # the tag the peer must put in every packet to us
    a_rwnd: int
    n_out_streams: int
    n_in_streams: int
    initial_tsn: int
    addresses: Tuple[str, ...] = ()  # multihoming: all our bound addresses
    # RFC 8260 §2.2.1: "I can receive I-DATA" capability flag.  Rides in
    # the (padded) parameter space, so the wire size is unchanged.
    idata: bool = False

    def wire_size(self) -> int:
        return _pad4(CONTROL_CHUNK_BASE + 8 * len(self.addresses))


@dataclass(slots=True)
class StateCookie:
    """Everything the server needs to build the TCB, signed and dated.

    Carried opaquely inside INIT-ACK/COOKIE-ECHO so the server keeps *no*
    state for unverified peers (SYN-flood protection, paper §3.5.2).
    """

    peer_addr: str
    peer_port: int
    local_port: int
    peer_init_tag: int
    peer_initial_tsn: int
    peer_a_rwnd: int
    peer_addresses: Tuple[str, ...]
    my_init_tag: int
    my_initial_tsn: int
    n_out_streams: int
    n_in_streams: int
    created_at_ns: int
    # negotiated RFC 8260 interleaving result (both sides offered I-DATA);
    # signed like the rest of the body so a peer cannot flip it in flight
    idata: bool = False
    signature: int = 0

    def body(self) -> Tuple:
        return (
            self.peer_addr,
            self.peer_port,
            self.local_port,
            self.peer_init_tag,
            self.peer_initial_tsn,
            self.peer_a_rwnd,
            self.peer_addresses,
            self.my_init_tag,
            self.my_initial_tsn,
            self.n_out_streams,
            self.n_in_streams,
            self.created_at_ns,
            self.idata,
        )

    SIZE = 120  # approximate serialized cookie size on the wire


@dataclass(slots=True)
class InitAckChunk(Chunk):
    """Leg 2: mirror of INIT plus the signed state cookie."""

    init_tag: int
    a_rwnd: int
    n_out_streams: int
    n_in_streams: int
    initial_tsn: int
    cookie: StateCookie = None
    addresses: Tuple[str, ...] = ()
    # echo of the negotiated I-DATA result (see InitChunk.idata)
    idata: bool = False

    def wire_size(self) -> int:
        return _pad4(CONTROL_CHUNK_BASE + 8 * len(self.addresses) + StateCookie.SIZE)


@dataclass(slots=True)
class CookieEchoChunk(Chunk):
    """Leg 3: the client echoes the cookie (may bundle DATA after it)."""

    cookie: StateCookie

    def wire_size(self) -> int:
        return _pad4(4 + StateCookie.SIZE)


@dataclass(slots=True)
class CookieAckChunk(Chunk):
    """Leg 4: association fully up (may bundle DATA)."""

    def wire_size(self) -> int:
        return 4


@dataclass(slots=True)
class HeartbeatChunk(Chunk):
    """Path probe; ``info`` is opaque and echoed back."""

    dest_addr: str
    sent_at_ns: int
    nonce: int

    def wire_size(self) -> int:
        return _pad4(4 + 24)


@dataclass(slots=True)
class HeartbeatAckChunk(Chunk):
    """Echo of a HEARTBEAT's info."""

    dest_addr: str
    sent_at_ns: int
    nonce: int

    def wire_size(self) -> int:
        return _pad4(4 + 24)


@dataclass(slots=True)
class ShutdownChunk(Chunk):
    """Graceful close (SCTP has no half-closed state, §3.5.2)."""

    cum_tsn: int

    def wire_size(self) -> int:
        return 8


@dataclass(slots=True)
class ShutdownAckChunk(Chunk):
    def wire_size(self) -> int:
        return 4


@dataclass(slots=True)
class ShutdownCompleteChunk(Chunk):
    def wire_size(self) -> int:
        return 4


@dataclass(slots=True)
class AbortChunk(Chunk):
    """Immediate teardown (also sent for stale/invalid cookies)."""

    reason: str = ""

    def wire_size(self) -> int:
        return _pad4(4 + len(self.reason))


@dataclass(slots=True)
class SCTPPacket:
    """Common header + bundled chunks = one IP datagram."""

    src_port: int
    dst_port: int
    vtag: int  # verification tag: peer's init_tag (0 only on INIT)
    chunks: Tuple[Chunk, ...]

    def wire_size(self) -> int:
        return IP_HEADER + COMMON_HEADER + sum(c.wire_size() for c in self.chunks)

    def data_chunks(self) -> Tuple[DataChunk, ...]:
        return tuple(c for c in self.chunks if isinstance(c, DataChunk))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(c).__name__.replace("Chunk", "") for c in self.chunks)
        return f"<SCTP {self.src_port}->{self.dst_port} vtag={self.vtag} [{kinds}]>"
