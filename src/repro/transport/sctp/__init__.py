"""From-scratch SCTP (RFC 2960/4960, KAME personality).

Everything the paper relies on is here:

* four-way handshake with a signed, time-limited state cookie (no server
  state until COOKIE-ECHO — SYN-flood immunity, §3.5.2),
* verification tags on every packet (blind-injection/reset protection),
* message orientation with fragmentation (B/E bits) and bundling,
* multistreaming: TSN transmission sequencing + per-stream SSN ordering,
  so streams deliver independently (the paper's HOL-blocking cure),
* SACK with *unlimited* gap-ack blocks (vs TCP's 3), delayed-SACK rules,
* byte-counted congestion control with the full-PMTU-on-1-byte rule and
  slow start entered whenever cwnd <= ssthresh (§4.1.1's list),
* multihoming: per-destination cwnd/RTO, heartbeats, failover, and
  retransmissions directed to an alternate active path,
* one-to-one and one-to-many socket styles, autoclose, and no half-close,
* RFC 8260 user-message interleaving (I-DATA chunks, MID/FSN reassembly)
  negotiated at association setup, with pluggable stream schedulers
  (fcfs/rr/wfq/prio) deciding which stream's message transmits next.
"""

from .association import Association, SCTPConfig
from .chunks import (
    AbortChunk,
    CookieAckChunk,
    CookieEchoChunk,
    DataChunk,
    HeartbeatAckChunk,
    HeartbeatChunk,
    IDataChunk,
    IForwardTsnChunk,
    InitAckChunk,
    InitChunk,
    SackChunk,
    SCTPPacket,
    ShutdownAckChunk,
    ShutdownChunk,
    ShutdownCompleteChunk,
)
from .endpoint import SCTPEndpoint
from .interleave import InterleavedReassembly, OutboundInterleave
from .sched import (
    SCHEDULER_NAMES,
    FCFSScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    StreamScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from .socket import MessageTooBig, OneToManySocket, OneToOneSocket, ReceivedMessage

__all__ = [
    "AbortChunk",
    "Association",
    "CookieAckChunk",
    "CookieEchoChunk",
    "DataChunk",
    "FCFSScheduler",
    "HeartbeatAckChunk",
    "HeartbeatChunk",
    "IDataChunk",
    "IForwardTsnChunk",
    "InitAckChunk",
    "InitChunk",
    "InterleavedReassembly",
    "MessageTooBig",
    "OneToManySocket",
    "OneToOneSocket",
    "OutboundInterleave",
    "PriorityScheduler",
    "ReceivedMessage",
    "RoundRobinScheduler",
    "SackChunk",
    "SCHEDULER_NAMES",
    "SCTPConfig",
    "SCTPEndpoint",
    "SCTPPacket",
    "ShutdownAckChunk",
    "ShutdownChunk",
    "ShutdownCompleteChunk",
    "StreamScheduler",
    "WeightedFairScheduler",
    "make_scheduler",
]
