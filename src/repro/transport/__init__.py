"""Transport protocols implemented from scratch at packet level.

* :mod:`repro.transport.tcp` — a FreeBSD-5.3-flavoured TCP: 3-way
  handshake, byte-stream sequencing, cumulative ACK + 3-block SACK,
  NewReno congestion control, BSD coarse-grained retransmission timers,
  delayed ACKs, advertised-window flow control, optional Nagle.
* :mod:`repro.transport.sctp` — an RFC 2960/4960 + KAME-flavoured SCTP:
  4-way cookie handshake, verification tags, multistreaming (TSN/SSN/SNo),
  fragmentation + bundling, unlimited-gap SACK, byte-counted congestion
  control, multihoming with heartbeats and failover, one-to-one and
  one-to-many socket styles.

Both register as protocol handlers on :class:`repro.network.Host` objects
and expose non-blocking socket APIs the MPI middleware's RPI modules use.
"""

from .base import RTOEstimator

__all__ = ["RTOEstimator"]
