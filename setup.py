"""Legacy setup shim: this environment has setuptools but no `wheel`,
so PEP-660 editable installs fail; `pip install -e .` uses this path."""
from setuptools import setup

setup()
