"""RPI-module specifics: mesh init, stream mapping, demux, select usage."""

import pytest

from repro.core import run_app
from repro.core.world import World, WorldConfig

LIMIT = 300_000_000_000


async def _noop_app(comm):
    await comm.barrier()
    return comm.rank


# ---------------------------------------------------------------------------
# TCP RPI
# ---------------------------------------------------------------------------
def test_tcp_rpi_builds_full_mesh():
    world = World(WorldConfig(n_procs=5, rpi="tcp", seed=1))

    async def app(comm):
        # check inside the app: finalize retires sockets afterwards
        return set(comm.rpi._sock_by_rank)

    result = world.run(app, limit_ns=LIMIT)
    for rank, socks in enumerate(result.results):
        # one socket per peer: the paper's N-1 descriptors per process
        assert socks == set(range(5)) - {rank}


def test_tcp_rpi_uses_select():
    world = World(WorldConfig(n_procs=3, rpi="tcp", seed=1))

    async def app(comm):
        if comm.rank == 0:
            await comm.send("x", dest=1, tag=0)
        elif comm.rank == 1:
            await comm.recv(source=0, tag=0)
        await comm.barrier()
        return comm.rpi.selector.calls

    result = world.run(app, limit_ns=LIMIT)
    assert all(calls > 0 for calls in result.results)


def test_sctp_rpi_single_socket_many_assocs():
    world = World(WorldConfig(n_procs=5, rpi="sctp", seed=1))
    world.run(_noop_app, limit_ns=LIMIT)
    for proc in world.processes:
        rpi = proc.rpi
        # one one-to-many socket; associations mapped to every peer rank
        assert set(rpi._assoc_by_rank) == set(range(5)) - {proc.rank}
        assert len(rpi.sock._assocs) == 4


# ---------------------------------------------------------------------------
# SCTP RPI stream mapping (§3.2.1)
# ---------------------------------------------------------------------------
def test_stream_mapping_spreads_tags():
    world = World(WorldConfig(n_procs=2, rpi="sctp", seed=1, num_streams=10))
    rpi = world.processes[0].rpi
    streams = {rpi.stream_for(context=0, tag=t) for t in range(10)}
    assert len(streams) == 10  # ten tags -> ten distinct streams
    assert all(0 <= s < 10 for s in streams)


def test_stream_mapping_same_trc_same_stream():
    world = World(WorldConfig(n_procs=2, rpi="sctp", seed=1))
    rpi = world.processes[0].rpi
    assert rpi.stream_for(0, 5) == rpi.stream_for(0, 5)
    # different contexts may differ even at equal tags
    assert rpi.stream_for(1, 5) in range(10)


def test_single_stream_ablation_module():
    world = World(WorldConfig(n_procs=2, rpi="sctp", seed=1, num_streams=1))
    rpi = world.processes[0].rpi
    assert all(rpi.stream_for(c, t) == 0 for c in range(3) for t in range(20))


def test_invalid_stream_count_rejected():
    with pytest.raises(ValueError):
        World(WorldConfig(n_procs=2, rpi="sctp", seed=1, num_streams=0))


def test_unknown_rpi_rejected():
    with pytest.raises(ValueError):
        World(WorldConfig(n_procs=2, rpi="carrier-pigeon"))


# ---------------------------------------------------------------------------
# world-level behaviour
# ---------------------------------------------------------------------------
def test_world_determinism():
    async def app(comm):
        if comm.rank == 0:
            await comm.send(b"d" * 50_000, dest=1, tag=0)
            return None
        blob = await comm.recv(source=0, tag=0)
        return comm.process.kernel.now

    times = [
        run_app(app, n_procs=2, rpi="sctp", seed=7, loss_rate=0.02, limit_ns=LIMIT).results[1]
        for _ in range(2)
    ]
    assert times[0] == times[1]  # same seed -> bit-identical virtual time


def test_world_different_seeds_differ_under_loss():
    async def app(comm):
        if comm.rank == 0:
            await comm.send(b"d" * 100_000, dest=1, tag=0)
            return None
        await comm.recv(source=0, tag=0)
        return comm.process.kernel.now

    t1 = run_app(app, n_procs=2, rpi="sctp", seed=1, loss_rate=0.05, limit_ns=LIMIT).results[1]
    t2 = run_app(app, n_procs=2, rpi="sctp", seed=2, loss_rate=0.05, limit_ns=LIMIT).results[1]
    assert t1 != t2


def test_compute_advances_virtual_time_only():
    async def app(comm):
        start = comm.process.kernel.now
        await comm.compute(0.25)
        return comm.process.kernel.now - start

    r = run_app(app, n_procs=2, rpi="sctp", seed=1, limit_ns=LIMIT)
    # compute may queue briefly behind middleware work on the same CPU
    assert all(250_000_000 <= el < 260_000_000 for el in r.results)


def test_run_app_rejects_config_plus_overrides():
    with pytest.raises(ValueError):
        run_app(_noop_app, config=WorldConfig(), n_procs=2)


def test_world_result_reports_duration():
    r = run_app(_noop_app, n_procs=2, rpi="tcp", seed=1, limit_ns=LIMIT)
    assert r.duration_ns >= 0
    assert r.total_ns >= r.duration_ns
    assert r.duration_s == r.duration_ns / 1e9
