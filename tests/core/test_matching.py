"""Message matching: posted receives, unexpected table, MPI ordering."""

from hypothesis import given, settings, strategies as st

from repro.core.constants import ANY_SOURCE, ANY_TAG, FLAG_SHORT
from repro.core.envelope import Envelope
from repro.core.matching import PostedReceiveQueue, UnexpectedMessageTable
from repro.core.request import RecvRequest
from repro.util.blobs import ChunkList, RealBlob


def env(tag=0, context=0, rank=0, length=0, seqnum=0):
    return Envelope(length, tag, context, rank, FLAG_SHORT, seqnum)


def recv(source=ANY_SOURCE, tag=ANY_TAG, context=0):
    return RecvRequest(owner_rank=0, source=source, tag=tag, context=context)


def body(data=b"x"):
    return ChunkList([RealBlob(data)])


# ---------------------------------------------------------------------------
# matching rules
# ---------------------------------------------------------------------------
def test_exact_match():
    r = recv(source=2, tag=5, context=1)
    assert r.matches(5, 1, 2)
    assert not r.matches(6, 1, 2)  # wrong tag
    assert not r.matches(5, 2, 2)  # wrong context
    assert not r.matches(5, 1, 3)  # wrong source


def test_wildcards():
    assert recv(source=ANY_SOURCE, tag=5).matches(5, 0, 7)
    assert recv(source=2, tag=ANY_TAG).matches(99, 0, 2)
    assert recv().matches(1, 0, 1)
    # context is never a wildcard
    assert not recv(context=0).matches(1, 1, 1)


# ---------------------------------------------------------------------------
# posted-receive queue
# ---------------------------------------------------------------------------
def test_posted_queue_matches_in_post_order():
    q = PostedReceiveQueue()
    r1, r2 = recv(tag=ANY_TAG), recv(tag=ANY_TAG)
    q.add(r1)
    q.add(r2)
    assert q.match_and_remove(env(tag=3)) is r1  # earliest posted wins
    assert q.match_and_remove(env(tag=3)) is r2
    assert q.match_and_remove(env(tag=3)) is None


def test_posted_queue_skips_non_matching():
    q = PostedReceiveQueue()
    specific = recv(source=5, tag=1)
    wildcard = recv()
    q.add(specific)
    q.add(wildcard)
    # message from rank 2: the specific recv doesn't match, wildcard does
    assert q.match_and_remove(env(tag=1, rank=2)) is wildcard
    assert len(q) == 1


def test_posted_queue_remove():
    q = PostedReceiveQueue()
    r = recv()
    q.add(r)
    q.remove(r)
    assert q.match_and_remove(env()) is None
    q.remove(r)  # idempotent


# ---------------------------------------------------------------------------
# unexpected-message table
# ---------------------------------------------------------------------------
def test_unexpected_fifo_per_trc():
    t = UnexpectedMessageTable()
    t.add(env(tag=1, rank=0, seqnum=1), body(b"first"))
    t.add(env(tag=1, rank=0, seqnum=2), body(b"second"))
    m1 = t.match_and_remove(recv(source=0, tag=1))
    m2 = t.match_and_remove(recv(source=0, tag=1))
    assert m1.body.to_bytes() == b"first"
    assert m2.body.to_bytes() == b"second"


def test_unexpected_wildcard_takes_earliest_arrival():
    t = UnexpectedMessageTable()
    t.add(env(tag=7, rank=3), body(b"later-tag-earlier?"))
    t.add(env(tag=2, rank=1), body(b"second-arrival"))
    # wildcard receive: the first-arrived message wins, regardless of bucket
    m = t.match_and_remove(recv())
    assert m.envelope.tag == 7 and m.envelope.rank == 3


def test_unexpected_no_match_leaves_table():
    t = UnexpectedMessageTable()
    t.add(env(tag=1, rank=0), body())
    assert t.match_and_remove(recv(source=5)) is None
    assert len(t) == 1


def test_buffered_bytes_accounting():
    t = UnexpectedMessageTable()
    t.add(env(tag=1), body(b"12345"))
    t.add(env(tag=2), None)  # rendezvous envelope: no body buffered
    assert t.buffered_bytes == 5
    t.match_and_remove(recv(tag=1))
    assert t.buffered_bytes == 0
    assert t.max_buffered_bytes == 5


def test_peek_match_for_probe():
    t = UnexpectedMessageTable()
    assert t.peek_match(ANY_SOURCE, ANY_TAG, 0) is None
    t.add(env(tag=4, rank=2, length=10), body(b"0123456789"))
    peeked = t.peek_match(ANY_SOURCE, ANY_TAG, 0)
    assert peeked.tag == 4 and peeked.rank == 2 and peeked.length == 10
    assert len(t) == 1  # peek does not consume


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_same_trc_messages_never_overtake(data):
    """Property (MPI non-overtaking): for messages sharing a TRC, any mix
    of posted receives and unexpected buffering yields them in send order."""
    n = data.draw(st.integers(1, 8))
    tag = data.draw(st.integers(0, 2))
    src = data.draw(st.integers(0, 2))
    t = UnexpectedMessageTable()
    for seq in range(n):
        t.add(env(tag=tag, rank=src, seqnum=seq), body(bytes([seq])))
    got = []
    for _ in range(n):
        use_wildcard = data.draw(st.booleans())
        r = recv() if use_wildcard else recv(source=src, tag=tag)
        m = t.match_and_remove(r)
        got.append(m.envelope.seqnum)
    assert got == sorted(got)
