"""Progression-engine protocol behaviour: eager/rendezvous, unexpected
messages, the long-message race (§3.4), engine statistics."""

import pytest

from repro.core import EAGER_LIMIT, run_app
from repro.core.world import World, WorldConfig
from repro.util.blobs import SyntheticBlob

LIMIT = 300_000_000_000
BOTH = pytest.mark.parametrize("rpi", ["tcp", "sctp"])


@BOTH
def test_eager_vs_rendezvous_protocol_choice(rpi):
    async def app(comm):
        if comm.rank == 0:
            await comm.send(SyntheticBlob(EAGER_LIMIT), dest=1, tag=1)  # eager
            await comm.send(SyntheticBlob(EAGER_LIMIT + 1), dest=1, tag=2)  # rndv
            # snapshot before the finalize barrier adds collective traffic
            return (comm.rpi.stats.eager_sends, comm.rpi.stats.rendezvous_sends)
        await comm.recv(source=0, tag=1)
        await comm.recv(source=0, tag=2)
        return None

    world = World(WorldConfig(n_procs=2, rpi=rpi, seed=1))
    result = world.run(app, limit_ns=LIMIT)
    eager, rndv = result.results[0]
    assert eager == 1
    assert rndv == 1


@BOTH
def test_unexpected_messages_buffered_and_matched(rpi):
    async def app(comm):
        kernel = comm.process.kernel
        if comm.rank == 0:
            for t in range(5):
                await comm.send(t, dest=1, tag=t)
            return None
        await kernel.sleep(30_000_000)  # all five arrive while we sleep
        # LAM-like middleware progresses only inside MPI calls: the first
        # recv pumps everything; tag 0 matches it, tags 1-4 are unexpected
        values = [await comm.recv(source=0, tag=t) for t in range(5)]
        return (values, comm.rpi.stats.unexpected_messages)

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    values, unexpected = r.results[1]
    assert values == list(range(5))
    assert unexpected >= 4  # tags 1-4 were buffered in the hash table


@BOTH
def test_unexpected_rendezvous_held_without_body(rpi):
    """A long message posted before the receive leaves only its envelope
    at the receiver; the 300 KB body must not travel until matched."""

    async def app(comm):
        kernel = comm.process.kernel
        if comm.rank == 0:
            req = comm.isend(SyntheticBlob(300_000), dest=1, tag=8)
            await kernel.sleep(20_000_000)
            mid_bytes = comm.rpi.stats.bytes_sent  # before the recv posts
            await comm.wait(req)
            return mid_bytes
        await kernel.sleep(50_000_000)
        blob = await comm.recv(source=0, tag=8)
        return blob.nbytes

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    bytes_before_match, received = r.results
    assert received == 300_000
    assert bytes_before_match < 10_000  # only envelopes/acks had moved


@BOTH
def test_simultaneous_long_exchange_same_tag(rpi):
    """The paper's §3.4 race: both processes send each other long messages
    with the SAME tag (= same SCTP stream) at the same time.  Option B
    must keep the ACK from interleaving into the body."""

    async def app(comm):
        peer = 1 - comm.rank
        send = comm.isend(SyntheticBlob(250_000), dest=peer, tag=6)
        recv = comm.irecv(source=peer, tag=6)
        await comm.waitall([send, recv])
        return recv.data.nbytes

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results == [250_000, 250_000]


@BOTH
def test_many_interleaved_longs_and_shorts(rpi):
    async def app(comm):
        peer = 1 - comm.rank
        reqs = []
        sizes = [100, 100_000, 50, 200_000, 1_000, 70_000]
        for i, size in enumerate(sizes):
            reqs.append(comm.isend(SyntheticBlob(size), dest=peer, tag=i))
            reqs.append(comm.irecv(source=peer, tag=i))
        await comm.waitall(reqs)
        got = sorted(r.data.nbytes for r in reqs if r.kind == "recv")
        return got == sorted(sizes)

    r = run_app(app, n_procs=2, rpi=rpi, seed=2, limit_ns=LIMIT)
    assert all(r.results)


def test_sctp_option_b_no_interleave_on_stream():
    """While the head unit of a (rank, stream) queue is mid-transmission,
    the next unit must not start (Option B, §3.4.2) — but other streams
    keep flowing."""
    from repro.core.envelope import Envelope
    from repro.core.constants import FLAG_SHORT
    from repro.core.world import World, WorldConfig
    from repro.transport.sctp import SCTPConfig

    # a tiny association send buffer forces EAGAIN mid-unit
    cfg = WorldConfig(n_procs=2, rpi="sctp", seed=1)
    world = World(cfg)

    async def app(comm):
        if comm.rank != 0:
            a = await comm.recv(source=0, tag=3)
            b = await comm.recv(source=0, tag=3)
            c = await comm.recv(source=0, tag=4)
            return (a.nbytes, b.nbytes, c.nbytes)
        rpi = comm.rpi
        # two units on one stream, one on another
        r1 = comm.isend(SyntheticBlob(400_000), dest=1, tag=3)
        r2 = comm.isend(SyntheticBlob(400_000), dest=1, tag=3)
        r3 = comm.isend(SyntheticBlob(1_000), dest=1, tag=4)
        # the first 400 KB unit cannot fit the 220 KB sndbuf: queue state
        # must show the same-stream queue with a parked second unit whose
        # transmission has not begun
        same_stream = [q for k, q in rpi._outq.items() if len(q) >= 1]
        for q in same_stream:
            for unit in list(q)[1:]:
                assert not unit.env_sent  # Option B: strictly FIFO
        await comm.waitall([r1, r2, r3])
        return True

    result = world.run(app, limit_ns=LIMIT)
    assert result.results[0] is True
    assert result.results[1] == (400_000, 400_000, 1_000)


@BOTH
def test_engine_counts_units_and_bytes(rpi):
    async def app(comm):
        if comm.rank == 0:
            await comm.send(b"x" * 1000, dest=1, tag=0)
            return comm.rpi.stats
        await comm.recv(source=0, tag=0)
        return comm.rpi.stats

    world = World(WorldConfig(n_procs=2, rpi=rpi, seed=1))
    res = world.run(app, limit_ns=LIMIT)
    sender, receiver = res.results
    assert sender.units_sent >= 1
    assert receiver.units_received >= 1
    assert receiver.bytes_received >= 1000
