"""Communicator API over both RPIs: point-to-point semantics."""

import pytest

from repro.core import ANY_SOURCE, ANY_TAG, run_app
from repro.core.request import Status
from repro.util.blobs import SyntheticBlob

BOTH_RPIS = pytest.mark.parametrize("rpi", ["tcp", "sctp"])
LIMIT = 120_000_000_000


@BOTH_RPIS
def test_blocking_send_recv(rpi):
    async def app(comm):
        if comm.rank == 0:
            await comm.send([1, 2, 3], dest=1, tag=9)
            return None
        return await comm.recv(source=0, tag=9)

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[1] == [1, 2, 3]


@BOTH_RPIS
def test_nonblocking_requests_and_test(rpi):
    async def app(comm):
        if comm.rank == 0:
            req = comm.isend("payload", dest=1, tag=1)
            await comm.wait(req)
            return req.done
        req = comm.irecv(source=0, tag=1)
        polls = 0
        while not comm.test(req):
            polls += 1
            await comm.process.kernel.sleep(10_000)
        return (req.data, req.done)

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[1] == ("payload", True)


@BOTH_RPIS
def test_message_order_same_trc(rpi):
    async def app(comm):
        n = 20
        if comm.rank == 0:
            for i in range(n):
                await comm.send(i, dest=1, tag=4)
            return None
        return [await comm.recv(source=0, tag=4) for _ in range(n)]

    r = run_app(app, n_procs=2, rpi=rpi, seed=2, limit_ns=LIMIT)
    assert r.results[1] == list(range(20))


@BOTH_RPIS
def test_wildcard_source_and_tag_with_status(rpi):
    async def app(comm):
        if comm.rank == 0:
            st = Status()
            values = []
            for _ in range(2):
                values.append((await comm.recv(ANY_SOURCE, ANY_TAG, status=st), st.source, st.tag))
            return sorted(values, key=lambda v: v[1])
        await comm.send(f"from{comm.rank}", dest=0, tag=comm.rank * 10)
        return None

    r = run_app(app, n_procs=3, rpi=rpi, seed=3, limit_ns=LIMIT)
    assert r.results[0] == [("from1", 1, 10), ("from2", 2, 20)]


@BOTH_RPIS
def test_waitany_and_waitall(rpi):
    async def app(comm):
        if comm.rank == 0:
            reqs = [comm.irecv(source=1, tag=t) for t in (1, 2, 3)]
            idx, req = await comm.waitany(reqs)
            await comm.waitall(reqs)
            return sorted(r.data for r in reqs)
        for t in (3, 2, 1):
            await comm.send(t * 100, dest=0, tag=t)
        return None

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[0] == [100, 200, 300]


@BOTH_RPIS
def test_ssend_completes_only_when_matched(rpi):
    async def app(comm):
        kernel = comm.process.kernel
        if comm.rank == 0:
            req = comm.issend("sync-payload", dest=1, tag=7)
            await comm.wait(req)
            return kernel.now  # completion time of the synchronous send
        await kernel.sleep(40_000_000)  # receiver posts late, at t=40 ms
        post_time = kernel.now
        value = await comm.recv(source=0, tag=7)
        assert value == "sync-payload"
        return post_time

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    ssend_done, recv_posted = r.results
    assert ssend_done >= recv_posted  # not complete before it was matched


@BOTH_RPIS
def test_standard_eager_send_completes_before_match(rpi):
    async def app(comm):
        kernel = comm.process.kernel
        if comm.rank == 0:
            req = comm.isend("eager", dest=1, tag=7)
            await comm.wait(req)
            return kernel.now
        await kernel.sleep(40_000_000)
        post_time = kernel.now
        await comm.recv(source=0, tag=7)
        return post_time

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    send_done, recv_posted = r.results
    assert send_done < recv_posted  # eager: buffered at the receiver


@BOTH_RPIS
def test_long_message_rendezvous(rpi):
    async def app(comm):
        if comm.rank == 0:
            await comm.send(SyntheticBlob(200_000), dest=1, tag=2)
            return None
        blob = await comm.recv(source=0, tag=2)
        return blob.nbytes

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[1] == 200_000
    # the engine must have used the rendezvous protocol
    # (checked via stats on rank 0)


@BOTH_RPIS
def test_probe_and_iprobe(rpi):
    async def app(comm):
        if comm.rank == 0:
            assert comm.iprobe() is None
            status = await comm.probe(source=1, tag=ANY_TAG)
            assert (status.source, status.tag) == (1, 13)
            again = comm.iprobe(source=1, tag=13)
            assert again is not None  # probe does not consume
            value = await comm.recv(source=status.source, tag=status.tag)
            assert comm.iprobe() is None  # now consumed
            return value
        await comm.send("probed", dest=0, tag=13)
        return None

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[0] == "probed"


@BOTH_RPIS
def test_comm_dup_isolates_contexts(rpi):
    async def app(comm):
        comm2 = comm.dup()
        if comm.rank == 0:
            # same (dest, tag) on both communicators: contexts keep them apart
            await comm2.send("on-dup", dest=1, tag=5)
            await comm.send("on-world", dest=1, tag=5)
            return None
        world_msg = await comm.recv(source=0, tag=5)
        dup_msg = await comm2.recv(source=0, tag=5)
        return (world_msg, dup_msg)

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[1] == ("on-world", "on-dup")


def test_argument_validation():
    async def app(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError):
                comm.isend(b"", dest=9, tag=0)  # bad rank
            with pytest.raises(ValueError):
                comm.isend(b"", dest=0, tag=0)  # self-send
            with pytest.raises(ValueError):
                comm.isend(b"", dest=1, tag=-3)  # negative tag
            with pytest.raises(ValueError):
                await comm.waitany([])
        await comm.barrier()
        return True

    r = run_app(app, n_procs=2, rpi="sctp", seed=1, limit_ns=LIMIT)
    assert all(r.results)


@BOTH_RPIS
def test_sendrecv_exchanges_without_deadlock(rpi):
    async def app(comm):
        peer = 1 - comm.rank
        st = Status()
        got = await comm.sendrecv(
            f"from{comm.rank}", dest=peer, sendtag=3, source=peer, recvtag=3,
            status=st,
        )
        return (got, st.source)

    r = run_app(app, n_procs=2, rpi=rpi, seed=1, limit_ns=LIMIT)
    assert r.results[0] == ("from1", 1)
    assert r.results[1] == ("from0", 0)


@BOTH_RPIS
def test_comm_split_even_odd(rpi):
    async def app(comm):
        sub = await comm.split(color=comm.rank % 2, key=comm.rank)
        total = await sub.allreduce(comm.rank)
        members = await sub.allgather(comm.rank)
        return (sub.rank, sub.size, total, members)

    r = run_app(app, n_procs=6, rpi=rpi, seed=1, limit_ns=LIMIT)
    evens, odds = [0, 2, 4], [1, 3, 5]
    for world_rank, (sub_rank, sub_size, total, members) in enumerate(r.results):
        group = evens if world_rank % 2 == 0 else odds
        assert sub_size == 3
        assert sub_rank == group.index(world_rank)
        assert total == sum(group)
        assert members == group


def test_comm_split_undefined_color():
    async def app(comm):
        sub = await comm.split(color=-1 if comm.rank == 0 else 0)
        if comm.rank == 0:
            assert sub is None
            return "excluded"
        return await sub.allgather(comm.rank)

    r = run_app(app, n_procs=3, rpi="sctp", seed=1, limit_ns=LIMIT)
    assert r.results[0] == "excluded"
    assert r.results[1] == [1, 2]


def test_sub_communicator_point_to_point():
    async def app(comm):
        sub = await comm.split(color=0 if comm.rank >= 1 else 1)
        if comm.rank == 0:
            return None
        # inside sub: local ranks 0..1 map to world ranks 1..2
        if sub.rank == 0:
            await sub.send("sub-hello", dest=1, tag=2)
            return None
        st = Status()
        msg = await sub.recv(source=0, tag=2, status=st)
        return (msg, st.source)

    r = run_app(app, n_procs=3, rpi="sctp", seed=1, limit_ns=LIMIT)
    assert r.results[2] == ("sub-hello", 0)  # status reports the LOCAL rank
