"""Multihoming at the MPI level: an application survives path failure."""

from repro.core.world import World, WorldConfig
from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig

LIMIT = 600_000_000_000


def test_mpi_app_survives_primary_path_failure():
    config = WorldConfig(
        n_procs=2,
        rpi="sctp",
        n_paths=2,
        seed=4,
        sctp_config=SCTPConfig(path_max_retrans=1, heartbeat_interval_ns=2 * SECOND),
    )
    world = World(config)

    async def app(comm):
        peer = 1 - comm.rank
        for _ in range(12):
            if comm.rank == 0:
                await comm.send(b"x" * 20_000, dest=peer, tag=1)
                await comm.recv(source=peer, tag=2)
            else:
                await comm.recv(source=peer, tag=1)
                await comm.send(b"y" * 20_000, dest=peer, tag=2)
        return True

    world.kernel.call_after(2_000_000, world.cluster.fail_path, 0)
    result = world.run(app, limit_ns=LIMIT)
    assert all(result.results)
    # at least one side redirected traffic to the alternate subnet
    failovers = sum(
        assoc.stats.failovers
        for proc in world.processes
        for assoc in proc.rpi.sock._assocs.values()
    )
    assert failovers > 0


def test_multihomed_world_runs_clean_without_failures():
    config = WorldConfig(n_procs=4, rpi="sctp", n_paths=2, seed=1)

    async def app(comm):
        return await comm.allreduce(comm.rank)

    result = World(config).run(app, limit_ns=LIMIT)
    assert result.results == [6, 6, 6, 6]
