"""Envelope pack/unpack and wire framing rules."""

import pytest
from hypothesis import given, strategies as st

from repro.core.constants import (
    FLAG_LONG_ACK,
    FLAG_LONG_BODY,
    FLAG_LONG_RNDV,
    FLAG_PICKLED,
    FLAG_SHORT,
    FLAG_SSEND,
    FLAG_SSEND_ACK,
    collective_context,
    pt2pt_context,
)
from repro.core.envelope import ENVELOPE_SIZE, Envelope


def test_envelope_size_is_28_bytes():
    assert ENVELOPE_SIZE == 28
    env = Envelope(100, 1, 2, 3, FLAG_SHORT, 7)
    assert env.pack().nbytes == ENVELOPE_SIZE


def test_roundtrip():
    env = Envelope(123456, 42, 3, 5, FLAG_LONG_RNDV | FLAG_PICKLED, 99)
    assert Envelope.unpack(env.pack().to_bytes()) == env


def test_unpack_wrong_length_rejected():
    with pytest.raises(ValueError):
        Envelope.unpack(b"short")


def test_kind_extracts_single_bit():
    env = Envelope(0, 0, 0, 0, FLAG_SSEND | FLAG_PICKLED, 1)
    assert env.kind() == FLAG_SSEND


def test_wire_body_length_by_kind():
    # body-carrying kinds
    for kind in (FLAG_SHORT, FLAG_SSEND, FLAG_LONG_BODY):
        assert Envelope(500, 0, 0, 0, kind, 1).wire_body_length() == 500
    # control kinds: length describes the future body, nothing follows
    for kind in (FLAG_LONG_RNDV, FLAG_LONG_ACK, FLAG_SSEND_ACK):
        assert Envelope(500, 0, 0, 0, kind, 1).wire_body_length() == 0


def test_context_spaces_disjoint():
    # pt2pt and collective contexts of any communicator never collide
    ids = set()
    for cid in range(20):
        ids.add(pt2pt_context(cid))
        ids.add(collective_context(cid))
    assert len(ids) == 40


@given(
    length=st.integers(min_value=0, max_value=2**40),
    tag=st.integers(min_value=-1, max_value=2**31 - 1),
    context=st.integers(min_value=0, max_value=2**31 - 1),
    rank=st.integers(min_value=-1, max_value=2**31 - 1),
    flags=st.integers(min_value=0, max_value=0x7FF),
    seqnum=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_property(length, tag, context, rank, flags, seqnum):
    env = Envelope(length, tag, context, rank, flags, seqnum)
    assert Envelope.unpack(env.pack().to_bytes()) == env
