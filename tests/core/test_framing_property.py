"""Property tests: RPI wire framing and cross-protocol equivalence."""

from hypothesis import given, settings, strategies as st

from repro.core import run_app
from repro.core.constants import FLAG_SHORT
from repro.core.envelope import ENVELOPE_SIZE, Envelope

LIMIT = 600_000_000_000


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_tcp_feed_reconstructs_units_from_any_segmentation(data):
    """The TCP RPI's read state machine must recover exact middleware
    units no matter how the byte stream is chopped into recv() chunks."""
    from repro.core.rpi.tcp_rpi import _InState
    from repro.util.blobs import ChunkList, RealBlob

    # build a wire image of several units
    messages = []
    wire = b""
    for i in range(data.draw(st.integers(1, 5))):
        body = data.draw(st.binary(min_size=0, max_size=60))
        env = Envelope(len(body), i, 0, 1, FLAG_SHORT, i)
        messages.append((env, body))
        wire += env.pack().to_bytes() + body

    # chop at arbitrary positions
    cuts = sorted(data.draw(st.lists(st.integers(0, len(wire)), max_size=8)))
    bounds = [0] + cuts + [len(wire)]
    chunks = [wire[bounds[j] : bounds[j + 1]] for j in range(len(bounds) - 1)]

    # drive the state machine directly (no sockets needed)
    state = _InState()
    received = []

    def feed(chunk: bytes) -> None:
        state.buf.extend(ChunkList([RealBlob(chunk)]))
        while True:
            if state.env is None:
                if state.buf.nbytes < ENVELOPE_SIZE:
                    return
                head, state.buf = state.buf.split(ENVELOPE_SIZE)
                state.env = Envelope.unpack(head.to_bytes())
            if state.buf.nbytes < state.env.wire_body_length():
                return
            body, state.buf = state.buf.split(state.env.wire_body_length())
            received.append((state.env, body.to_bytes()))
            state.env = None

    for chunk in chunks:
        if chunk:
            feed(chunk)

    assert received == messages
    assert state.buf.nbytes == 0 and state.env is None


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 1000),
    sizes=st.lists(st.integers(1, 150_000), min_size=1, max_size=5),
)
def test_tcp_and_sctp_compute_identical_application_results(seed, sizes):
    """Differential property: the transport must never change what an MPI
    program computes — only when.  Random message sizes, 2% loss."""

    async def app(comm):
        peer = 1 - comm.rank
        acc = 0
        for i, size in enumerate(sizes):
            payload = bytes([(i * 31 + comm.rank) % 256]) * min(size, 2_000)
            if comm.rank == 0:
                await comm.send(payload, dest=peer, tag=i % 7)
                echoed = (await comm.recv(source=peer, tag=i % 7)).to_bytes()
                assert echoed == payload  # echo integrity under loss
                acc += sum(echoed[:16])
            else:
                got = (await comm.recv(source=peer, tag=i % 7)).to_bytes()
                await comm.send(got, dest=peer, tag=i % 7)
                acc += sum(got[:16])
        return await comm.allreduce(acc)

    outcomes = {}
    for rpi in ("tcp", "sctp"):
        result = run_app(
            app, n_procs=2, rpi=rpi, seed=seed, loss_rate=0.02, limit_ns=LIMIT
        )
        outcomes[rpi] = result.results
    assert outcomes["tcp"] == outcomes["sctp"]
