"""Payload encoding: pickled objects, raw bytes, blobs."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.constants import FLAG_PICKLED
from repro.core.payload import decode_payload, encode_payload
from repro.util.blobs import ChunkList, RealBlob, SyntheticBlob


def test_bytes_pass_through_unpickled():
    body, flags = encode_payload(b"raw data")
    assert flags == 0
    assert body.to_bytes() == b"raw data"
    assert decode_payload(body, flags).to_bytes() == b"raw data"


def test_blob_passes_through():
    blob = SyntheticBlob(1000, "bench")
    body, flags = encode_payload(blob)
    assert flags == 0 and body.nbytes == 1000
    assert not body.is_real  # no materialisation happened


def test_chunklist_passes_through():
    cl = ChunkList([RealBlob(b"ab"), SyntheticBlob(3)])
    body, flags = encode_payload(cl)
    assert body is cl and flags == 0


def test_object_pickled_roundtrip():
    value = {"rank": 3, "data": [1, 2, (4, 5)], "f": 2.5}
    body, flags = encode_payload(value)
    assert flags & FLAG_PICKLED
    assert decode_payload(body, flags) == value


def test_numpy_roundtrip():
    arr = np.arange(1000, dtype=np.float64).reshape(10, 100)
    body, flags = encode_payload(arr)
    out = decode_payload(body, flags)
    assert np.array_equal(out, arr)
    assert body.nbytes > 8000  # true serialized size is accounted


@given(
    st.recursive(
        st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=10,
    )
)
def test_arbitrary_python_object_roundtrip(value):
    body, flags = encode_payload(value)
    assert decode_payload(body, flags) == value
