"""Collectives vs serial references, both RPIs, assorted sizes."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_app

LIMIT = 300_000_000_000
SIZES = [2, 3, 5, 8]  # powers of two and not
BOTH = pytest.mark.parametrize("rpi", ["tcp", "sctp"])


def run(app, n, rpi="sctp", seed=1):
    return run_app(app, n_procs=n, rpi=rpi, seed=seed, limit_ns=LIMIT).results


@BOTH
@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronizes(rpi, n):
    async def app(comm):
        kernel = comm.process.kernel
        # stagger arrival: rank r waits r ms before the barrier
        await kernel.sleep(comm.rank * 1_000_000)
        await comm.barrier()
        return kernel.now

    times = run(app, n, rpi)
    slowest_arrival = (n - 1) * 1_000_000
    assert all(t >= slowest_arrival for t in times)


@BOTH
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_from_any_root(rpi, n, root):
    if root >= n:
        pytest.skip("root outside communicator")

    async def app(comm):
        data = {"origin": comm.rank} if comm.rank == root else None
        return await comm.bcast(data, root=root)

    results = run(app, n, rpi)
    assert results == [{"origin": root}] * n


@BOTH
@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(rpi, n):
    async def app(comm):
        return await comm.reduce(comm.rank + 1, root=0)

    results = run(app, n, rpi)
    assert results[0] == sum(range(1, n + 1))
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_custom_op(n):
    async def app(comm):
        return await comm.allreduce(comm.rank + 1, op=operator.mul)

    import math

    results = run(app, n)
    assert results == [math.factorial(n)] * n


@pytest.mark.parametrize("n", SIZES)
def test_gather_scatter(n):
    async def app(comm):
        gathered = await comm.gather(comm.rank ** 2, root=0)
        values = [v * 10 for v in gathered] if comm.rank == 0 else None
        mine = await comm.scatter(values, root=0)
        return (gathered, mine)

    results = run(app, n)
    assert results[0][0] == [r ** 2 for r in range(n)]
    assert [r[1] for r in results] == [r ** 2 * 10 for r in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    async def app(comm):
        return await comm.allgather(chr(ord("a") + comm.rank))

    expected = [chr(ord("a") + r) for r in range(n)]
    assert run(app, n) == [expected] * n


@BOTH
@pytest.mark.parametrize("n", SIZES)
def test_alltoall(rpi, n):
    async def app(comm):
        out = [f"{comm.rank}->{d}" for d in range(comm.size)]
        return await comm.alltoall(out)

    results = run(app, n, rpi)
    for me, received in enumerate(results):
        assert received == [f"{src}->{me}" for src in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scan_prefix_sums(n):
    async def app(comm):
        return await comm.scan(comm.rank + 1)

    results = run(app, n)
    assert results == [sum(range(1, r + 2)) for r in range(n)]


def test_scatter_validates_root_input():
    async def app(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError):
                await comm.scatter([1], root=0)  # wrong length
        await comm.barrier()
        return True

    assert all(run(app, 2))


def test_alltoall_validates_length():
    async def app(comm):
        with pytest.raises(ValueError):
            await comm.alltoall([0])  # must provide size values
        await comm.barrier()
        return True

    assert all(run(app, 2))


@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=2, max_size=6),
    seed=st.integers(0, 100),
)
def test_allreduce_matches_serial_sum(values, seed):
    """Property: allreduce(sum) equals Python's sum on every rank."""

    async def app(comm):
        return await comm.allreduce(values[comm.rank])

    results = run_app(
        app, n_procs=len(values), rpi="sctp", seed=seed, limit_ns=LIMIT
    ).results
    assert results == [sum(values)] * len(values)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50))
def test_collectives_survive_loss(seed):
    """Collectives stay correct on a lossy fabric (both RPIs)."""

    async def app(comm):
        total = await comm.allreduce(comm.rank)
        everyone = await comm.allgather(comm.rank)
        await comm.barrier()
        return (total, everyone)

    for rpi in ("tcp", "sctp"):
        results = run_app(
            app, n_procs=4, rpi=rpi, seed=seed, loss_rate=0.02, limit_ns=LIMIT
        ).results
        assert results == [(6, [0, 1, 2, 3])] * 4
