"""Dummynet pipe: seeded Bernoulli loss + extra delay."""

import pytest

from repro.network import DummynetPipe, Packet
from repro.simkernel import Kernel


def pkt(i=0):
    return Packet(src="a", dst="b", proto="t", payload=i, wire_size=100)


def test_zero_loss_passes_everything():
    k = Kernel(seed=1)
    got = []
    pipe = DummynetPipe(k, "p", loss_rate=0.0, sink=got.append)
    for i in range(100):
        pipe(pkt(i))
    assert len(got) == 100 and pipe.dropped_packets == 0


def test_loss_rate_statistics():
    k = Kernel(seed=2)
    got = []
    pipe = DummynetPipe(k, "p", loss_rate=0.1, sink=got.append)
    n = 5000
    for i in range(n):
        pipe(pkt(i))
    drop_fraction = pipe.dropped_packets / n
    assert 0.07 < drop_fraction < 0.13  # ~3 sigma around 10%


def test_same_seed_same_drops():
    def run(seed):
        k = Kernel(seed=seed)
        got = []
        pipe = DummynetPipe(k, "p", loss_rate=0.2, sink=got.append)
        for i in range(200):
            pipe(pkt(i))
        return [p.payload for p in got]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_extra_delay():
    k = Kernel(seed=1)
    times = []
    pipe = DummynetPipe(k, "p", extra_delay_ns=500, sink=lambda p: times.append(k.now))
    pipe(pkt())
    k.run()
    assert times == [500]


def test_invalid_config_rejected():
    k = Kernel()
    with pytest.raises(ValueError):
        DummynetPipe(k, "p", loss_rate=1.1)
    with pytest.raises(ValueError):
        DummynetPipe(k, "p", loss_rate=-0.1)
    with pytest.raises(ValueError):
        DummynetPipe(k, "p", extra_delay_ns=-1)
    pipe = DummynetPipe(k, "p2")
    with pytest.raises(ValueError):
        pipe.loss_rate = 2.0


def test_total_loss_allowed():
    """loss_rate=1.0 is a legal full blackhole, not a config error."""
    k = Kernel(seed=3)
    got = []
    pipe = DummynetPipe(k, "p", loss_rate=1.0, sink=got.append)
    for i in range(50):
        pipe(pkt(i))
    assert got == [] and pipe.dropped_packets == 50


def test_unconnected_pipe_raises():
    k = Kernel()
    pipe = DummynetPipe(k, "p")
    with pytest.raises(RuntimeError):
        pipe(pkt())
