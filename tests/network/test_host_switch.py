"""Host demux, CPU serialization, switch forwarding, NIC state."""

import pytest

from repro.network import ClusterConfig, Host, HostCPU, NIC, Packet, build_cluster
from repro.simkernel import Kernel


class Recorder:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def test_host_protocol_demux():
    k, cluster = _cluster(k_seed=1)
    a_handler, b_handler = Recorder(), Recorder()
    cluster.hosts[1].register_protocol("a", a_handler)
    cluster.hosts[1].register_protocol("b", b_handler)
    for proto in ("a", "b", "a", "unknown"):
        cluster.hosts[0].send(
            Packet(
                src=cluster.host_address(0),
                dst=cluster.host_address(1),
                proto=proto,
                payload=None,
                wire_size=100,
            )
        )
    k.run()
    assert len(a_handler.packets) == 2
    assert len(b_handler.packets) == 1  # unknown proto silently dropped


def test_duplicate_protocol_registration_rejected():
    k, cluster = _cluster()
    cluster.hosts[0].register_protocol("x", Recorder())
    with pytest.raises(ValueError):
        cluster.hosts[0].register_protocol("x", Recorder())


def test_cpu_serializes_work():
    k = Kernel()
    cpu = HostCPU(k)
    done = []
    cpu.execute(100, done.append, "first")
    cpu.execute(50, done.append, "second")  # queues behind the first
    k.run()
    assert done == ["first", "second"]
    assert k.now == 150
    assert cpu.total_busy_ns == 150


def test_cpu_zero_cost_runs_inline():
    k = Kernel()
    cpu = HostCPU(k)
    done = []
    cpu.execute(0, done.append, 1)
    assert done == [1]  # no event needed


def test_cpu_negative_cost_rejected():
    k = Kernel()
    with pytest.raises(ValueError):
        HostCPU(k).execute(-5, lambda: None)


def test_switch_forwards_by_destination():
    k, cluster = _cluster(n_hosts=3)
    r1, r2 = Recorder(), Recorder()
    cluster.hosts[1].register_protocol("t", r1)
    cluster.hosts[2].register_protocol("t", r2)
    for dst in (1, 2, 2):
        cluster.hosts[0].send(
            Packet(
                src=cluster.host_address(0),
                dst=cluster.host_address(dst),
                proto="t",
                payload=None,
                wire_size=64,
            )
        )
    k.run()
    assert len(r1.packets) == 1 and len(r2.packets) == 2
    assert cluster.switches[0].forwarded == 3


def test_switch_drops_unroutable():
    k, cluster = _cluster()
    cluster.hosts[0].send(
        Packet(
            src=cluster.host_address(0),
            dst="10.9.9.9",
            proto="t",
            payload=None,
            wire_size=64,
        )
    )
    k.run()
    assert cluster.switches[0].unroutable == 1


def test_nic_down_blocks_traffic():
    k, cluster = _cluster()
    sink = Recorder()
    cluster.hosts[1].register_protocol("t", sink)
    cluster.hosts[1].interfaces[0].set_up(False)
    cluster.hosts[0].send(
        Packet(
            src=cluster.host_address(0),
            dst=cluster.host_address(1),
            proto="t",
            payload=None,
            wire_size=64,
        )
    )
    k.run()
    assert sink.packets == []


def test_multihomed_addressing():
    k, cluster = _cluster(n_hosts=2, n_paths=3)
    host = cluster.hosts[0]
    assert host.addresses() == ["10.0.0.1", "10.1.0.1", "10.2.0.1"]
    assert host.primary_address == "10.0.0.1"
    assert host.nic_for("10.1.0.1").addr == "10.1.0.1"
    # unknown source falls back to the primary NIC
    assert host.nic_for("1.2.3.4").addr == "10.0.0.1"


def test_fail_and_restore_path():
    k, cluster = _cluster(n_hosts=2, n_paths=2)
    sink = Recorder()
    cluster.hosts[1].register_protocol("t", sink)

    def send_on(path):
        cluster.hosts[0].send(
            Packet(
                src=cluster.host_address(0, path),
                dst=cluster.host_address(1, path),
                proto="t",
                payload=None,
                wire_size=64,
            )
        )

    cluster.fail_path(0)
    send_on(0)
    send_on(1)
    k.run()
    assert len(sink.packets) == 1  # only path 1 delivered
    cluster.restore_path(0)
    send_on(0)
    k.run()
    assert len(sink.packets) == 2


def _cluster(n_hosts=2, n_paths=1, k_seed=1):
    k = Kernel(seed=k_seed)
    return k, build_cluster(k, ClusterConfig(n_hosts=n_hosts, n_paths=n_paths))
