"""DummynetPipe impairment chain: arm/disarm, corrupt/dup/reorder flow."""

from repro.faults import BernoulliLoss, Corrupt, Delay, Duplicate, Reorder
from repro.network import DummynetPipe, Packet
from repro.simkernel import Kernel


def pkt(i=0):
    return Packet(src="a", dst="b", proto="t", payload=i, wire_size=100)


def make_pipe(seed=1, **kwargs):
    k = Kernel(seed=seed)
    got = []
    pipe = DummynetPipe(k, "p", sink=got.append, **kwargs)
    return k, pipe, got


def test_arm_auto_binds_unbound_impairment():
    k, pipe, got = make_pipe()
    imp = Corrupt(rate=1.0)
    assert not imp.bound
    pipe.arm(imp)
    assert imp.bound and imp.stream == "dummynet:p:corrupt0"
    pipe(pkt())
    assert got[0].corrupted and pipe.corrupted_packets == 1


def test_disarm_restores_clean_path():
    k, pipe, got = make_pipe()
    imp = pipe.arm(Corrupt(rate=1.0))
    pipe(pkt(0))
    pipe.disarm(imp)
    assert not pipe.armed_impairments
    pipe(pkt(1))
    assert got[0].corrupted and not got[1].corrupted


def test_duplicate_through_pipe():
    k, pipe, got = make_pipe()
    pipe.arm(Duplicate(rate=1.0))
    pipe(pkt(0))
    assert len(got) == 2 and pipe.duplicated_packets == 1
    assert got[0].payload is got[1].payload
    assert got[0].pkt_id != got[1].pkt_id


def test_reorder_delays_via_kernel():
    k, times = Kernel(seed=1), []
    pipe = DummynetPipe(k, "p", sink=lambda p: times.append((k.now, p.payload)))
    pipe.arm(Reorder(rate=1.0, delay_ns=5000))
    pipe(pkt(0))
    pipe.disarm(pipe.armed_impairments[0])
    pipe(pkt(1))  # undelayed: overtakes the held packet
    k.run()
    assert times == [(0, 1), (5000, 0)]


def test_delay_stacks_with_base_extra_delay():
    k, times = Kernel(seed=1), []
    pipe = DummynetPipe(
        k, "p", extra_delay_ns=100, sink=lambda p: times.append(k.now)
    )
    pipe.arm(Delay(delay_ns=400))
    pipe(pkt())
    k.run()
    assert times == [500]


def test_chain_order_base_loss_first():
    # base loss at 100%: armed impairments downstream never see packets
    k, pipe, got = make_pipe(loss_rate=1.0)
    imp = pipe.arm(Corrupt(rate=1.0))
    for i in range(10):
        pipe(pkt(i))
    assert got == [] and imp.packets_seen == 0
    assert pipe.dropped_packets == 10


def test_armed_loss_counts_in_pipe_drops():
    k, pipe, got = make_pipe()
    pipe.arm(BernoulliLoss(1.0))
    for i in range(10):
        pipe(pkt(i))
    assert got == [] and pipe.dropped_packets == 10
    assert pipe.passed_packets == 0


def test_disarm_unknown_impairment_is_noop():
    # scenario teardown may disarm twice; that must stay harmless
    k, pipe, got = make_pipe()
    imp = pipe.arm(Corrupt(rate=1.0))
    pipe.disarm(imp)
    pipe.disarm(imp)
    pipe.disarm(Corrupt(rate=1.0))
    pipe(pkt())
    assert len(got) == 1 and not got[0].corrupted
