"""Cost model arithmetic and documented calibration properties."""

from repro.network import CostModel


def test_tcp_cheaper_per_packet_than_sctp():
    cm = CostModel()
    assert cm.packet_send_cost("tcp", 1500) < cm.packet_send_cost("sctp", 1500)
    assert cm.packet_recv_cost("tcp", 1500) < cm.packet_recv_cost("sctp", 1500)


def test_crc32c_disabled_by_default():
    cm = CostModel()
    # doubling packet size must not change SCTP cost when CRC is off
    assert cm.packet_send_cost("sctp", 1024) == cm.packet_send_cost("sctp", 2048)


def test_crc32c_variant_charges_per_kib():
    cm = CostModel().with_crc32c()
    small = cm.packet_send_cost("sctp", 1024)
    large = cm.packet_send_cost("sctp", 2048)
    assert large - small == cm.CRC32C_ENABLED_PER_KIB_NS
    # TCP offloads its checksum to the NIC: unaffected
    assert cm.packet_send_cost("tcp", 2048) == CostModel().packet_send_cost("tcp", 2048)


def test_middleware_io_cost_shape():
    cm = CostModel()
    # fixed part: SCTP's young sendmsg path is dearer (Fig. 8 small sizes)
    assert cm.middleware_io_cost("sctp", 0) > cm.middleware_io_cost("tcp", 0)
    # per-byte part: TCP's boundary scanning/copies are dearer (large sizes)
    tcp_slope = cm.middleware_io_cost("tcp", 64 * 1024) - cm.middleware_io_cost("tcp", 0)
    sctp_slope = cm.middleware_io_cost("sctp", 64 * 1024) - cm.middleware_io_cost("sctp", 0)
    assert tcp_slope > sctp_slope


def test_select_cost_linear_in_sockets():
    cm = CostModel()
    base = cm.select_cost(0)
    assert cm.select_cost(10) == base + 10 * cm.select_per_socket_ns
    # the paper's scalability point: select over many sockets is expensive
    assert cm.select_cost(1000) > 100 * base


def test_unknown_proto_gets_only_ip_cost():
    cm = CostModel()
    assert cm.packet_send_cost("icmp", 100) == cm.ip_send_ns
    assert cm.packet_recv_cost("icmp", 100) == cm.ip_recv_ns
