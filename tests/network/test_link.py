"""Link: serialization, propagation, FIFO queueing, tail drop."""

from repro.network import Link, Packet
from repro.simkernel import GBIT_PER_S, Kernel


def pkt(size, payload="p"):
    return Packet(src="a", dst="b", proto="test", payload=payload, wire_size=size)


def collector(out):
    def sink(packet):
        out.append(packet)

    return sink


def test_serialization_plus_propagation():
    k = Kernel()
    got = []
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=5_000, sink=None)
    link.connect(lambda p: got.append(k.now))
    link.send(pkt(1500))  # 12 us serialize + 5 us propagate
    k.run()
    assert got == [17_000]


def test_back_to_back_packets_serialize():
    k = Kernel()
    times = []
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=0)
    link.connect(lambda p: times.append(k.now))
    link.send(pkt(1500))
    link.send(pkt(1500))
    k.run()
    assert times == [12_000, 24_000]


def test_fifo_order_preserved():
    k = Kernel()
    seen = []
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=1_000)
    link.connect(lambda p: seen.append(p.payload))
    for i in range(5):
        link.send(pkt(600, payload=i))
    k.run()
    assert seen == [0, 1, 2, 3, 4]


def test_tail_drop_when_queue_full():
    k = Kernel()
    got = []
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=0, queue_bytes=3000)
    link.connect(collector(got))
    results = [link.send(pkt(1500)) for _ in range(3)]
    assert results == [True, True, False]
    assert link.dropped_packets == 1 and link.dropped_bytes == 1500
    k.run()
    assert len(got) == 2


def test_queue_drains_and_accepts_again():
    k = Kernel()
    got = []
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=0, queue_bytes=1500)
    link.connect(collector(got))
    assert link.send(pkt(1500))
    assert not link.send(pkt(1500))
    k.run()
    assert link.queued_bytes == 0
    assert link.send(pkt(1500))
    k.run()
    assert len(got) == 2


def test_stats():
    k = Kernel()
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=0)
    link.connect(lambda p: None)
    link.send(pkt(100))
    link.send(pkt(200))
    k.run()
    assert link.tx_packets == 2 and link.tx_bytes == 300


def test_send_without_sink_raises():
    import pytest

    k = Kernel()
    link = Link(k, "l", GBIT_PER_S, prop_delay_ns=0)
    with pytest.raises(RuntimeError):
        link.send(pkt(10))
