"""Packet free-list pool: acquire/release lifecycle, double-release and
hand-built safety, sanitize-mode poisoning."""

import pytest

from repro.analyze.sanitize import POOL_POISON, sanitized
from repro.network.packet import Packet, _pool


def _drain_pool():
    """Empty the process-global free list so identity asserts are exact."""
    _pool.clear()


def test_acquire_release_reuses_the_object():
    _drain_pool()
    first = Packet.acquire("10.0.0.1", "10.0.0.2", "tcp", "seg", 100)
    first_id = first.pkt_id
    first.release()
    assert _pool == [first]
    second = Packet.acquire("10.0.0.2", "10.0.0.1", "sctp", "pkt", 60)
    assert second is first  # recycled, not reallocated
    assert second.src == "10.0.0.2" and second.proto == "sctp"
    assert second.wire_size == 60 and second.payload == "pkt"
    assert second.pkt_id != first_id  # ids stay unique across reuse
    assert not second.corrupted
    second.release()


def test_release_drops_the_payload_reference():
    _drain_pool()
    with sanitized(False):
        pkt = Packet.acquire("a", "b", "tcp", object(), 40)
        pkt.release()
        assert pkt.payload is None  # sanitizers off: plain None sentinel


def test_double_release_is_a_noop():
    _drain_pool()
    pkt = Packet.acquire("a", "b", "tcp", "x", 40)
    pkt.release()
    pkt.release()
    assert _pool == [pkt]


def test_hand_built_packets_are_never_pooled():
    _drain_pool()
    pkt = Packet(src="a", dst="b", proto="test", payload="x", wire_size=40)
    pkt.release()
    assert _pool == []
    assert pkt.payload == "x"  # untouched: release was a no-op


def test_corrupted_flag_resets_on_reuse():
    _drain_pool()
    pkt = Packet.acquire("a", "b", "tcp", "x", 40)
    pkt.corrupted = True
    pkt.release()
    again = Packet.acquire("a", "b", "tcp", "y", 40)
    assert again is pkt and not again.corrupted
    again.release()


def test_sanitizers_poison_pooled_payload():
    _drain_pool()
    with sanitized(True):
        pkt = Packet.acquire("a", "b", "tcp", "x", 40)
        pkt.release()
        assert pkt.payload is POOL_POISON


def test_touched_pool_entry_is_caught_on_acquire():
    _drain_pool()
    with sanitized(True):
        pkt = Packet.acquire("a", "b", "tcp", "x", 40)
        pkt.release()
        pkt.payload = "use-after-release write"
        with pytest.raises(AssertionError, match="use-after-recycle"):
            Packet.acquire("c", "d", "tcp", "y", 40)
    _drain_pool()


def test_plain_none_entries_survive_late_sanitizer_enable():
    _drain_pool()
    with sanitized(False):
        pkt = Packet.acquire("a", "b", "tcp", "x", 40)
        pkt.release()  # sanitizers off: payload slot holds None, not poison
    with sanitized(True):
        again = Packet.acquire("c", "d", "tcp", "y", 40)  # must not trip
        assert again is pkt
        again.release()
    _drain_pool()
