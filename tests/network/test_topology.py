"""Cluster builder structure and runtime controls."""

import pytest

from repro.network import ClusterConfig, build_cluster
from repro.simkernel import Kernel


def test_default_matches_paper_testbed():
    cfg = ClusterConfig()
    assert cfg.n_hosts == 8
    assert cfg.bandwidth_bps == 1_000_000_000


def test_structure_counts():
    k = Kernel()
    c = build_cluster(k, ClusterConfig(n_hosts=4, n_paths=2))
    assert len(c.hosts) == 4
    assert len(c.switches) == 2
    assert len(c.pipes) == 8  # one egress pipe per host per path
    assert len(c.links) == 16  # up+down per host per path
    for h in c.hosts:
        assert len(h.interfaces) == 2


def test_deterministic_addressing():
    cfg = ClusterConfig()
    assert cfg.address(0) == "10.0.0.1"
    assert cfg.address(7, path=2) == "10.2.0.8"
    k = Kernel()
    c = build_cluster(k, ClusterConfig(n_hosts=3, n_paths=2))
    assert c.host_address(2, 1) == "10.1.0.3"


def test_set_loss_rate_applies_to_all_pipes():
    k = Kernel()
    c = build_cluster(k, ClusterConfig(n_hosts=2))
    c.set_loss_rate(0.05)
    assert all(p.loss_rate == 0.05 for p in c.pipes.values())
    with pytest.raises(ValueError):
        c.set_loss_rate(1.5)


def test_invalid_configs_rejected():
    k = Kernel()
    with pytest.raises(ValueError):
        build_cluster(k, ClusterConfig(n_hosts=0))
    with pytest.raises(ValueError):
        build_cluster(k, ClusterConfig(n_paths=0))


def test_total_dropped_counts_pipe_drops():
    from repro.network import Packet

    k = Kernel(seed=3)
    c = build_cluster(k, ClusterConfig(n_hosts=2, loss_rate=0.5))
    for i in range(100):
        c.hosts[0].send(
            Packet(
                src=c.host_address(0),
                dst=c.host_address(1),
                proto="t",
                payload=i,
                wire_size=64,
            )
        )
    k.run()
    assert 20 < c.total_dropped() < 80
