"""SCTP data transfer: framing, fragmentation, ordering, flow control."""

import pytest

from repro.simkernel import SECOND
from repro.transport.sctp import MessageTooBig, SCTPConfig
from repro.util.blobs import RealBlob, SyntheticBlob

from ..conftest import make_cluster, sctp_pair


def pump_messages(kernel, sock, count, limit_s=120):
    """Collect `count` messages from a socket, driving the kernel."""
    out = []
    deadline = kernel.now + limit_s * SECOND

    async def reader():
        while len(out) < count:
            out.append(await sock.recvmsg_wait())

    task = kernel.spawn(reader())
    kernel.run_until(task, limit=deadline)
    return out


def test_message_framing_preserved():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    for body in (b"one", b"two longer", b"three even longer message"):
        assert s0.sendmsg(aid, 0, RealBlob(body))
    msgs = pump_messages(kernel, s1, 3)
    # message boundaries survive: three distinct messages, not a stream
    assert [m.data.to_bytes() for m in msgs] == [
        b"one", b"two longer", b"three even longer message",
    ]


def test_large_message_fragmented_and_reassembled():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    body = bytes(range(256)) * 250  # 64 000 bytes -> ~45 chunks
    assert s0.sendmsg(aid, 3, RealBlob(body))
    msgs = pump_messages(kernel, s1, 1)
    assert msgs[0].data.to_bytes() == body
    assert msgs[0].stream == 3
    assert s0.association(aid).stats.data_chunks_sent > 20


def test_message_above_sendmsg_limit_rejected():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(sndbuf=50_000)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
    with pytest.raises(MessageTooBig):
        s0.sendmsg(aid, 0, SyntheticBlob(50_001))


def test_sendmsg_eagain_when_buffer_full():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(sndbuf=40_000)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
    accepted = 0
    while s0.sendmsg(aid, 0, SyntheticBlob(10_000)):
        accepted += 1
    assert accepted == 4  # exactly sndbuf worth
    # drain at the receiver; the buffer must reopen
    pump_messages(kernel, s1, 4)
    kernel.run(until=kernel.now + 2 * SECOND)
    assert s0.sendmsg(aid, 0, SyntheticBlob(10_000))


def test_per_stream_ssn_assignment():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    s0.sendmsg(aid, 0, RealBlob(b"a0"))
    s0.sendmsg(aid, 1, RealBlob(b"b0"))
    s0.sendmsg(aid, 0, RealBlob(b"a1"))
    msgs = pump_messages(kernel, s1, 3)
    ssns = {(m.stream, m.data.to_bytes()): m.ssn for m in msgs}
    assert ssns[(0, b"a0")] == 0
    assert ssns[(0, b"a1")] == 1
    assert ssns[(1, b"b0")] == 0


def test_unordered_delivery_flag():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    s0.sendmsg(aid, 0, RealBlob(b"u"), unordered=True)
    msgs = pump_messages(kernel, s1, 1)
    assert msgs[0].unordered


def test_flow_control_rwnd_throttles_sender():
    """Receiver never reads: a_rwnd closes and the sender's outstanding
    data is bounded by the receive buffer."""
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(sndbuf=500_000, rcvbuf=60_000)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
    sent = 0
    for _ in range(40):
        if s0.sendmsg(aid, 0, SyntheticBlob(10_000)):
            sent += 1
    kernel.run(until=kernel.now + 10 * SECOND)
    assoc = s0.association(aid)
    delivered_not_read = sum(m.nbytes for m in s1._inbox)
    # everything delivered so far is parked in the (bounded) receive buffer,
    # plus at most a few RTO-paced zero-window probe chunks
    assert delivered_not_read <= 60_000 + 12 * 1452
    assert assoc.peer_rwnd <= 1452  # window essentially closed
    # reading reopens the window and the rest flows
    total_expected = sent
    got = pump_messages(kernel, s1, total_expected)
    assert len(got) == total_expected


def test_bidirectional_transfer():
    kernel, cluster = make_cluster()
    s0, s1, aid0 = sctp_pair(kernel, cluster)
    kernel.run(until=kernel.now + 1 * SECOND)
    server_assoc = next(iter(s1._assocs.values()))
    s0.sendmsg(aid0, 0, RealBlob(b"ping"))
    s1.sendmsg(server_assoc.assoc_id, 0, RealBlob(b"pong"))
    got0 = pump_messages(kernel, s0, 1)
    got1 = pump_messages(kernel, s1, 1)
    assert got0[0].data.to_bytes() == b"pong"
    assert got1[0].data.to_bytes() == b"ping"


def test_one_to_one_socket_style():
    from repro.transport.sctp import OneToOneSocket, SCTPEndpoint, OneToManySocket

    kernel, cluster = make_cluster()
    cfg = SCTPConfig()
    e0 = SCTPEndpoint(cluster.hosts[0], cfg)
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    server = OneToManySocket(e1, 6100, cfg)  # acceptor side
    client = OneToOneSocket(e0, cfg)
    fut = client.connect(cluster.host_address(1), 6100)
    kernel.run_until(fut, limit=10 * SECOND)
    assert client.sendmsg(0, RealBlob(b"hello 1-1"))
    got = pump_messages(kernel, server, 1)
    assert got[0].data.to_bytes() == b"hello 1-1"
