"""Stream reassembly + per-stream ordering (the HOL-blocking cure)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.sctp.chunks import DataChunk
from repro.transport.sctp.streams import InboundStreams, OutboundStreams
from repro.util.blobs import RealBlob


def chunk(tsn, sid, ssn, data=b"x", begin=True, end=True, unordered=False):
    return DataChunk(
        tsn=tsn, sid=sid, ssn=ssn, payload=RealBlob(data),
        begin=begin, end=end, unordered=unordered,
    )


def test_outbound_ssn_per_stream():
    out = OutboundStreams(3)
    assert [out.next_ssn(0), out.next_ssn(0), out.next_ssn(1)] == [0, 1, 0]
    with pytest.raises(ValueError):
        out.next_ssn(3)


def test_single_chunk_message_delivers_immediately():
    inb = InboundStreams(4)
    msgs = inb.on_data(chunk(100, sid=2, ssn=0, data=b"hello"))
    assert len(msgs) == 1
    assert msgs[0].data.to_bytes() == b"hello"
    assert msgs[0].sid == 2
    assert inb.buffered_bytes == 0


def test_fragmented_message_reassembles():
    inb = InboundStreams(1)
    assert inb.on_data(chunk(1, 0, 0, b"aa", begin=True, end=False)) == []
    assert inb.on_data(chunk(3, 0, 0, b"cc", begin=False, end=True)) == []
    msgs = inb.on_data(chunk(2, 0, 0, b"bb", begin=False, end=False))
    assert len(msgs) == 1
    assert msgs[0].data.to_bytes() == b"aabbcc"
    assert msgs[0].first_tsn == 1 and msgs[0].last_tsn == 3


def test_ssn_ordering_within_stream():
    inb = InboundStreams(1)
    assert inb.on_data(chunk(2, 0, ssn=1, data=b"second")) == []
    assert inb.buffered_bytes == 6  # complete but blocked by SSN order
    msgs = inb.on_data(chunk(1, 0, ssn=0, data=b"first"))
    assert [m.data.to_bytes() for m in msgs] == [b"first", b"second"]
    assert inb.buffered_bytes == 0


def test_streams_deliver_independently():
    """The paper's core mechanism: a hole in stream 0 does not block
    stream 1's messages."""
    inb = InboundStreams(2)
    # stream 0, ssn 0 never arrives; stream 1 flows freely
    assert inb.on_data(chunk(10, sid=0, ssn=1, data=b"blocked")) == []
    out = inb.on_data(chunk(11, sid=1, ssn=0, data=b"flows"))
    assert [m.data.to_bytes() for m in out] == [b"flows"]
    assert inb.has_undelivered  # stream 0's ssn 1 still parked


def test_unordered_bypasses_ssn():
    inb = InboundStreams(1)
    out = inb.on_data(chunk(5, 0, ssn=99, data=b"now", unordered=True))
    assert [m.data.to_bytes() for m in out] == [b"now"]


def test_stream_id_out_of_range_rejected():
    inb = InboundStreams(2)
    with pytest.raises(ValueError):
        inb.on_data(chunk(1, sid=5, ssn=0))


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_any_arrival_order_delivers_each_stream_in_ssn_order(data):
    """Property: random multi-stream fragmented traffic, arbitrary arrival
    order -> per-stream SSN order, every message exactly once."""
    n_streams = data.draw(st.integers(1, 3))
    out = OutboundStreams(n_streams)
    tsn = 0
    chunks = []
    expected = {s: [] for s in range(n_streams)}
    for _ in range(data.draw(st.integers(1, 8))):
        sid = data.draw(st.integers(0, n_streams - 1))
        ssn = out.next_ssn(sid)
        body = data.draw(st.binary(min_size=1, max_size=12))
        expected[sid].append(body)
        frag_at = data.draw(st.integers(0, len(body)))
        pieces = [p for p in (body[:frag_at], body[frag_at:]) if p]
        for i, piece in enumerate(pieces):
            tsn += 1
            chunks.append(
                chunk(
                    tsn, sid, ssn, piece,
                    begin=(i == 0), end=(i == len(pieces) - 1),
                )
            )
    order = data.draw(st.permutations(chunks))
    inb = InboundStreams(n_streams)
    got = {s: [] for s in range(n_streams)}
    for c in order:
        for msg in inb.on_data(c):
            got[msg.sid].append(msg.data.to_bytes())
    assert got == expected
    assert inb.buffered_bytes == 0
