"""Four-way handshake, cookies, verification tags (paper §3.5.2)."""

import dataclasses

from repro.network import Packet
from repro.simkernel import SECOND
from repro.transport.sctp import (
    AbortChunk,
    DataChunk,
    SCTPConfig,
    SCTPEndpoint,
    SCTPPacket,
    OneToManySocket,
)
from repro.transport.sctp.chunks import StateCookie
from repro.util.blobs import RealBlob

from ..conftest import make_cluster, sctp_pair


def test_four_way_handshake_establishes():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    assert assoc.state == "ESTABLISHED"
    # server side up too
    kernel.run(until=kernel.now + 1 * SECOND)
    server_assoc = next(iter(s1._assocs.values()))
    assert server_assoc.state == "ESTABLISHED"
    assert server_assoc.peer_vtag == assoc.my_vtag
    assert assoc.peer_vtag == server_assoc.my_vtag


def test_server_keeps_no_state_before_cookie_echo():
    """INIT must be answered statelessly: no association is created until
    the signed cookie returns (SYN-flood immunity)."""
    kernel, cluster = make_cluster()
    cfg = SCTPConfig()
    e0 = SCTPEndpoint(cluster.hosts[0], cfg)
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    OneToManySocket(e1, 6000, cfg)  # listener
    from repro.transport.sctp.chunks import InitChunk

    # hand-roll 50 INITs (a SYN-flood) without ever echoing the cookie
    for i in range(50):
        init = InitChunk(
            init_tag=1000 + i, a_rwnd=1000, n_out_streams=1, n_in_streams=1,
            initial_tsn=1, addresses=(cluster.host_address(0),),
        )
        pkt = SCTPPacket(src_port=9000 + i, dst_port=6000, vtag=0, chunks=(init,))
        cluster.hosts[0].send(
            Packet(
                src=cluster.host_address(0), dst=cluster.host_address(1),
                proto="sctp", payload=pkt, wire_size=pkt.wire_size(),
            )
        )
    kernel.run(until=kernel.now + 1 * SECOND)
    assert len(e1._assocs) == 0  # zero state allocated


def test_tampered_cookie_rejected():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig()
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    SCTPEndpoint(cluster.hosts[0], cfg)
    OneToManySocket(e1, 6000, cfg)

    forged = StateCookie(
        peer_addr=cluster.host_address(0),
        peer_port=5555,
        local_port=6000,
        peer_init_tag=42,
        peer_initial_tsn=1,
        peer_a_rwnd=1000,
        peer_addresses=(cluster.host_address(0),),
        my_init_tag=43,
        my_initial_tsn=1,
        n_out_streams=1,
        n_in_streams=1,
        created_at_ns=kernel.now,
        signature=123456789,  # not signed by the endpoint's secret
    )
    from repro.transport.sctp.chunks import CookieEchoChunk

    pkt = SCTPPacket(src_port=5555, dst_port=6000, vtag=43, chunks=(CookieEchoChunk(forged),))
    cluster.hosts[0].send(
        Packet(
            src=cluster.host_address(0), dst=cluster.host_address(1),
            proto="sctp", payload=pkt, wire_size=pkt.wire_size(),
        )
    )
    kernel.run(until=kernel.now + 1 * SECOND)
    assert len(e1._assocs) == 0
    assert e1.bad_signature_cookies == 1


def test_stale_cookie_rejected():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(cookie_lifetime_ns=1 * SECOND)
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    from repro.transport.sctp.chunks import InitChunk

    init = InitChunk(
        init_tag=7, a_rwnd=100, n_out_streams=1, n_in_streams=1,
        initial_tsn=1, addresses=("10.0.0.1",),
    )
    fake_pkt = SCTPPacket(src_port=5555, dst_port=6000, vtag=0, chunks=(init,))
    cookie = e1.make_cookie(init, fake_pkt, "10.0.0.1", cfg)
    kernel.call_after(2 * SECOND, lambda: None)
    kernel.run()  # 2 virtual seconds pass: cookie now stale
    assert e1.validate_cookie(cookie, cfg) == "stale cookie"
    assert e1.stale_cookies == 1


def test_fresh_cookie_validates():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig()
    e1 = SCTPEndpoint(cluster.hosts[1], cfg)
    from repro.transport.sctp.chunks import InitChunk

    init = InitChunk(
        init_tag=7, a_rwnd=100, n_out_streams=1, n_in_streams=1,
        initial_tsn=1, addresses=("10.0.0.1",),
    )
    fake_pkt = SCTPPacket(src_port=5555, dst_port=6000, vtag=0, chunks=(init,))
    cookie = e1.make_cookie(init, fake_pkt, "10.0.0.1", cfg)
    assert e1.validate_cookie(cookie, cfg) is None


def test_blind_injection_dropped_by_verification_tag():
    """Packets with a wrong vtag never reach the association — the reset
    attack TCP is vulnerable to [30] bounces off SCTP."""
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    before = assoc.stats.data_chunks_received

    evil = SCTPPacket(
        src_port=6000,
        dst_port=assoc.local_port,
        vtag=assoc.my_vtag ^ 0xDEAD,  # guessed wrong
        chunks=(DataChunk(tsn=999, sid=0, ssn=0, payload=RealBlob(b"evil")),),
    )
    cluster.hosts[1].send(
        Packet(
            src=cluster.host_address(1), dst=cluster.host_address(0),
            proto="sctp", payload=evil, wire_size=evil.wire_size(),
        )
    )
    kernel.run(until=kernel.now + 1 * SECOND)
    assert assoc.stats.data_chunks_received == before
    assert s0.endpoint.bad_vtag_drops == 1

    # an ABORT with a forged vtag must not kill the association either
    evil_abort = SCTPPacket(
        src_port=6000, dst_port=assoc.local_port,
        vtag=assoc.my_vtag ^ 1, chunks=(AbortChunk("forged"),),
    )
    cluster.hosts[1].send(
        Packet(
            src=cluster.host_address(1), dst=cluster.host_address(0),
            proto="sctp", payload=evil_abort, wire_size=evil_abort.wire_size(),
        )
    )
    kernel.run(until=kernel.now + 1 * SECOND)
    assert assoc.state == "ESTABLISHED"


def test_ootb_non_handshake_packet_counted():
    kernel, cluster = make_cluster()
    e1 = SCTPEndpoint(cluster.hosts[1])
    SCTPEndpoint(cluster.hosts[0])
    stray = SCTPPacket(
        src_port=1, dst_port=2, vtag=99,
        chunks=(DataChunk(tsn=1, sid=0, ssn=0, payload=RealBlob(b"?")),),
    )
    cluster.hosts[0].send(
        Packet(
            src=cluster.host_address(0), dst=cluster.host_address(1),
            proto="sctp", payload=stray, wire_size=stray.wire_size(),
        )
    )
    kernel.run(until=kernel.now + 1 * SECOND)
    assert e1.ootb_packets == 1


def test_handshake_survives_loss():
    """INIT/INIT-ACK/COOKIE-ECHO retransmit on T1 until established."""
    kernel, cluster = make_cluster(loss_rate=0.3, seed=11)
    s0, s1, aid = sctp_pair(kernel, cluster)
    assert s0.association(aid).state == "ESTABLISHED"
