"""TCP loss recovery: fast retransmit, SACK, RTO, integrity under loss."""

from hypothesis import given, settings, strategies as st

from repro.simkernel import SECOND
from repro.transport.tcp import TCPConfig

from ..conftest import make_cluster, tcp_pair
from .test_tcp_connection import transfer


def test_integrity_and_fast_retransmit_under_loss():
    kernel, cluster = make_cluster(loss_rate=0.01, seed=3)
    client, server, _ = tcp_pair(kernel, cluster)
    data = bytes(range(256)) * 4000  # 1 MB
    assert transfer(client, server, kernel, data) == data
    stats = client.conn.stats
    assert stats.retransmitted_segments > 0
    assert stats.fast_retransmits > 0  # mid-stream losses repaired quickly


def test_sack_scoreboard_avoids_spurious_retransmits():
    kernel, cluster = make_cluster(loss_rate=0.02, seed=5)
    client, server, _ = tcp_pair(kernel, cluster)
    data = b"q" * 500_000
    assert transfer(client, server, kernel, data) == data
    stats = client.conn.stats
    drops = cluster.total_dropped()
    # with SACK, retransmissions stay in the same ballpark as actual drops
    assert stats.retransmitted_segments < 3 * drops + 10
    assert stats.sacked_ranges > 0


def test_tail_loss_needs_rto():
    """Drop the final data segment: no dupacks can follow, so only the
    (coarse BSD) retransmission timer can repair it."""
    kernel, cluster = make_cluster(seed=1)
    client, server, _ = tcp_pair(kernel, cluster)

    dropped = {"armed": True}
    pipe = cluster.pipe_for(0)
    original_sink = pipe.sink

    def drop_last(packet):
        seg = packet.payload
        if (
            dropped["armed"]
            and packet.proto == "tcp"
            and getattr(seg, "data_len", 0) > 0
            and seg.data_len < 1448  # the short tail segment
        ):
            dropped["armed"] = False
            return
        original_sink(packet)

    pipe.sink = drop_last
    data = b"m" * 10_000  # 6 full segments + a tail
    start = kernel.now
    assert transfer(client, server, kernel, data) == data
    elapsed = kernel.now - start
    assert client.conn.stats.rto_events >= 1
    assert elapsed >= 1 * SECOND  # BSD minimum RTO dominated the transfer


def test_rto_collapses_cwnd():
    kernel, cluster = make_cluster(seed=1)
    client, server, _ = tcp_pair(kernel, cluster)
    transfer(client, server, kernel, b"x" * 300_000)
    grown = client.conn.cc.cwnd
    assert grown > 10 * 1448
    client.conn.cc.on_timeout(flight_size=grown)
    assert client.conn.cc.cwnd == 1448


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_integrity_for_arbitrary_loss_patterns(seed):
    """Property: whatever the (seeded) loss pattern at 3%, the byte stream
    is delivered exactly, in order."""
    kernel, cluster = make_cluster(loss_rate=0.03, seed=seed)
    client, server, _ = tcp_pair(kernel, cluster)
    data = bytes((i * 7 + seed) % 256 for i in range(200_000))
    assert transfer(client, server, kernel, data) == data
