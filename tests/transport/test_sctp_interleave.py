"""RFC 8260 message interleaving: MID reassembly, negotiation, fallback."""

import pytest

from repro.simkernel import SECOND
from repro.transport.sctp import (
    OneToManySocket,
    SCTPConfig,
    SCTPEndpoint,
)
from repro.transport.sctp.chunks import IDataChunk
from repro.transport.sctp.interleave import MID_MASK, OutboundInterleave
from repro.transport.sctp.streams import InboundStreams
from repro.util.blobs import RealBlob

from ..conftest import make_cluster


def idchunk(tsn, sid, mid, fsn=0, data=b"x", begin=True, end=True, unordered=False):
    return IDataChunk(
        tsn=tsn, sid=sid, ssn=0, payload=RealBlob(data),
        begin=begin, end=end, unordered=unordered, mid=mid, fsn=fsn,
    )


# ---------------------------------------------------------------------------
# outbound MID allocation
# ---------------------------------------------------------------------------
def test_outbound_mid_spaces_are_separate():
    out = OutboundInterleave(2)
    assert [out.next_mid(0, False), out.next_mid(0, False)] == [0, 1]
    # unordered draws from its own space (the U bit is part of identity)
    assert out.next_mid(0, True) == 0
    assert out.next_mid(1, False) == 0
    with pytest.raises(ValueError):
        out.next_mid(2, False)


def test_outbound_mid_wraps_at_32_bits():
    out = OutboundInterleave(1)
    out.seed_mid(0, MID_MASK)
    assert out.next_mid(0, False) == MID_MASK
    assert out.next_mid(0, False) == 0


# ---------------------------------------------------------------------------
# reassembly
# ---------------------------------------------------------------------------
def test_single_idata_chunk_delivers():
    inb = InboundStreams(4)
    msgs = inb.on_data(idchunk(100, sid=2, mid=0, data=b"hello"))
    assert len(msgs) == 1
    assert msgs[0].data.to_bytes() == b"hello"
    assert msgs[0].mid == 0 and msgs[0].ssn == 0
    assert inb.buffered_bytes == 0


def test_interleaved_fragments_out_of_order():
    """Fragments of two messages on one stream arrive interleaved and
    out of FSN order — impossible with legacy DATA (contiguous TSNs),
    the normal case with I-DATA."""
    inb = InboundStreams(1)
    # message mid=0 = "aabbcc", mid=1 = "xxyy"; wire order mixes them
    assert inb.on_data(idchunk(1, 0, mid=0, fsn=0, data=b"aa", end=False)) == []
    assert inb.on_data(idchunk(2, 0, mid=1, fsn=0, data=b"xx", end=False)) == []
    # mid=1's E fragment arrives before its own middle... nothing yet
    assert inb.on_data(
        idchunk(3, 0, mid=0, fsn=2, data=b"cc", begin=False, end=True)
    ) == []
    assert inb.on_data(
        idchunk(4, 0, mid=1, fsn=1, data=b"yy", begin=False, end=True)
    ) == []
    # completing mid=0 releases both, in MID order
    msgs = inb.on_data(
        idchunk(5, 0, mid=0, fsn=1, data=b"bb", begin=False, end=False)
    )
    assert [m.data.to_bytes() for m in msgs] == [b"aabbcc", b"xxyy"]
    assert [m.mid for m in msgs] == [0, 1]
    assert inb.buffered_bytes == 0
    assert not inb.has_undelivered


def test_mid_ordering_parks_later_messages():
    inb = InboundStreams(1)
    assert inb.on_data(idchunk(2, 0, mid=1, data=b"second")) == []
    assert inb.has_undelivered
    msgs = inb.on_data(idchunk(1, 0, mid=0, data=b"first"))
    assert [m.data.to_bytes() for m in msgs] == [b"first", b"second"]


def test_streams_deliver_independently_under_idata():
    inb = InboundStreams(2)
    assert inb.on_data(idchunk(10, sid=0, mid=1, data=b"blocked")) == []
    out = inb.on_data(idchunk(11, sid=1, mid=0, data=b"flows"))
    assert [m.data.to_bytes() for m in out] == [b"flows"]


def test_unordered_idata_delivers_on_completion():
    inb = InboundStreams(1)
    # ordered mid=0 is missing; an unordered message is not held back
    assert inb.on_data(idchunk(1, 0, mid=5, data=b"held")) == []
    out = inb.on_data(idchunk(2, 0, mid=0, data=b"now", unordered=True))
    assert [m.data.to_bytes() for m in out] == [b"now"]
    assert out[0].unordered


def test_receiver_mid_wraparound():
    inb = InboundStreams(1)
    inb.interleaved.seed_mid(0, MID_MASK)
    # deliver mid 2**32-1 then mid 0: succession wraps, both flow
    msgs = inb.on_data(idchunk(1, 0, mid=MID_MASK, data=b"last"))
    assert [m.data.to_bytes() for m in msgs] == [b"last"]
    msgs = inb.on_data(idchunk(2, 0, mid=0, data=b"wrapped"))
    assert [m.data.to_bytes() for m in msgs] == [b"wrapped"]


def test_wrapped_mid_parks_across_boundary():
    inb = InboundStreams(1)
    inb.interleaved.seed_mid(0, MID_MASK)
    # mid 0 (post-wrap) arrives before mid 2**32-1: parked, then both
    assert inb.on_data(idchunk(1, 0, mid=0, data=b"after")) == []
    msgs = inb.on_data(idchunk(2, 0, mid=MID_MASK, data=b"before"))
    assert [m.data.to_bytes() for m in msgs] == [b"before", b"after"]


# ---------------------------------------------------------------------------
# negotiation + end-to-end transfer
# ---------------------------------------------------------------------------
def _pair(kernel, cluster, client_cfg, server_cfg, port=6000):
    e0 = SCTPEndpoint(cluster.hosts[0], client_cfg)
    e1 = SCTPEndpoint(cluster.hosts[1], server_cfg)
    s0 = OneToManySocket(e0, port, client_cfg)
    s1 = OneToManySocket(e1, port, server_cfg)
    fut = s0.connect(cluster.host_address(1), port)
    assoc_id = kernel.run_until(fut, limit=60_000_000_000)
    return s0, s1, assoc_id


def test_fallback_when_server_lacks_interleaving():
    """Client offers I-DATA, server does not: both fall back to legacy
    DATA and traffic flows."""
    kernel, cluster = make_cluster()
    s0, s1, aid = _pair(
        kernel, cluster,
        SCTPConfig(interleaving=True, scheduler="rr"),
        SCTPConfig(interleaving=False),
    )
    assoc = s0.association(aid)
    assert assoc.interleaving_active is False
    s0.sendmsg(aid, 1, RealBlob(b"plain old data"))
    kernel.run(until=kernel.now + 1 * SECOND)
    msg = s1.recvmsg()
    assert msg is not None and msg.data.to_bytes() == b"plain old data"
    assert assoc.stats.idata_chunks_sent == 0
    server_assoc = next(iter(s1._assocs.values()))
    assert server_assoc.interleaving_active is False


def test_negotiated_interleaving_uses_idata_both_ways():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(interleaving=True)
    s0, s1, aid = _pair(kernel, cluster, cfg, cfg)
    assoc = s0.association(aid)
    server_assoc = next(iter(s1._assocs.values()))
    assert assoc.interleaving_active is True
    assert server_assoc.interleaving_active is True

    big = bytes(range(256)) * 64  # 16 KiB: fragments under default PMTU
    s0.sendmsg(aid, 0, RealBlob(big))
    s0.sendmsg(aid, 1, RealBlob(b"small"))
    kernel.run(until=kernel.now + 1 * SECOND)
    got = {}
    while True:
        msg = s1.recvmsg()
        if msg is None:
            break
        got[msg.stream] = msg.data.to_bytes()
    assert got == {0: big, 1: b"small"}
    assert assoc.stats.idata_chunks_sent > 1
    assert server_assoc.stats.idata_chunks_received == assoc.stats.idata_chunks_sent

    # reply direction uses I-DATA too (cookie carries the negotiation)
    s1.sendmsg(server_assoc.assoc_id, 2, RealBlob(b"reply"))
    kernel.run(until=kernel.now + 1 * SECOND)
    msg = s0.recvmsg()
    assert msg is not None and msg.data.to_bytes() == b"reply"
    assert server_assoc.stats.idata_chunks_sent >= 1


def test_rr_scheduler_interleaves_small_past_bulk():
    """The subsystem's point: with I-DATA + round-robin, a small message
    queued *behind* a large one on another stream arrives first."""
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(interleaving=True, scheduler="rr")
    s0, s1, aid = _pair(kernel, cluster, cfg, cfg)
    assoc = s0.association(aid)

    bulk = b"B" * 60_000
    s0.sendmsg(aid, 0, RealBlob(bulk))
    s0.sendmsg(aid, 1, RealBlob(b"urgent"))
    kernel.run(until=kernel.now + 1 * SECOND)
    arrivals = []
    while True:
        msg = s1.recvmsg()
        if msg is None:
            break
        arrivals.append((msg.stream, msg.nbytes))
    assert arrivals == [(1, 6), (0, 60_000)]
    assert assoc.stats.messages_interleaved > 0


def test_fcfs_keeps_send_order_even_with_idata():
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(interleaving=True, scheduler="fcfs")
    s0, s1, aid = _pair(kernel, cluster, cfg, cfg)

    bulk = b"B" * 60_000
    s0.sendmsg(aid, 0, RealBlob(bulk))
    s0.sendmsg(aid, 1, RealBlob(b"urgent"))
    kernel.run(until=kernel.now + 1 * SECOND)
    arrivals = []
    while True:
        msg = s1.recvmsg()
        if msg is None:
            break
        arrivals.append(msg.stream)
    assert arrivals == [0, 1]
