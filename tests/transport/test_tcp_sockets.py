"""Socket facade + Selector (select() semantics and costs)."""

from repro.simkernel import SECOND
from repro.transport.tcp import Selector
from repro.util.blobs import RealBlob

from ..conftest import make_cluster, tcp_pair


def test_readable_writable_flags():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    assert client.writable and not client.readable
    client.send(RealBlob(b"ping"))
    kernel.run(until=kernel.now + 1 * SECOND)
    assert server.readable
    server.recv(100)
    assert not server.readable


def test_selector_resolves_on_readability():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    selector = Selector(cluster.hosts[1])
    fut = selector.wait([server])
    assert not fut.done()
    client.send(RealBlob(b"data"))
    kernel.run(until=kernel.now + 1 * SECOND)
    readable, writable = fut.result()
    assert readable == [server] and writable == []


def test_selector_immediate_when_already_ready():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    fut = Selector(cluster.hosts[0]).wait([], [client])  # writable now
    assert fut.done()
    assert fut.result() == ([], [client])


def test_selector_charges_cpu_per_call():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    host = cluster.hosts[0]
    busy_before = host.cpu.total_busy_ns
    Selector(host).wait([], [client])
    expected = host.cost_model.select_cost(1)
    assert host.cpu.total_busy_ns - busy_before == expected


def test_selector_cancel_wait():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    selector = Selector(cluster.hosts[1])
    fut = selector.wait([server])
    selector.cancel_wait()
    assert fut.result() == ([], [])
    # a new wait can be issued afterwards
    fut2 = selector.wait([server])
    assert not fut2.done()


def test_selector_rejects_concurrent_waits():
    import pytest

    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    selector = Selector(cluster.hosts[1])
    selector.wait([server])
    with pytest.raises(RuntimeError):
        selector.wait([server])


def test_eof_makes_socket_readable():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    client.close()
    kernel.run(until=kernel.now + 2 * SECOND)
    assert server.readable
    assert server.recv(10).nbytes == 0  # EOF
