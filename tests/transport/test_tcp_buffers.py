"""TCP send buffer and reassembly buffer, incl. property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.tcp.buffers import ReassemblyBuffer, SendBuffer
from repro.util.blobs import ChunkList, RealBlob


# ---------------------------------------------------------------------------
# SendBuffer
# ---------------------------------------------------------------------------
def test_sendbuffer_write_and_read_range():
    sb = SendBuffer(start_seq=1000, capacity=100)
    assert sb.write(RealBlob(b"hello")) == 5
    assert sb.write(RealBlob(b"world")) == 5
    assert sb.read_range(1000, 10).to_bytes() == b"helloworld"
    assert sb.read_range(1003, 4).to_bytes() == b"lowo"


def test_sendbuffer_capacity_clips_writes():
    sb = SendBuffer(0, capacity=8)
    assert sb.write(RealBlob(b"0123456789")) == 8
    assert sb.free == 0
    assert sb.write(RealBlob(b"x")) == 0


def test_sendbuffer_release_frees_space():
    sb = SendBuffer(0, capacity=10)
    sb.write(RealBlob(b"abcdefghij"))
    assert sb.release_below(4) == 4
    assert sb.free == 4
    assert sb.read_range(4, 6).to_bytes() == b"efghij"
    # released range is gone
    with pytest.raises(ValueError):
        sb.read_range(0, 4)


def test_sendbuffer_partial_release_inside_blob():
    sb = SendBuffer(0, capacity=20)
    sb.write(RealBlob(b"abcdefgh"))
    sb.release_below(3)
    assert sb.read_range(3, 5).to_bytes() == b"defgh"


def test_sendbuffer_bytes_after():
    sb = SendBuffer(100, capacity=50)
    sb.write(RealBlob(b"x" * 30))
    assert sb.bytes_after(100) == 30
    assert sb.bytes_after(120) == 10
    assert sb.bytes_after(200) == 0


# ---------------------------------------------------------------------------
# ReassemblyBuffer
# ---------------------------------------------------------------------------
def cl(data: bytes) -> ChunkList:
    return ChunkList([RealBlob(data)])


def test_in_order_delivery():
    rb = ReassemblyBuffer(0)
    assert rb.offer(0, cl(b"abc")).to_bytes() == b"abc"
    assert rb.offer(3, cl(b"def")).to_bytes() == b"def"
    assert rb.rcv_nxt == 6


def test_out_of_order_held_then_released():
    rb = ReassemblyBuffer(0)
    assert rb.offer(3, cl(b"def")).to_bytes() == b""
    assert rb.has_gaps and rb.out_of_order_bytes == 3
    assert rb.offer(0, cl(b"abc")).to_bytes() == b"abcdef"
    assert not rb.has_gaps


def test_duplicate_discarded():
    rb = ReassemblyBuffer(0)
    rb.offer(0, cl(b"abcdef"))
    assert rb.offer(0, cl(b"abc")).to_bytes() == b""
    assert rb.offer(2, cl(b"cdef")).to_bytes() == b""
    assert rb.rcv_nxt == 6


def test_overlap_trimmed():
    rb = ReassemblyBuffer(0)
    rb.offer(0, cl(b"abcd"))
    # overlaps delivered data and brings 2 new bytes
    assert rb.offer(2, cl(b"cdef")).to_bytes() == b"ef"


def test_sack_blocks_reflect_gaps():
    rb = ReassemblyBuffer(0)
    rb.offer(10, cl(b"x" * 5))
    rb.offer(20, cl(b"y" * 5))
    blocks = rb.sack_blocks(4)
    assert set(blocks) == {(10, 15), (20, 25)}
    # most-recently-updated block reported first
    assert blocks[0] == (20, 25)
    # cap respected
    assert len(rb.sack_blocks(1)) == 1


def test_sack_blocks_cleared_when_gap_fills():
    rb = ReassemblyBuffer(0)
    rb.offer(5, cl(b"fghij"))
    assert rb.sack_blocks(4) == ((5, 10),)
    rb.offer(0, cl(b"abcde"))
    assert rb.sack_blocks(4) == ()


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_arbitrary_arrival_order_reconstructs_stream(data):
    """Segments of a random byte stream delivered in any order, with
    duplicates, always reassemble to exactly the original stream."""
    raw = data.draw(st.binary(min_size=1, max_size=120))
    # cut into segments
    cuts = sorted(
        data.draw(
            st.lists(st.integers(0, len(raw)), min_size=0, max_size=6)
        )
    )
    bounds = [0] + cuts + [len(raw)]
    segments = [
        (bounds[i], raw[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]
    order = data.draw(st.permutations(segments))
    dup = data.draw(st.booleans())
    feed = list(order) + (list(order[:2]) if dup else [])

    rb = ReassemblyBuffer(0)
    got = b""
    for seq, chunk in feed:
        got += rb.offer(seq, cl(chunk)).to_bytes()
    assert got == raw
    assert rb.rcv_nxt == len(raw)
    assert not rb.has_gaps
