"""Path state, multihoming, heartbeats, failover (paper §3.5.1)."""

from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig
from repro.transport.sctp.paths import ACTIVE, INACTIVE, PathState
from repro.util.blobs import RealBlob, SyntheticBlob

from ..conftest import make_cluster, sctp_pair
from .test_sctp_transfer import pump_messages

MTU = 1452


def make_path(**kw):
    return PathState("10.0.0.2", mtu_payload=MTU, initial_peer_rwnd=220 * 1024, **kw)


# ---------------------------------------------------------------------------
# PathState unit tests
# ---------------------------------------------------------------------------
def test_initial_cwnd_rfc4960():
    p = make_path()
    assert p.cwnd == min(4 * MTU, max(2 * MTU, 4380))
    assert p.in_slow_start  # cwnd <= ssthresh


def test_one_byte_rule():
    p = make_path()
    p.outstanding_bytes = p.cwnd - 1
    assert p.can_send()  # any space at all admits a full PMTU
    p.outstanding_bytes = p.cwnd
    assert not p.can_send()


def test_slow_start_byte_counting():
    p = make_path()
    before = p.cwnd
    p.on_bytes_acked(10_000, cwnd_was_full=True)
    assert p.cwnd == before + MTU  # growth capped at one PMTU per SACK
    before = p.cwnd
    p.on_bytes_acked(500, cwnd_was_full=True)
    assert p.cwnd == before + 500  # ... and at the bytes actually acked
    before = p.cwnd
    p.on_bytes_acked(500, cwnd_was_full=False)
    assert p.cwnd == before  # idle windows never grow


def test_congestion_avoidance_partial_bytes():
    p = make_path()
    p.ssthresh = p.cwnd - 1  # force CA
    grown = 0
    for _ in range(10):
        before = p.cwnd
        p.on_bytes_acked(MTU, cwnd_was_full=True)
        grown += p.cwnd - before
    assert 0 < grown <= 4 * MTU  # roughly one PMTU per cwnd of data


def test_fast_retransmit_halves_once_per_loss_event():
    p = make_path()
    p.cwnd = 20 * MTU
    p.on_fast_retransmit(highest_outstanding_tsn=100)
    halved = p.cwnd
    assert halved == max(10 * MTU, 4 * MTU)
    p.on_fast_retransmit(highest_outstanding_tsn=101)  # same event window
    assert p.cwnd == halved  # NewReno-SCTP: no double halving
    p.on_cum_advance(100)  # loss event fully repaired
    p.on_fast_retransmit(highest_outstanding_tsn=200)
    assert p.cwnd < halved


def test_timeout_collapses_to_one_mtu():
    p = make_path()
    p.cwnd = 30 * MTU
    p.on_timeout()
    assert p.cwnd == MTU
    assert p.ssthresh == max(15 * MTU, 4 * MTU)


def test_error_counting_and_reactivation():
    p = make_path(path_max_retrans=2)
    for _ in range(3):
        p.note_error()
    assert p.state == INACTIVE
    p.note_success()
    assert p.state == ACTIVE and p.error_count == 0


# ---------------------------------------------------------------------------
# multihoming end-to-end
# ---------------------------------------------------------------------------
def failover_config():
    return SCTPConfig(path_max_retrans=1, heartbeat_interval_ns=2 * SECOND)


def test_association_learns_all_peer_addresses():
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    assert set(assoc.paths) == {"10.0.0.2", "10.1.0.2"}
    assert assoc.primary_addr == "10.0.0.2"


def test_failover_to_alternate_path():
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster, config=failover_config())
    assoc = s0.association(aid)
    # sever the primary subnet, then send
    cluster.fail_path(0)
    sent = 0
    bodies = 6

    async def sender():
        nonlocal sent
        while sent < bodies:
            if s0.sendmsg(aid, 0, SyntheticBlob(2_000)):
                sent += 1
            else:
                await kernel.sleep(5_000_000)

    kernel.spawn(sender())
    msgs = pump_messages(kernel, s1, bodies, limit_s=300)
    assert len(msgs) == bodies
    assert assoc.paths["10.0.0.2"].state == INACTIVE
    assert assoc.paths["10.1.0.2"].state == ACTIVE
    assert assoc.stats.failovers > 0


def test_retransmissions_prefer_alternate_path():
    """§4.1.1 final bullet: with both paths alive, a retransmission goes
    to an alternate active address, not the path that lost the chunk."""
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2, loss_rate=0.05, seed=8)
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    for _ in range(20):
        s0.sendmsg(aid, 0, RealBlob(b"r" * 4_000))
    pump_messages(kernel, s1, 20, limit_s=300)
    assert assoc.stats.retransmitted_chunks > 0
    assert assoc.stats.failovers > 0  # retransmits moved to the alternate


def test_fast_retransmit_strikes_are_hash_order_independent():
    """Regression: the fast-retransmit path-strike pass once iterated a
    ``set`` of address strings, so strike order — and therefore cwnd
    evolution — varied with PYTHONHASHSEED.  The lossy multihomed run
    below must now produce identical outcomes under different seeds."""
    import json
    import os
    import subprocess
    import sys

    script = (
        "from repro.simkernel import Kernel\n"
        "from repro.network import ClusterConfig, build_cluster\n"
        "from repro.transport.sctp import OneToManySocket, SCTPConfig, SCTPEndpoint\n"
        "from repro.util.blobs import RealBlob\n"
        "import json\n"
        "kernel = Kernel(seed=8)\n"
        "cluster = build_cluster(kernel, ClusterConfig(\n"
        "    n_hosts=2, loss_rate=0.05, n_paths=2))\n"
        "cfg = SCTPConfig()\n"
        "e0 = SCTPEndpoint(cluster.hosts[0], cfg)\n"
        "e1 = SCTPEndpoint(cluster.hosts[1], cfg)\n"
        "s0 = OneToManySocket(e0, 6000, cfg)\n"
        "s1 = OneToManySocket(e1, 6000, cfg)\n"
        "fut = s0.connect(cluster.host_address(1), 6000)\n"
        "aid = kernel.run_until(fut, limit=60_000_000_000)\n"
        "for _ in range(20):\n"
        "    s0.sendmsg(aid, 0, RealBlob(b'r' * 4_000))\n"
        "got = 0\n"
        "async def pump():\n"
        "    global got\n"
        "    while got < 20:\n"
        "        if s1.recvmsg() is None:\n"
        "            await kernel.sleep(1_000_000)\n"
        "        else:\n"
        "            got += 1\n"
        "kernel.spawn(pump())\n"
        "kernel.run(until=kernel.now + 300_000_000_000)\n"
        "assoc = s0.association(aid)\n"
        "print(json.dumps({'got': got, 'now': kernel.now,\n"
        "    'rtx': assoc.stats.retransmitted_chunks,\n"
        "    'frtx': assoc.stats.fast_retransmits,\n"
        "    'cwnd': {a: p.cwnd for a, p in assoc.paths.items()}},\n"
        "    sort_keys=True))\n"
    )

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

    def run(seed):
        env = dict(os.environ, PYTHONHASHSEED=str(seed))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True,
            text=True, timeout=300, check=True,
        )
        return json.loads(out.stdout)

    first, second = run(1), run(424242)
    assert first == second
    assert first["got"] == 20
    assert first["frtx"] > 0  # the strike pass actually ran


def _drive_failover(kernel, cluster, s0, s1, aid, bodies=6):
    """Sever the primary subnet and push traffic until it fails over."""
    cluster.fail_path(0)
    sent = 0

    async def sender():
        nonlocal sent
        while sent < bodies:
            if s0.sendmsg(aid, 0, SyntheticBlob(2_000)):
                sent += 1
            else:
                await kernel.sleep(5_000_000)

    kernel.spawn(sender())
    msgs = pump_messages(kernel, s1, bodies, limit_s=300)
    assert len(msgs) == bodies


def test_heartbeat_ack_resets_error_count_after_failover():
    """RFC 4960 §8.3: a HEARTBEAT-ACK on a failed-over path clears its
    error count and flips it back to ACTIVE — the error budget must not
    stay spent once the path has proven itself again."""
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster, config=failover_config())
    assoc = s0.association(aid)
    _drive_failover(kernel, cluster, s0, s1, aid)
    primary = assoc.paths["10.0.0.2"]
    assert primary.state == INACTIVE and primary.error_count > 0
    acks_before = assoc.stats.heartbeat_acks_received
    cluster.restore_path(0)
    kernel.run(until=kernel.now + 60 * SECOND)
    assert assoc.stats.heartbeat_acks_received > acks_before
    assert primary.error_count == 0
    assert primary.state == ACTIVE


def test_failback_to_primary_after_path_restore():
    """Failback: once heartbeats reactivate the restored primary, data
    selection prefers it over the alternate that carried the failover
    traffic, and transfers complete on the failback path."""
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster, config=failover_config())
    assoc = s0.association(aid)
    _drive_failover(kernel, cluster, s0, s1, aid)
    assert assoc._active_path().addr == "10.1.0.2"  # data on the alternate
    cluster.restore_path(0)
    kernel.run(until=kernel.now + 60 * SECOND)
    assert assoc.paths["10.0.0.2"].state == ACTIVE
    assert assoc.primary_addr == "10.0.0.2"  # failover never moved primary
    assert assoc._active_path().addr == "10.0.0.2"  # selection is back on it
    for _ in range(4):
        assert s0.sendmsg(aid, 0, SyntheticBlob(2_000))
    msgs = pump_messages(kernel, s1, 4, limit_s=300)
    assert len(msgs) == 4


def test_heartbeats_probe_idle_paths():
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    cfg = SCTPConfig(heartbeat_interval_ns=1 * SECOND)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
    assoc = s0.association(aid)
    kernel.run(until=kernel.now + 10 * SECOND)
    # the alternate path has carried no data; only heartbeats keep its RTT
    alt = assoc.paths["10.1.0.2"]
    assert alt.rto.srtt_ns is not None  # heartbeat-ack produced an RTT sample
    assert alt.state == ACTIVE


def test_set_primary():
    import pytest

    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    assoc.set_primary("10.1.0.2")
    assert assoc.primary_addr == "10.1.0.2"
    with pytest.raises(ValueError):
        assoc.set_primary("10.9.9.9")
