"""RTT estimation and RTO policy (RFC 6298 arithmetic + personalities)."""

import pytest

from repro.simkernel import MILLISECOND, SECOND
from repro.transport.base import (
    BSD_TCP_TIMERS,
    KAME_SCTP_TIMERS,
    RTOEstimator,
    TimerPersonality,
)

FINE = TimerPersonality(
    min_rto_ns=1_000, max_rto_ns=60 * SECOND, initial_rto_ns=3 * SECOND, granularity_ns=0
)


def test_initial_rto_before_any_sample():
    est = RTOEstimator(BSD_TCP_TIMERS)
    assert est.rto_ns == BSD_TCP_TIMERS.clamp(3 * SECOND)


def test_first_sample_sets_srtt_and_rttvar():
    est = RTOEstimator(FINE)
    est.observe(100_000)
    assert est.srtt_ns == 100_000
    assert est.rttvar_ns == 50_000
    # RTO = srtt + 4*rttvar = 300_000 (granularity 0)
    assert est.rto_ns == 300_000


def test_ewma_converges_toward_stable_rtt():
    est = RTOEstimator(FINE)
    for _ in range(50):
        est.observe(200_000)
    assert abs(est.srtt_ns - 200_000) < 5_000
    assert est.rttvar_ns < 20_000


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RTOEstimator(FINE).observe(-1)


def test_backoff_doubles_and_caps():
    est = RTOEstimator(FINE)
    est.observe(1_000_000)
    base = est.rto_ns
    est.back_off()
    assert est.rto_ns == min(2 * base, FINE.max_rto_ns)
    for _ in range(40):
        est.back_off()
    assert est.rto_ns == FINE.max_rto_ns


def test_new_sample_resets_backoff():
    est = RTOEstimator(FINE)
    est.observe(1_000_000)
    est.back_off()
    est.back_off()
    est.observe(1_000_000)
    assert est.backoff_exponent == 0


def test_bsd_personality_quantizes_to_500ms_ticks():
    est = RTOEstimator(BSD_TCP_TIMERS)
    est.observe(30 * MILLISECOND)  # LAN-ish RTT
    # quantized up to a tick multiple and clamped to the 1 s minimum
    assert est.rto_ns == 1 * SECOND
    est.back_off()
    # doubled base (2 x 530 ms), rounded up to the next 500 ms tick
    assert est.rto_ns == 1_500_000_000
    assert est.rto_ns % BSD_TCP_TIMERS.granularity_ns == 0


def test_kame_personality_min_one_second():
    est = RTOEstimator(KAME_SCTP_TIMERS)
    est.observe(100_000)  # 100 us RTT
    assert est.rto_ns == 1 * SECOND


def test_clamp_respects_granularity_and_bounds():
    p = TimerPersonality(
        min_rto_ns=100, max_rto_ns=1_000, initial_rto_ns=500, granularity_ns=30
    )
    assert p.clamp(101) == 120  # rounded up to a 30 ns tick
    assert p.clamp(5) == 100  # min clamp
    assert p.clamp(10_000) == 1_000  # max clamp
