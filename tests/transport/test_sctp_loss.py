"""SCTP loss recovery: SACK gaps, fast retransmit, T3, integrity."""

from hypothesis import given, settings, strategies as st

from repro.faults.impairments import copy_packet
from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig
from repro.util.blobs import RealBlob

from ..conftest import make_cluster, sctp_pair
from .test_sctp_transfer import pump_messages


def test_integrity_under_loss_with_fast_retransmit():
    kernel, cluster = make_cluster(loss_rate=0.02, seed=4)
    s0, s1, aid = sctp_pair(kernel, cluster)
    bodies = [bytes([i % 251]) * (3_000 + 101 * i) for i in range(30)]
    sent = 0
    deadline = kernel.now + 300 * SECOND

    async def sender():
        nonlocal sent
        while sent < len(bodies):
            if s0.sendmsg(aid, sent % 10, RealBlob(bodies[sent])):
                sent += 1
            else:
                await kernel.sleep(1_000_000)

    kernel.spawn(sender())
    msgs = pump_messages(kernel, s1, len(bodies), limit_s=300)
    received = sorted(m.data.to_bytes() for m in msgs)
    assert received == sorted(bodies)
    stats = s0.association(aid).stats
    assert stats.retransmitted_chunks > 0
    assert stats.fast_retransmits > 0


def test_per_stream_order_holds_under_loss():
    kernel, cluster = make_cluster(loss_rate=0.03, seed=9)
    s0, s1, aid = sctp_pair(kernel, cluster)
    for i in range(24):
        assert s0.sendmsg(aid, i % 4, RealBlob(bytes([i]) * 2000))
    msgs = pump_messages(kernel, s1, 24, limit_s=300)
    per_stream = {}
    for m in msgs:
        per_stream.setdefault(m.stream, []).append(m.ssn)
    for sids in per_stream.values():
        assert sids == sorted(sids)  # SSN order per stream, no gaps skipped
    assert sum(len(v) for v in per_stream.values()) == 24


def test_duplicate_tsns_detected_not_delivered_twice():
    kernel, cluster = make_cluster(seed=2)
    s0, s1, aid = sctp_pair(kernel, cluster)
    # duplicate every data packet on the wire
    pipe = cluster.pipe_for(0)
    sink = pipe.sink

    def duplicator(pkt):
        # copy first: a duplicate is a distinct wire datagram, and the
        # original may be released back to the packet pool on delivery
        dup = None
        if pkt.proto == "sctp" and pkt.payload.data_chunks():
            dup = copy_packet(pkt)
        sink(pkt)
        if dup is not None:
            sink(dup)

    pipe.sink = duplicator
    for i in range(5):
        s0.sendmsg(aid, 0, RealBlob(b"msg%d" % i))
    msgs = pump_messages(kernel, s1, 5)
    assert len(msgs) == 5
    kernel.run(until=kernel.now + 2 * SECOND)
    server_assoc = next(iter(s1._assocs.values()))
    assert server_assoc.stats.duplicate_tsns > 0
    assert server_assoc.stats.messages_delivered == 5


def test_tail_loss_repaired_by_t3():
    kernel, cluster = make_cluster(seed=1)
    s0, s1, aid = sctp_pair(kernel, cluster)
    # drop the very last data packet of the burst once
    pipe = cluster.pipe_for(0)
    sink = pipe.sink
    state = {"seen": 0}

    def drop_fourth(pkt):
        if pkt.proto == "sctp" and pkt.payload.data_chunks():
            state["seen"] += 1
            if state["seen"] == 4:
                return
        sink(pkt)

    pipe.sink = drop_fourth
    body = b"t" * 5_000  # 4 chunks; the last one is dropped
    s0.sendmsg(aid, 0, RealBlob(body))
    msgs = pump_messages(kernel, s1, 1, limit_s=60)
    assert msgs[0].data.to_bytes() == body
    assert s0.association(aid).stats.rto_events >= 1


def test_gap_ack_blocks_reported():
    kernel, cluster = make_cluster(loss_rate=0.05, seed=6)
    s0, s1, aid = sctp_pair(kernel, cluster)
    for _ in range(20):
        s0.sendmsg(aid, 0, RealBlob(b"x" * 4000))
    pump_messages(kernel, s1, 20, limit_s=300)
    assert s0.association(aid).stats.sacks_received > 0
    server_assoc = next(iter(s1._assocs.values()))
    assert server_assoc.stats.sacks_sent > 0


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_integrity_for_arbitrary_loss_patterns(seed):
    """Property: any seeded 4% loss pattern — every message arrives intact,
    exactly once, per-stream in order."""
    kernel, cluster = make_cluster(loss_rate=0.04, seed=seed)
    s0, s1, aid = sctp_pair(kernel, cluster)
    bodies = [bytes([(i * 13 + seed) % 256]) * (500 + 700 * i) for i in range(12)]
    for i, body in enumerate(bodies):
        assert s0.sendmsg(aid, i % 3, RealBlob(body))
    msgs = pump_messages(kernel, s1, len(bodies), limit_s=600)
    assert sorted(m.data.to_bytes() for m in msgs) == sorted(bodies)
    per_stream = {}
    for m in msgs:
        per_stream.setdefault(m.stream, []).append(m.ssn)
    assert all(v == sorted(v) for v in per_stream.values())
