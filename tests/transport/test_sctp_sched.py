"""Stream-scheduler policies: ordering, stickiness, fairness ratios."""

import pytest

from repro.transport.sctp.sched import (
    SCHEDULER_NAMES,
    FCFSScheduler,
    QueuedMessage,
    make_scheduler,
)
from repro.util.blobs import SyntheticBlob

FRAG = 1452  # one PMTU payload's worth, like the association cuts


def qm(sid, nbytes, unordered=False):
    return QueuedMessage(sid, SyntheticBlob(nbytes), unordered, 0)


def drain(sched, frag=FRAG, limit=100_000):
    """Consume everything, recording (sid, take) per fragment."""
    served = []
    for _ in range(limit):
        head = sched.peek()
        if head is None:
            break
        take = min(frag, head.nbytes - head.offset)
        sched.consume(take)
        served.append((head.sid, take))
    assert sched.peek() is None
    return served


def test_make_scheduler_names_and_errors():
    for name in SCHEDULER_NAMES:
        assert make_scheduler(name, 4).name == name
    with pytest.raises(ValueError, match="fcfs"):
        make_scheduler("lifo", 4)
    with pytest.raises(ValueError):
        make_scheduler("wfq", 2, weights=(0, 1))


def test_fcfs_serves_in_push_order():
    sched = FCFSScheduler(4)
    sched.set_interleaving(True)  # FCFS never preempts regardless
    sched.push(qm(2, 3 * FRAG))
    sched.push(qm(0, FRAG))
    sched.push(qm(1, FRAG))
    assert [s for s, _ in drain(sched)] == [2, 2, 2, 0, 1]
    assert sched.interleave_switches == 0


def test_rr_is_message_sticky_without_interleaving():
    sched = make_scheduler("rr", 3)
    sched.push(qm(0, 3 * FRAG))
    sched.push(qm(1, FRAG))
    # the bulk on stream 0 keeps the wire until it completes
    assert [s for s, _ in drain(sched)] == [0, 0, 0, 1]
    assert sched.interleave_switches == 0


def test_rr_alternates_fragments_with_interleaving():
    sched = make_scheduler("rr", 3)
    sched.set_interleaving(True)
    sched.push(qm(0, 3 * FRAG))
    sched.push(qm(1, 3 * FRAG))
    assert [s for s, _ in drain(sched)] == [0, 1, 0, 1, 0, 1]
    # fragments 2-5 each leave the other message unfinished; the final
    # fragment follows a *completed* message, so it is not a switch
    assert sched.interleave_switches == 4
    assert sched.decisions == 6


def test_rr_mid_message_arrival_gets_service():
    sched = make_scheduler("rr", 2)
    sched.set_interleaving(True)
    sched.push(qm(0, 4 * FRAG))
    # consume one fragment, then a second stream shows up
    sched.consume(FRAG) if sched.peek() else None
    sched.push(qm(1, FRAG))
    assert [s for s, _ in drain(sched)] == [1, 0, 0, 0]


def test_wfq_converges_to_weight_ratios():
    """Shares are measured over a window in which every stream stays
    backlogged (drain-to-empty trivially serves everything equally)."""
    sched = make_scheduler("wfq", 3, weights=(1, 2, 4))
    sched.set_interleaving(True)
    for sid in range(3):
        for _ in range(40):
            sched.push(qm(sid, 10 * FRAG))
    served = [0, 0, 0]
    for _ in range(140):  # well short of the ~1200-fragment backlog
        head = sched.peek()
        take = min(FRAG, head.nbytes - head.offset)
        sched.consume(take)
        served[head.sid] += take
    assert all(sched._queues[sid] for sid in range(3))  # still backlogged
    total = sum(served)
    for sid, weight in enumerate((1, 2, 4)):
        share = served[sid] / total
        expect = weight / 7
        assert abs(share - expect) / expect < 0.25, (sid, share, expect)


def test_wfq_single_stream_never_stalls():
    """A sticky bulk message may overdraw its deficit arbitrarily; the
    refill loop must still hand out the next message."""
    sched = make_scheduler("wfq", 2, weights=(1, 1))
    sched.push(qm(0, 50 * FRAG))  # overdraws ~49 quanta while sticky
    sched.push(qm(0, FRAG))
    served = drain(sched)
    assert len(served) == 51


def test_wfq_zero_byte_message_completes():
    sched = make_scheduler("wfq", 2)
    sched.push(qm(1, 0))
    head = sched.peek()
    assert head.nbytes == 0
    assert sched.consume(0) is True
    assert sched.peek() is None


def test_prio_preempts_by_stream_priority():
    # lower number = more urgent; stream 2 outranks 0 and 1
    sched = make_scheduler("prio", 3, priorities=(5, 5, 1))
    sched.set_interleaving(True)
    sched.push(qm(0, 2 * FRAG))
    sched.push(qm(1, FRAG))
    sched.push(qm(2, 2 * FRAG))
    order = [s for s, _ in drain(sched)]
    assert order == [2, 2, 0, 0, 1]  # prio first, then lowest sid


def test_prio_equal_priorities_tie_break_on_sid():
    sched = make_scheduler("prio", 3)
    sched.push(qm(2, FRAG))
    sched.push(qm(1, FRAG))
    assert [s for s, _ in drain(sched)] == [1, 2]


def test_decisions_and_pending_bookkeeping():
    sched = make_scheduler("rr", 2)
    assert not sched.has_pending()
    sched.push(qm(0, 2 * FRAG))
    sched.push(qm(1, FRAG))
    assert sched.has_pending()
    drain(sched)
    assert not sched.has_pending()
    assert sched.decisions == 3
