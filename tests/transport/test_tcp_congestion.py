"""NewReno arithmetic unit tests + end-to-end cwnd behaviour."""

from repro.transport.tcp import NewRenoState

from ..conftest import make_cluster, tcp_pair
from .test_tcp_connection import transfer

MSS = 1448


def test_initial_window_three_segments():
    cc = NewRenoState(MSS)
    assert cc.cwnd == 3 * MSS
    assert cc.in_slow_start


def test_slow_start_grows_per_ack():
    cc = NewRenoState(MSS)
    start = cc.cwnd
    cc.on_new_ack(MSS)
    assert cc.cwnd == start + MSS
    cc.on_new_ack(500)  # growth capped at bytes actually acked
    assert cc.cwnd == start + MSS + 500


def test_congestion_avoidance_linear():
    cc = NewRenoState(MSS)
    cc.ssthresh = 2 * MSS  # force CA
    grown = 0
    for _ in range(10):
        before = cc.cwnd
        cc.on_new_ack(MSS)
        grown += cc.cwnd - before
    # ~MSS^2/cwnd per ack: far less than slow start's MSS per ack
    assert 0 < grown < 10 * MSS // 2


def test_fast_recovery_cycle():
    cc = NewRenoState(MSS)
    cc.cwnd = 20 * MSS
    cc.ssthresh = 100 * MSS
    cc.enter_fast_recovery(flight_size=20 * MSS, highest_out=12345)
    assert cc.in_recovery and cc.recover == 12345
    assert cc.ssthresh == 10 * MSS
    assert cc.cwnd == 13 * MSS  # ssthresh + 3 dupacks
    cc.on_dupack_in_recovery()
    assert cc.cwnd == 14 * MSS
    cc.on_partial_ack(4 * MSS)
    assert cc.cwnd == 11 * MSS  # deflate by acked, re-inflate one MSS
    cc.exit_recovery()
    assert not cc.in_recovery and cc.cwnd == 10 * MSS


def test_timeout_resets_to_one_segment():
    cc = NewRenoState(MSS)
    cc.cwnd = 30 * MSS
    cc.on_timeout(flight_size=30 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == 15 * MSS
    assert cc.timeouts == 1


def test_ssthresh_floor_two_segments():
    cc = NewRenoState(MSS)
    cc.on_timeout(flight_size=MSS)
    assert cc.ssthresh == 2 * MSS


def test_end_to_end_cwnd_opens_during_bulk_transfer():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    transfer(client, server, kernel, b"a" * 400_000)
    assert client.conn.cc.cwnd > 20 * MSS  # window opened well past initial


def test_end_to_end_loss_halves_window():
    kernel, cluster = make_cluster(loss_rate=0.01, seed=9)
    client, server, _ = tcp_pair(kernel, cluster)
    transfer(client, server, kernel, b"b" * 400_000)
    assert client.conn.cc.fast_retransmits + client.conn.cc.timeouts > 0
    # after loss events, ssthresh must have been pulled down from "infinite"
    assert client.conn.cc.ssthresh < (1 << 30)
