"""On-wire corruption is rejected by both stacks' integrity checks.

Paper §3.5.2: SCTP validates CRC32c and the verification tag; TCP its
16-bit checksum.  The simulation models the check's *outcome*: packets
a :class:`repro.faults.Corrupt` impairment marked arrive with
``corrupted=True`` and the endpoint must drop and count them before
demux — reliability then recovers the data via retransmission.
"""

import pytest

from repro.core.world import World, WorldConfig
from repro.faults import corruption
from repro.network import Packet
from repro.simkernel import SECOND
from repro.workloads.mpbench import make_pingpong

LIMIT_NS = 120 * SECOND


@pytest.mark.parametrize("rpi", ["sctp", "tcp"])
def test_corrupted_packets_dropped_and_recovered(rpi):
    config = WorldConfig(
        n_procs=2, rpi=rpi, seed=3, scenario=corruption(rate=0.05)
    )
    world = World(config)
    result = world.run(make_pingpong(30 * 1024, 10), limit_ns=LIMIT_NS)
    assert result.results[0] is not None, "reliability must mask corruption"
    endpoints = world.sctp_endpoints if rpi == "sctp" else world.tcp_endpoints
    if rpi == "sctp":
        drops = sum(ep.crc32c_drops for ep in endpoints)
    else:
        drops = sum(ep.checksum_drops for ep in endpoints)
    assert drops > 0, "the integrity check must have fired"


@pytest.mark.parametrize("rpi", ["sctp", "tcp"])
def test_corrupted_packet_never_reaches_demux(rpi):
    world = World(WorldConfig(n_procs=2, rpi=rpi))
    ep = (world.sctp_endpoints if rpi == "sctp" else world.tcp_endpoints)[0]
    # payload is garbage on purpose: the drop must happen before parsing
    bad = Packet(
        src="10.0.0.1", dst="10.0.0.2", proto=rpi, payload=object(), wire_size=60
    )
    bad.corrupted = True
    ep.receive(bad)
    if rpi == "sctp":
        assert ep.crc32c_drops == 1
    else:
        assert ep.checksum_drops == 1
