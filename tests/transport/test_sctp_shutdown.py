"""Association teardown: graceful shutdown, abort, autoclose."""

import pytest

from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig
from repro.util.blobs import RealBlob

from ..conftest import make_cluster, sctp_pair
from .test_sctp_transfer import pump_messages


def test_graceful_shutdown_completes_both_sides():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    kernel.run(until=kernel.now + 1 * SECOND)
    server_assoc = next(iter(s1._assocs.values()))
    assoc.close()
    kernel.run(until=kernel.now + 20 * SECOND)
    assert assoc.state == "CLOSED"
    assert server_assoc.state == "CLOSED"


def test_shutdown_delivers_pending_data_first():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    s0.sendmsg(aid, 0, RealBlob(b"last words"))
    s0.association(aid).close()
    msgs = pump_messages(kernel, s1, 1)
    assert msgs[0].data.to_bytes() == b"last words"
    kernel.run(until=kernel.now + 20 * SECOND)
    assert s0.association.__self__ if False else True  # assoc gone from socket
    assert aid not in s0._assocs


def test_no_half_closed_state():
    """After close(), *neither* side may send new data — unlike TCP's
    half-closed state (paper §3.5.2)."""
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    assoc = s0.association(aid)
    assoc.close()
    with pytest.raises(BrokenPipeError):
        assoc.send_message(0, RealBlob(b"too late"))


def test_abort_tears_down_immediately():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    kernel.run(until=kernel.now + 1 * SECOND)
    server_assoc = next(iter(s1._assocs.values()))
    closed = []
    s1.on_assoc_down = lambda a, err: closed.append((a, err))
    s0.association(aid).abort("test abort")
    kernel.run(until=kernel.now + 2 * SECOND)
    assert server_assoc.state == "CLOSED"
    assert closed and "test abort" in closed[0][1]


def test_autoclose_idle_association():
    """The paper's §3.5.2 autoclose option: an idle association closes
    itself after the configured interval."""
    kernel, cluster = make_cluster()
    cfg = SCTPConfig(autoclose_ns=3 * SECOND)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
    assoc = s0.association(aid)
    s0.sendmsg(aid, 0, RealBlob(b"only message"))
    pump_messages(kernel, s1, 1)
    assert assoc.state == "ESTABLISHED"
    kernel.run(until=kernel.now + 30 * SECOND)
    assert assoc.state == "CLOSED"


def test_autoclose_disabled_by_default():
    kernel, cluster = make_cluster()
    s0, s1, aid = sctp_pair(kernel, cluster)
    s0.sendmsg(aid, 0, RealBlob(b"m"))
    pump_messages(kernel, s1, 1)
    kernel.run(until=kernel.now + 120 * SECOND)
    assert s0.association(aid).state == "ESTABLISHED"


def test_socket_close_shuts_all_associations():
    kernel, cluster = make_cluster(n_hosts=3)
    from repro.transport.sctp import OneToManySocket, SCTPEndpoint

    cfg = SCTPConfig()
    eps = [SCTPEndpoint(h, cfg) for h in cluster.hosts]
    socks = [OneToManySocket(e, 6000, cfg) for e in eps]
    f1 = socks[0].connect(cluster.host_address(1), 6000)
    f2 = socks[0].connect(cluster.host_address(2), 6000)
    kernel.run_until(f1, limit=10 * SECOND)
    kernel.run_until(f2, limit=10 * SECOND)
    assert len(socks[0]._assocs) == 2
    socks[0].close()
    kernel.run(until=kernel.now + 30 * SECOND)
    assert len(socks[0]._assocs) == 0
