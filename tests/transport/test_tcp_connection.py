"""TCP connection behaviour: handshake, transfer, flow control, teardown."""

import pytest

from repro.simkernel import SECOND
from repro.transport.tcp import TCPConfig, TCPEndpoint, TCPListener, TCPSocket
from repro.util.blobs import ChunkList, RealBlob, SyntheticBlob

from ..conftest import make_cluster, tcp_pair


def transfer(client, server, kernel, data: bytes, chunk=1 << 20) -> bytes:
    """Blocking-style helper: push data client->server, return what arrives."""

    async def sender():
        blob = RealBlob(data)
        off = 0
        while off < len(data):
            n = client.send(blob.slice(off, len(data)))
            if n == 0:
                await kernel.sleep(200_000)
            off += n

    got = ChunkList()

    async def receiver():
        while got.nbytes < len(data):
            piece = server.recv(chunk)
            if piece is None or piece.nbytes == 0:
                await kernel.sleep(100_000)
                continue
            got.extend(piece)

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run(until=kernel.now + 120 * SECOND)
    kernel.check_tasks()
    return got.to_bytes()


def test_handshake_establishes_both_sides():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    assert client.conn.state == "ESTABLISHED"
    assert server.conn.state == "ESTABLISHED"
    # three segments: SYN, SYN|ACK, ACK
    assert client.conn.stats.segments_sent >= 2
    assert server.conn.stats.segments_sent >= 1


def test_small_transfer_integrity():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    assert transfer(client, server, kernel, b"hello tcp world") == b"hello tcp world"


def test_large_transfer_integrity():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    data = bytes(range(256)) * 2000  # 512 000 bytes > buffers
    assert transfer(client, server, kernel, data) == data


def test_send_returns_zero_when_buffer_full():
    kernel, cluster = make_cluster()
    cfg = TCPConfig(sndbuf=10_000)
    client, server, _ = tcp_pair(kernel, cluster, config=cfg)
    total = 0
    while True:
        n = client.send(SyntheticBlob(4_000))
        if n == 0:
            break
        total += n
    assert total == 10_000  # exactly the send buffer


def test_flow_control_blocks_sender_when_receiver_slow():
    kernel, cluster = make_cluster()
    cfg = TCPConfig(sndbuf=64_000, rcvbuf=32_000)
    client, server, _ = tcp_pair(kernel, cluster, config=cfg)

    async def push():
        sent = 0
        while sent < 200_000:
            n = client.send(SyntheticBlob(8_000))
            if n == 0:
                await kernel.sleep(1_000_000)
            sent += n

    kernel.spawn(push())
    kernel.run(until=kernel.now + 2 * SECOND)
    # receiver never reads: delivery must stall near the 32 KB window
    buffered = server.conn.app_readable_bytes()
    assert buffered <= 32_000 + 16  # window + at most a few persist probes
    assert buffered >= 16_000
    # now drain and confirm the window reopens and more data flows
    server.conn.app_read(1 << 20)
    kernel.run(until=kernel.now + 5 * SECOND)
    assert server.conn.app_readable_bytes() > 0


def test_zero_window_persist_probe():
    kernel, cluster = make_cluster()
    cfg = TCPConfig(sndbuf=64_000, rcvbuf=8_000)
    client, server, _ = tcp_pair(kernel, cluster, config=cfg)

    async def push():
        sent = 0
        while sent < 40_000:
            n = client.send(SyntheticBlob(4_000))
            if n == 0:
                await kernel.sleep(2_000_000)
            sent += n

    kernel.spawn(push())
    kernel.run(until=kernel.now + 30 * SECOND)
    assert client.conn.stats.persist_probes > 0
    # drain; transfer must resume
    async def drain_all():
        got = 0
        while got < 40_000:
            piece = server.recv(1 << 20)
            if piece is None or piece.nbytes == 0:
                await kernel.sleep(1_000_000)
                continue
            got += piece.nbytes

    kernel.spawn(drain_all())
    kernel.run(until=kernel.now + 60 * SECOND)
    kernel.check_tasks()


def test_nagle_coalesces_small_writes():
    kernel, cluster = make_cluster()
    on = TCPConfig(nagle=True)
    client, server, _ = tcp_pair(kernel, cluster, config=on)
    for _ in range(20):
        client.send(RealBlob(b"tiny"))
    kernel.run(until=kernel.now + 1 * SECOND)
    nagle_segments = client.conn.stats.segments_sent

    kernel2, cluster2 = make_cluster()
    off = TCPConfig(nagle=False)
    client2, server2, _ = tcp_pair(kernel2, cluster2, config=off)
    for _ in range(20):
        client2.send(RealBlob(b"tiny"))
    kernel2.run(until=kernel2.now + 1 * SECOND)
    no_nagle_segments = client2.conn.stats.segments_sent

    assert nagle_segments < no_nagle_segments


def test_delayed_ack_reduces_pure_acks():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    data = b"z" * 100_000
    transfer(client, server, kernel, data)
    # receiver acks roughly every other segment, not every one
    data_segments = client.conn.stats.segments_sent
    acks_from_server = server.conn.stats.segments_sent
    assert acks_from_server < data_segments


def test_graceful_close_fin_exchange():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    client.send(RealBlob(b"bye"))
    client.close()
    kernel.run(until=kernel.now + 5 * SECOND)
    # server sees data then EOF
    assert server.recv(100).to_bytes() == b"bye"
    assert server.readable  # EOF is a readable event
    assert server.recv(100).nbytes == 0
    assert server.conn.state in ("CLOSE_WAIT",)
    # half-closed: server may still send back (TCP allows this, §3.5.2)
    assert server.send(RealBlob(b"reply")) == 5
    kernel.run(until=kernel.now + 5 * SECOND)
    assert client.recv(100).to_bytes() == b"reply"
    server.close()
    kernel.run(until=kernel.now + 10 * SECOND)
    assert server.conn.state == "CLOSED"


def test_duplicate_fin_is_reacked_not_recounted():
    """Regression: a retransmitted FIN (lost ACK) must not advance rcv_nxt
    a second time — doing so would ACK a sequence number the peer never
    sent and corrupt the close handshake."""
    from repro.transport.tcp.segment import FIN, TCPSegment

    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    client.close()
    kernel.run(until=kernel.now + 5 * SECOND)
    assert server.conn._eof
    rcv_nxt = server.conn.reassembly.rcv_nxt
    acks_before = server.conn.stats.segments_sent
    # replay the FIN as if our ACK had been lost in the network
    dup = TCPSegment(
        src_port=client.conn.local_port,
        dst_port=server.conn.local_port,
        seq=client.conn._fin_seq,
        ack=0,
        flags=FIN,
        window=65_535,
    )
    server.conn.on_segment(dup)
    assert server.conn.reassembly.rcv_nxt == rcv_nxt  # not re-counted
    assert server.conn.stats.segments_sent > acks_before  # but re-ACKed


def test_fin_before_receive_direction_initialised_is_ignored():
    """Regression companion: a FIN reaching a connection whose receive
    direction never initialised (no reassembly buffer) must be a no-op,
    not an AttributeError."""
    from repro.transport.tcp.segment import FIN, TCPSegment

    kernel, cluster = make_cluster()
    e0 = TCPEndpoint(cluster.hosts[0])
    sock = TCPSocket.connect(e0, cluster.host_address(1), 4242)
    assert sock.conn.reassembly is None  # SYN_SENT: nothing received yet
    stray = TCPSegment(src_port=4242, dst_port=sock.conn.local_port,
                       seq=1, ack=0, flags=FIN, window=65_535)
    sock.conn._process_fin(stray)  # must not raise
    assert not sock.conn._eof


def test_abort_resets_peer():
    kernel, cluster = make_cluster()
    client, server, _ = tcp_pair(kernel, cluster)
    client.abort()
    kernel.run(until=kernel.now + 1 * SECOND)
    assert server.closed_error is not None
    with pytest.raises(BrokenPipeError):
        server.send(RealBlob(b"x"))


def test_connect_to_dead_port_gets_rst():
    kernel, cluster = make_cluster()
    e0 = TCPEndpoint(cluster.hosts[0])
    TCPEndpoint(cluster.hosts[1])  # stack present, nothing listening
    sock = TCPSocket.connect(e0, cluster.host_address(1), 4242)
    fut = sock.connected()
    kernel.run(until=kernel.now + 5 * SECOND)
    assert fut.done() and fut.exception() is not None


def test_connect_timeout_without_peer_stack():
    kernel, cluster = make_cluster()
    e0 = TCPEndpoint(cluster.hosts[0])  # host 1 has no TCP at all
    sock = TCPSocket.connect(e0, cluster.host_address(1), 4242)
    fut = sock.connected()
    kernel.run(until=kernel.now + 200 * SECOND)
    assert fut.done() and fut.exception() is not None
    assert sock.conn.stats.rto_events >= 3  # SYN retransmissions happened


def test_listener_backlog_and_multiple_accepts():
    kernel, cluster = make_cluster(n_hosts=3)
    eps = [TCPEndpoint(h) for h in cluster.hosts]
    listener = TCPListener(eps[0], 7000)
    s1 = TCPSocket.connect(eps[1], cluster.host_address(0), 7000)
    s2 = TCPSocket.connect(eps[2], cluster.host_address(0), 7000)
    kernel.run(until=kernel.now + 1 * SECOND)
    a1 = listener.accept()
    a2 = listener.accept()
    assert a1.done() and a2.done()
    peers = {a1.result().conn.remote_addr, a2.result().conn.remote_addr}
    assert peers == {cluster.host_address(1), cluster.host_address(2)}
