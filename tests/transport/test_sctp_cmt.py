"""Concurrent Multipath Transfer (paper §5 / [13,14] — future work built).

CMT stripes new data across every active path; split fast retransmit
(per-path HTNA) keeps cross-path reordering from triggering spurious
retransmissions — the exact problem Iyengar et al.'s CMT work solves.
"""

from repro.simkernel import SECOND
from repro.transport.sctp import SCTPConfig
from repro.util.blobs import RealBlob, SyntheticBlob

from ..conftest import make_cluster, sctp_pair
from .test_sctp_transfer import pump_messages


def cmt_config(**kw):
    return SCTPConfig(cmt=True, **kw)


def _bulk_transfer_time(kernel, s0, s1, aid, total_bytes, piece=64_000):
    n = total_bytes // piece
    sent = 0

    async def sender():
        nonlocal sent
        while sent < n:
            if s0.sendmsg(aid, 0, SyntheticBlob(piece)):
                sent += 1
            else:
                await kernel.sleep(200_000)

    start = kernel.now
    kernel.spawn(sender())
    pump_messages(kernel, s1, n, limit_s=600)
    return kernel.now - start


def test_cmt_uses_both_paths():
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cmt_config())
    _bulk_transfer_time(kernel, s0, s1, aid, 1_000_000)
    assoc = s0.association(aid)
    sent_per_path = {a: p.bytes_sent for a, p in assoc.paths.items()}
    # both paths carried data... bytes_sent tracked via outstanding
    # accounting; check via path cwnd growth instead (both grew past initial)
    grown = [p for p in assoc.paths.values() if p.cwnd > 4380]
    assert len(grown) == 2, f"both paths must carry data: {assoc.paths}"


def test_cmt_doubles_bulk_throughput():
    def run(n_paths, cmt):
        kernel, cluster = make_cluster(n_hosts=2, n_paths=n_paths)
        cfg = SCTPConfig(cmt=cmt)
        s0, s1, aid = sctp_pair(kernel, cluster, config=cfg)
        return _bulk_transfer_time(kernel, s0, s1, aid, 2_000_000)

    single = run(n_paths=1, cmt=False)
    multi = run(n_paths=2, cmt=True)
    speedup = single / multi
    assert speedup > 1.5, f"CMT speedup only {speedup:.2f}x"


def test_cmt_integrity_and_ordering_under_loss():
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2, loss_rate=0.02, seed=6)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cmt_config())
    bodies = [bytes([i % 251]) * (2_000 + 911 * i) for i in range(20)]
    for i, body in enumerate(bodies):
        assert s0.sendmsg(aid, i % 4, RealBlob(body))
    msgs = pump_messages(kernel, s1, len(bodies), limit_s=600)
    assert sorted(m.data.to_bytes() for m in msgs) == sorted(bodies)
    per_stream = {}
    for m in msgs:
        per_stream.setdefault(m.stream, []).append(m.ssn)
    assert all(v == sorted(v) for v in per_stream.values())


def test_split_fast_retransmit_suppresses_spurious_rtx():
    """Without SFR, cross-path reordering would mark chunks missing on
    every SACK; with it, retransmissions stay near the true drop count."""
    kernel, cluster = make_cluster(n_hosts=2, n_paths=2, loss_rate=0.01, seed=3)
    s0, s1, aid = sctp_pair(kernel, cluster, config=cmt_config())
    _bulk_transfer_time(kernel, s0, s1, aid, 1_500_000)
    assoc = s0.association(aid)
    drops = cluster.total_dropped()
    assert assoc.stats.retransmitted_chunks <= 3 * drops + 5, (
        f"rtx={assoc.stats.retransmitted_chunks} vs drops={drops}"
    )


def test_cmt_off_by_default():
    assert SCTPConfig().cmt is False
