"""SCTP PDU wire-size accounting and SACK helpers."""

from repro.transport.sctp import (
    CookieAckChunk,
    DataChunk,
    HeartbeatChunk,
    InitChunk,
    SackChunk,
    SCTPPacket,
    ShutdownChunk,
)
from repro.util.blobs import SyntheticBlob


def test_data_chunk_size_padded():
    c = DataChunk(tsn=1, sid=0, ssn=0, payload=SyntheticBlob(1))
    assert c.wire_size() == 20  # 16 header + 1 payload, padded to 4
    c2 = DataChunk(tsn=1, sid=0, ssn=0, payload=SyntheticBlob(1452))
    assert c2.wire_size() == 16 + 1452


def test_sack_size_grows_with_gap_blocks():
    s0 = SackChunk(cum_tsn=10, a_rwnd=1000)
    s3 = SackChunk(cum_tsn=10, a_rwnd=1000, gaps=((2, 3), (5, 5), (8, 9)))
    assert s3.wire_size() == s0.wire_size() + 12


def test_sack_unlimited_gap_blocks():
    # unlike TCP's 3-block option-space cap, SCTP reports every hole
    gaps = tuple((i * 2, i * 2) for i in range(1, 101))
    s = SackChunk(cum_tsn=0, a_rwnd=1, gaps=gaps)
    assert len(s.gaps) == 100
    assert s.wire_size() == 16 + 400


def test_sack_acked_tsns_expansion():
    s = SackChunk(cum_tsn=100, a_rwnd=0, gaps=((2, 4), (7, 7)))
    assert s.acked_tsns() == {102, 103, 104, 107}


def test_packet_wire_size_sums_chunks():
    data = DataChunk(tsn=1, sid=0, ssn=0, payload=SyntheticBlob(100))
    sack = SackChunk(cum_tsn=5, a_rwnd=10)
    pkt = SCTPPacket(src_port=1, dst_port=2, vtag=3, chunks=(sack, data))
    assert pkt.wire_size() == 20 + 12 + sack.wire_size() + data.wire_size()
    assert pkt.data_chunks() == (data,)


def test_control_chunk_sizes_positive():
    for chunk in (
        InitChunk(1, 2, 3, 4, 5, ("a", "b")),
        CookieAckChunk(),
        HeartbeatChunk("a", 0, 1),
        ShutdownChunk(9),
    ):
        assert chunk.wire_size() > 0
        assert chunk.wire_size() % 4 == 0


def test_fragment_flags_repr():
    whole = DataChunk(tsn=1, sid=2, ssn=3, payload=SyntheticBlob(4))
    middle = DataChunk(tsn=2, sid=2, ssn=3, payload=SyntheticBlob(4), begin=False, end=False)
    assert "BE" in repr(whole)
    assert "M" in repr(middle)
