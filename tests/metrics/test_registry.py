"""MetricsRegistry semantics: counters, gauges, histograms, probes,
scopes, snapshots, and the zero-cost disabled mode."""

import json

import pytest

from repro.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)
from repro.simkernel import Kernel


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------
def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("a.b")
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_get_or_create_shares_instance():
    reg = MetricsRegistry()
    assert reg.counter("shared") is reg.counter("shared")
    reg.counter("shared").inc(3)
    assert reg.snapshot()["shared"] == 3


def test_gauge_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(10)
    g.add(-3)
    assert g.value == 7


def test_histogram_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("lat", edges=(10, 100, 1000))
    for v in (5, 10, 11, 99, 5000):
        h.observe(v)
    # counts per bucket: <=10: two (5, 10); <=100: two (11, 99); <=1000:
    # none; overflow: one (5000)
    assert h.counts == [2, 2, 0, 1]
    assert h.total_count == 5
    assert h.total_sum == 5 + 10 + 11 + 99 + 5000


def test_histogram_rejects_bad_edges():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("bad", edges=())
    with pytest.raises(ValueError):
        reg.histogram("bad2", edges=(10, 10))
    with pytest.raises(ValueError):
        reg.histogram("bad3", edges=(10, 5))


def test_histogram_reregister_same_edges_ok_different_edges_raises():
    reg = MetricsRegistry()
    h = reg.histogram("h", edges=(1, 2))
    assert reg.histogram("h", edges=(1, 2)) is h
    with pytest.raises(ValueError):
        reg.histogram("h", edges=(1, 3))


def test_name_type_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


# ---------------------------------------------------------------------------
# probes and scopes
# ---------------------------------------------------------------------------
def test_probe_evaluated_at_snapshot_time():
    reg = MetricsRegistry()
    state = {"v": 1}
    reg.probe("live", lambda: state["v"])
    assert reg.snapshot()["live"] == 1
    state["v"] = 42
    assert reg.snapshot()["live"] == 42


def test_probe_name_dedup_is_deterministic():
    reg = MetricsRegistry()
    reg.probe("p", lambda: 1)
    reg.probe("p", lambda: 2)
    reg.probe("p", lambda: 3)
    snap = reg.snapshot()
    assert snap["p"] == 1
    assert snap["p#2"] == 2
    assert snap["p#3"] == 3


def test_scope_prefixes_and_nesting():
    reg = MetricsRegistry()
    outer = reg.scope("transport")
    inner = outer.scope("tcp")
    inner.counter("segments").inc(4)
    inner.probe("state", lambda: "OPEN")
    snap = reg.snapshot()
    assert snap["transport.tcp.segments"] == 4
    assert snap["transport.tcp.state"] == "OPEN"


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------
def test_snapshot_is_sorted_and_expands_histograms():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.gauge("a").set(2)
    h = reg.histogram("m", edges=(10, 20))
    h.observe(15)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["m/le_10"] == 0
    assert snap["m/le_20"] == 1
    assert snap["m/le_inf"] == 0
    assert snap["m/count"] == 1
    assert snap["m/sum"] == 15


def test_to_json_is_byte_stable():
    def build():
        reg = MetricsRegistry()
        reg.counter("n.c").inc(7)
        reg.histogram("n.h", edges=(1, 10)).observe(3)
        reg.probe("n.p", lambda: 99)
        return reg.to_json()

    assert build() == build()
    # and it round-trips as plain JSON
    assert json.loads(build())["n.c"] == 7


def test_snapshot_coerces_numpy_scalars():
    np = pytest.importorskip("numpy")
    reg = MetricsRegistry()
    reg.probe("np_int", lambda: np.int64(3))
    reg.probe("np_float", lambda: np.float64(2.5))
    snap = reg.snapshot()
    assert snap["np_int"] == 3 and isinstance(snap["np_int"], int)
    assert snap["np_float"] == 2.5 and isinstance(snap["np_float"], float)
    json.dumps(snap)  # must be serialisable with the stock encoder


# ---------------------------------------------------------------------------
# disabled mode
# ---------------------------------------------------------------------------
def test_disabled_registry_returns_null_singletons():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("a") is NULL_COUNTER
    assert reg.gauge("b") is NULL_GAUGE
    assert reg.histogram("c", edges=(1, 2)) is NULL_HISTOGRAM
    reg.probe("d", lambda: 1 / 0)  # never evaluated
    # null instruments swallow updates without allocating
    NULL_COUNTER.inc(5)
    NULL_GAUGE.set(3)
    NULL_HISTOGRAM.observe(9)
    assert reg.snapshot() == {}


def test_default_kernel_metrics_disabled():
    kernel = Kernel(seed=1)
    assert not kernel.metrics.enabled
    assert kernel.metrics.snapshot() == {}


# ---------------------------------------------------------------------------
# determinism guarantees
# ---------------------------------------------------------------------------
def test_rng_streams_unaffected_by_metric_registration_order():
    """Named RNG streams are keyed by (seed, label) only — registering
    metrics in any order, or not at all, must not shift them."""

    def draws(register_first, n_metrics):
        kernel = Kernel(seed=7)
        if register_first:
            for i in range(n_metrics):
                kernel.metrics.counter(f"warp.{i}").inc()
        rng = kernel.rng("traffic")
        return [rng.randrange(1 << 30) for _ in range(8)]

    baseline = draws(register_first=False, n_metrics=0)
    assert draws(register_first=True, n_metrics=1) == baseline
    assert draws(register_first=True, n_metrics=50) == baseline


def test_enabled_kernel_registers_kernel_scope():
    kernel = Kernel(seed=1, metrics=MetricsRegistry(enabled=True))
    kernel.call_after(10, lambda: None)
    kernel.run()
    snap = kernel.metrics.snapshot()
    assert snap["kernel.events_processed"] >= 1
    assert "kernel.timer_heap_depth/count" in snap
