"""End-to-end wiring: every layer registers into the kernel's registry,
the packet-tap bus serves both metrics and tracing, and MetricsCollector
turns collection on without touching workload signatures."""

from repro.core.world import WorldConfig, run_app
from repro.metrics import MetricsCollector, MetricsPacketTap, MetricsRegistry
from repro.util.trace import PacketTrace


async def _exchange(comm):
    if comm.rank == 0:
        await comm.send(b"x" * 50_000, dest=1)
        await comm.recv(source=1)
    else:
        await comm.recv(source=0)
        await comm.send(b"y" * 50_000, dest=0)
    return comm.rank


def _run(rpi, **overrides):
    with MetricsCollector() as collector:
        run_app(_exchange, n_procs=2, rpi=rpi, seed=2, **overrides)
    assert len(collector.runs) == 1
    return collector.runs[0]["metrics"]


def test_world_snapshot_covers_every_layer_sctp():
    snap = _run("sctp")
    prefixes = ("kernel.", "net.link.", "host.", "net.packets.",
                "transport.sctp.", "rpi.sctp.")
    for prefix in prefixes:
        assert any(k.startswith(prefix) for k in snap), f"missing {prefix}"
    assert snap["kernel.events_processed"] > 0
    # both ends delivered one 50 KB message
    assert snap["transport.sctp.node0.messages_delivered"] >= 1
    assert snap["transport.sctp.node1.messages_delivered"] >= 1
    # the rendezvous protocol ran over the progression engine
    assert snap["rpi.sctp.rank0.units_sent"] > 0
    assert snap["rpi.sctp.rank1.units_received"] > 0


def test_world_snapshot_covers_every_layer_tcp():
    snap = _run("tcp")
    assert any(k.startswith("transport.tcp.node0.") for k in snap)
    assert snap["transport.tcp.node0.bytes_sent"] > 0
    # the shared per-host cwnd histogram recorded samples
    assert snap["transport.tcp.node0.cwnd_bytes/count"] > 0
    assert any(k.startswith("rpi.tcp.rank0.") for k in snap)


def test_loss_populates_recovery_and_hol_counters():
    snap = _run("sctp", loss_rate=0.02, num_streams=10)
    node_totals = snap["transport.sctp.node0.retransmitted_chunks"] + \
        snap["transport.sctp.node1.retransmitted_chunks"]
    assert node_totals > 0
    drops = [v for k, v in snap.items()
             if k.startswith("net.dummynet.") and k.endswith("dropped_packets")]
    assert sum(drops) > 0


def test_metrics_disabled_world_has_no_overhead_paths():
    result = run_app(_exchange, n_procs=2, rpi="sctp", seed=2)
    world = result.world
    assert not world.metrics.enabled
    assert world.metrics.snapshot() == {}
    # behaviour identical to the enabled run: same virtual duration
    with MetricsCollector():
        enabled = run_app(_exchange, n_procs=2, rpi="sctp", seed=2)
    assert enabled.duration_ns == result.duration_ns


def test_worldconfig_flag_enables_without_collector():
    result = run_app(
        _exchange, config=WorldConfig(n_procs=2, rpi="tcp", seed=2,
                                      metrics_enabled=True)
    )
    snap = result.world.metrics.snapshot()
    assert snap["transport.tcp.node0.connections_total"] >= 1


def test_trace_and_metrics_tap_share_the_bus():
    registry = MetricsRegistry()
    with MetricsCollector():
        result = run_app(_exchange, n_procs=2, rpi="tcp", seed=2)
    world = result.world
    # attach a second consumer pair post-hoc and replay one packet event
    trace = PacketTrace(world.kernel).attach(world.cluster.hosts)
    tap = MetricsPacketTap(registry.scope("net.packets"))
    tap.attach(world.cluster.hosts)
    host = world.cluster.hosts[0]
    assert trace._tap in host.taps and tap._tap in host.taps

    class FakePacket:
        proto = "tcp"
        src = "10.0.0.1"
        dst = "10.0.0.2"
        wire_size = 52
        payload = "fake"

    for cb in list(host.taps):
        cb("tx", host, FakePacket())
    assert trace.count(host="node0", direction="tx") >= 1
    assert registry.snapshot()["net.packets.node0.tx.tcp.packets"] == 1
    trace.detach()
    tap.detach()
    assert trace._tap not in host.taps and tap._tap not in host.taps
