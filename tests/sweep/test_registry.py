"""The refactored harness cell registry: legacy key addressing must be
bit-compatible with before, and sweep (param-dict) addressing must hit
the same runners."""

import pytest

from repro.bench import harness


def test_legacy_cell_keys_unchanged():
    """The key strings repro.bench.parallel shards on are frozen."""
    assert harness.experiment_cells("fig8")[:3] == ["1", "1024", "4096"]
    assert harness.experiment_cells("table1") == [
        "30720:0.01", "30720:0.02", "307200:0.01", "307200:0.02",
    ]
    assert harness.experiment_cells("fig10") == [
        "short:0.0", "short:0.01", "short:0.02",
        "long:0.0", "long:0.01", "long:0.02",
    ]
    assert harness.experiment_cells("fig9") == list(harness.FIG9_ORDER)
    assert harness.experiment_cells("failover") == ["default"]
    assert harness.experiment_cells("chaos") == ["tcp", "sctp"]


def test_every_experiment_is_sweep_addressable():
    for name in harness.sweep_experiments():
        axes = harness.sweep_axis_names(name)
        assert axes, name
        assert harness.experiment_cells(name), name


def test_sweep_and_legacy_addressing_run_the_same_cell():
    legacy = [row.to_jsonable() for row in harness.run_experiment_cell("fig8", "1024")]
    swept = [
        row.to_jsonable()
        for row in harness.run_sweep_cell("fig8", {"size": 1024})
    ]
    assert legacy == swept


def test_resolve_fills_defaults_in_axis_then_free_order():
    resolved = harness.resolve_sweep_params(
        "pingpong", {"loss": "0.01", "protocol": "tcp", "size": "512"}
    )
    assert list(resolved) == [
        "protocol", "size", "loss", "seed", "iterations", "scenario",
        "interleaving", "scheduler",
    ]
    assert resolved["size"] == 512 and resolved["loss"] == 0.01  # coerced
    assert resolved["seed"] == 1


def test_resolve_converts_json_lists_to_tuples():
    resolved = harness.resolve_sweep_params(
        "table1", {"size": 30720, "loss": 0.01, "seeds": [1, 2]}
    )
    assert resolved["seeds"] == (1, 2)


def test_resolve_rejects_unknown_and_illegal():
    with pytest.raises(KeyError):
        harness.resolve_sweep_params("nope", {})
    with pytest.raises(ValueError, match="unknown parameter"):
        harness.resolve_sweep_params("fig8", {"size": 1, "bogus": 2})
    with pytest.raises(ValueError, match="missing axis"):
        harness.resolve_sweep_params("fig8", {})
    with pytest.raises(ValueError, match="illegal value"):
        harness.resolve_sweep_params(
            "farm", {"protocol": "tcp", "size_label": "huge", "loss": 0.0}
        )
    with pytest.raises(ValueError, match="bad value"):
        harness.resolve_sweep_params("fig8", {"size": "not-a-number"})


def test_fault_scenario_axis():
    clean = harness.run_sweep_cell(
        "pingpong", {"protocol": "tcp", "size": 4096, "loss": 0.0, "iterations": 4}
    )
    faulty = harness.run_sweep_cell(
        "pingpong",
        {
            "protocol": "tcp",
            "size": 4096,
            "loss": 0.0,
            "iterations": 4,
            "scenario": "bernoulli2",
        },
    )
    assert faulty[0].measured["MBps"] < clean[0].measured["MBps"]
    assert "bernoulli2" in faulty[0].label
    with pytest.raises(ValueError, match="unknown fault scenario"):
        harness.run_sweep_cell(
            "pingpong",
            {"protocol": "tcp", "size": 4096, "loss": 0.0, "scenario": "gremlins"},
        )
