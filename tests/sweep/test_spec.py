"""Sweep spec parsing/expansion: canonical ids, order, and every
malformed-spec edge the loader must reject before a simulation runs."""

import json

import pytest

from repro.sweep import SweepError, load_spec, spec_from_dict

PINGPONG_BLOCK = {
    "experiment": "pingpong",
    "matrix": {"protocol": ["tcp", "sctp"], "loss": [0.0, 0.01]},
    "params": {"size": 1024, "iterations": 2},
}


def _spec(blocks):
    return {"name": "t", "sweeps": blocks}


def test_matrix_expansion_order_and_ids():
    spec = spec_from_dict(_spec([PINGPONG_BLOCK]))
    assert [cell.id for cell in spec.cells] == [
        "pingpong[protocol=tcp,size=1024,loss=0,iterations=2]",
        "pingpong[protocol=tcp,size=1024,loss=0.01,iterations=2]",
        "pingpong[protocol=sctp,size=1024,loss=0,iterations=2]",
        "pingpong[protocol=sctp,size=1024,loss=0.01,iterations=2]",
    ]
    assert spec.experiments() == ["pingpong"]


def test_resolved_params_fill_free_defaults():
    spec = spec_from_dict(_spec([PINGPONG_BLOCK]))
    first = spec.cells[0]
    assert first.resolved["seed"] == 1  # default filled
    assert first.resolved["scenario"] == "none"
    assert first.resolved["size"] == 1024
    assert "seed" not in first.params  # explicit view stays as written


def test_explicit_cell_list():
    spec = spec_from_dict(
        _spec(
            [
                {
                    "experiment": "farm",
                    "cells": [
                        {"protocol": "tcp", "loss": 0.0},
                        {"protocol": "sctp", "loss": 0.02},
                    ],
                    "params": {"size_label": "short", "num_tasks": 10},
                }
            ]
        )
    )
    assert len(spec.cells) == 2
    assert spec.cells[1].resolved["loss"] == 0.02
    assert spec.cells[1].resolved["num_tasks"] == 10


def test_bare_block_is_single_cell():
    spec = spec_from_dict(
        _spec(
            [
                {
                    "experiment": "pingpong",
                    "params": {"protocol": "tcp", "size": 512, "loss": 0.0},
                }
            ]
        )
    )
    assert len(spec.cells) == 1


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.pop("name"), "name"),
        (lambda d: d.update(sweeps=[]), "non-empty 'sweeps'"),
        (lambda d: d.update(bogus=1), "unknown top-level"),
        (lambda d: d["sweeps"][0].pop("experiment"), "experiment"),
        (lambda d: d["sweeps"][0].update(experiment="nope"), "unknown experiment"),
        (lambda d: d["sweeps"][0].update(extra=1), "unknown key"),
        (
            lambda d: d["sweeps"][0]["matrix"].update(bogus=[1]),
            "unknown parameter",
        ),
        (
            lambda d: d["sweeps"][0]["matrix"].update(loss=[]),
            "empty value list",
        ),
        (
            lambda d: d["sweeps"][0].update(cells=[{"protocol": "tcp"}]),
            "not both",
        ),
        (
            lambda d: d["sweeps"][0]["params"].update(protocol="tcp"),
            "both per-cell and in 'params'",
        ),
        (
            lambda d: d["sweeps"][0]["matrix"].update(protocol=["udp"]),
            "illegal value",
        ),
        (
            lambda d: d["sweeps"][0]["matrix"].pop("protocol"),
            "missing axis",
        ),
    ],
)
def test_malformed_specs_raise(mutate, match):
    doc = json.loads(json.dumps(_spec([PINGPONG_BLOCK])))
    mutate(doc)
    with pytest.raises(SweepError, match=match):
        spec_from_dict(doc)


def test_duplicate_cell_ids_rejected():
    doc = _spec([PINGPONG_BLOCK, PINGPONG_BLOCK])
    with pytest.raises(SweepError, match="duplicate cell id"):
        spec_from_dict(doc)


def test_load_spec_json_and_missing(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(json.dumps(_spec([PINGPONG_BLOCK])))
    assert len(load_spec(str(path)).cells) == 4
    with pytest.raises(SweepError, match="cannot read"):
        load_spec(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(SweepError, match="invalid JSON"):
        load_spec(str(bad))


def test_load_spec_yaml_when_available(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "s.yaml"
    path.write_text(yaml.safe_dump(_spec([PINGPONG_BLOCK]), sort_keys=False))
    spec = load_spec(str(path))
    assert [cell.id for cell in spec.cells] == [
        cell.id for cell in spec_from_dict(_spec([PINGPONG_BLOCK])).cells
    ]


def test_committed_smoke_spec_shape():
    """The committed CI spec keeps its acceptance-criteria coverage."""
    spec = load_spec("benchmarks/sweep_smoke.json")
    assert len(spec.cells) >= 6
    assert len(spec.experiments()) >= 2
    protocols = {cell.resolved.get("protocol") for cell in spec.cells}
    assert protocols >= {"tcp", "sctp"}
    losses = sorted({cell.resolved.get("loss") for cell in spec.cells})
    assert len(losses) >= 2
