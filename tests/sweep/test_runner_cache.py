"""Runner + cache contract: digests, invalidation, resumability, and
byte-stable deterministic merging whatever order cells complete in."""

import json

from repro.sweep import (
    SweepCache,
    cell_digest,
    dumps_result,
    merge_cells,
    run_sweep,
    spec_from_dict,
)

TINY = {
    "name": "tiny",
    "sweeps": [
        {
            "experiment": "pingpong",
            "matrix": {"protocol": ["tcp", "sctp"]},
            "params": {"size": 512, "loss": 0.0, "iterations": 2},
        }
    ],
}


def _tiny_spec():
    return spec_from_dict(TINY)


def test_cold_run_then_warm_resume_recomputes_nothing(tmp_path):
    spec = _tiny_spec()
    cache = SweepCache(tmp_path / "cache")
    cold = run_sweep(spec, cache=cache)
    assert len(cold.executed) == 2 and not cold.cached
    warm = run_sweep(spec, cache=cache)
    assert not warm.executed and len(warm.cached) == 2
    assert dumps_result(warm.doc) == dumps_result(cold.doc)


def test_cache_clear_forces_recompute(tmp_path):
    spec = _tiny_spec()
    cache = SweepCache(tmp_path / "cache")
    cold = run_sweep(spec, cache=cache)
    assert cache.clear() == 2
    again = run_sweep(spec, cache=cache)
    assert len(again.executed) == 2 and not again.cached
    assert dumps_result(again.doc) == dumps_result(cold.doc)


def test_no_cache_run_works():
    result = run_sweep(_tiny_spec(), cache=None)
    assert len(result.executed) == 2
    assert result.doc["cells"][0]["rows"]


def test_digest_changes_with_params_code_and_scale():
    base = cell_digest("pingpong", {"size": 512}, code="c1", scale="scaled")
    assert cell_digest("pingpong", {"size": 1024}, code="c1", scale="scaled") != base
    assert cell_digest("pingpong", {"size": 512}, code="c2", scale="scaled") != base
    assert cell_digest("pingpong", {"size": 512}, code="c1", scale="full") != base
    assert cell_digest("farm", {"size": 512}, code="c1", scale="scaled") != base
    # and it is stable: same inputs, same key
    assert cell_digest("pingpong", {"size": 512}, code="c1", scale="scaled") == base


def test_config_digest_change_invalidates_cached_cell(tmp_path):
    """Editing a cell's parameters in the spec dirties exactly that cell."""
    spec = _tiny_spec()
    cache = SweepCache(tmp_path / "cache")
    run_sweep(spec, cache=cache)
    edited = json.loads(json.dumps(TINY))
    edited["sweeps"][0]["params"]["iterations"] = 3
    warm = run_sweep(spec_from_dict(edited), cache=cache)
    assert len(warm.executed) == 2  # new digests -> both cells recomputed
    mixed = json.loads(json.dumps(TINY))
    mixed["sweeps"][0]["matrix"]["protocol"] = ["tcp", "sctp"]
    both = run_sweep(spec_from_dict(mixed), cache=cache)
    assert not both.executed  # unchanged digests still hit


def test_tampered_cache_entry_is_a_miss(tmp_path):
    spec = _tiny_spec()
    cache = SweepCache(tmp_path / "cache")
    cold = run_sweep(spec, cache=cache)
    digest = cold.doc["cells"][0]["digest"]
    path = cache.path(digest)
    doc = json.loads(path.read_text())
    doc["digest"] = "0" * 64  # content no longer matches its key
    path.write_text(json.dumps(doc))
    assert cache.get(digest) is None
    path.write_text("{truncated")
    assert cache.get(digest) is None


def test_merge_is_deterministic_under_shuffled_completion():
    """merge_cells is a pure function of (spec, rows): feeding it the
    same rows mapping built in reversed/shuffled insert order yields the
    same bytes — completion order can never leak into the document."""
    spec = _tiny_spec()
    result = run_sweep(spec, cache=None)
    rows_by_digest = {
        cell["digest"]: cell["rows"] for cell in result.doc["cells"]
    }
    reversed_order = dict(reversed(list(rows_by_digest.items())))
    code = result.doc["code_version"]
    scale = result.doc["scale"]
    merged_a = merge_cells(spec, rows_by_digest, code=code, scale=scale)
    merged_b = merge_cells(spec, reversed_order, code=code, scale=scale)
    assert dumps_result(merged_a) == dumps_result(merged_b) == dumps_result(result.doc)


def test_parallel_matches_serial_bytes(tmp_path):
    spec = _tiny_spec()
    serial = run_sweep(spec, jobs=1, cache=None)
    parallel = run_sweep(spec, jobs=2, cache=SweepCache(tmp_path / "cache"))
    assert dumps_result(serial.doc) == dumps_result(parallel.doc)
    # and the parallel run's cache warms a serial resume
    warm = run_sweep(spec, jobs=1, cache=SweepCache(tmp_path / "cache"))
    assert not warm.executed


# ---------------------------------------------------------------------------
# supervision: retry, quarantine, partial-result salvage
# ---------------------------------------------------------------------------
def test_supervised_run_without_failures_is_byte_identical():
    from repro.supervise import SupervisePolicy

    spec = _tiny_spec()
    plain = run_sweep(spec, cache=None)
    supervised = run_sweep(
        spec, jobs=2, cache=None, supervise=SupervisePolicy(max_attempts=2)
    )
    assert not supervised.quarantined and not supervised.manifest
    assert "failures" not in supervised.doc
    assert dumps_result(supervised.doc) == dumps_result(plain.doc)


def test_crash_is_retried_and_document_survives_intact(tmp_path):
    from repro.supervise import SupervisePolicy

    spec = _tiny_spec()
    plain = run_sweep(spec, cache=None)
    victim = spec.cells[0].id
    policy = SupervisePolicy(
        max_attempts=2,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        chaos={victim: ("crash",)},
    )
    result = run_sweep(spec, jobs=2, cache=SweepCache(tmp_path / "c"), supervise=policy)
    assert not result.quarantined
    [rec] = result.manifest
    assert rec["cell"] == victim and rec["outcome"] == "recovered"
    assert "failures" not in result.doc  # recovered != failed
    assert dumps_result(result.doc) == dumps_result(plain.doc)


def test_quarantined_cell_is_salvaged_around(tmp_path):
    from repro.supervise import SupervisePolicy

    spec = _tiny_spec()
    plain = run_sweep(spec, cache=None)
    victim = spec.cells[0].id
    survivor = spec.cells[1].id
    policy = SupervisePolicy(
        max_attempts=2,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        chaos={victim: ("crash", "crash")},  # every attempt dies
    )
    cache = SweepCache(tmp_path / "c")
    result = run_sweep(spec, jobs=2, cache=cache, supervise=policy)
    assert result.quarantined == [victim]
    assert result.executed == [survivor]
    # the surviving cell merged byte-identically to the unfailed run's
    [survived] = result.doc["cells"]
    [reference] = [c for c in plain.doc["cells"] if c["id"] == survivor]
    assert json.dumps(survived, sort_keys=True) == json.dumps(reference, sort_keys=True)
    # the failure manifest is embedded, attempts and all
    [failure] = result.doc["failures"]
    assert failure["cell"] == victim and failure["outcome"] == "quarantined"
    assert len(failure["attempts"]) == 2
    # the survivor's cache entry is good: a chaos-free resume recomputes
    # only the quarantined cell and reproduces the full document
    healed = run_sweep(spec, cache=cache)
    assert healed.executed == [victim] and healed.cached == [survivor]
    assert dumps_result(healed.doc) == dumps_result(plain.doc)


def test_corrupt_cache_entry_recovers_with_warning(tmp_path, caplog):
    spec = _tiny_spec()
    cache = SweepCache(tmp_path / "cache")
    cold = run_sweep(spec, cache=cache)
    digest = cold.doc["cells"][0]["digest"]
    cache.path(digest).write_text("z" * 40)  # torn write / bad copy
    with caplog.at_level("WARNING", logger="repro.sweep.cache"):
        warm = run_sweep(spec, cache=cache)
    assert len(warm.executed) == 1  # only the corrupted cell recomputed
    assert dumps_result(warm.doc) == dumps_result(cold.doc)
    [record] = caplog.records
    assert digest in record.getMessage()  # the warning names the entry
    # ... and the bad entry was overwritten on the way out
    again = run_sweep(spec, cache=cache)
    assert not again.executed
